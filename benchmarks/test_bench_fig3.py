"""Benchmark regenerating Fig. 3: relative deviation from log n across population sizes.

Paper reference: Section 5, Figure 3 — the relative error is largest for
small populations and approaches 1 as n grows.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.fig3_relative_error import run_fig3


def test_bench_fig3_relative_error(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_fig3, effort)
    rows = sorted(result.rows, key=lambda row: row["n"])
    for row in rows:
        assert row["relative_minimum"] >= 0.4
        assert row["relative_maximum"] <= 8.0
    # Shape check: the median relative deviation shrinks as n grows (the
    # paper's headline observation for this figure).
    assert rows[-1]["relative_median"] <= rows[0]["relative_median"]
    print()
    print(result.table())
