"""Engine x protocol benchmark matrix (engineering, not in the paper).

Times every engine (sequential / array / batched) on every protocol with a
vectorised counterpart, across a sweep of population sizes — the
engine-sweep shape of a classic simulator bench harness.  Each cell runs
once (``pedantic``; these are throughput probes, not micro-benchmarks) and
records the executed interaction count in ``extra_info`` so that
interactions-per-second can be derived from the pytest-benchmark JSON.

Population sizes scale with ``REPRO_BENCH_EFFORT`` (see ``conftest.py``):
the quick preset keeps the whole matrix in seconds, the larger presets let
the batched engine show its asymptotic advantage.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import ENGINE_NAMES, make_engine
from repro.protocols.epidemic import MaxEpidemic
from repro.protocols.junta import JuntaElection
from repro.protocols.majority import ApproximateMajority

#: Scalar protocol factories with registered vectorised counterparts.
PROTOCOLS = {
    "dynamic-counting": DynamicSizeCounting,
    "max-epidemic": MaxEpidemic,
    "junta-election": JuntaElection,
    "approximate-majority": ApproximateMajority,
}

#: Population sizes per effort level.  The exact engines are O(n) Python
#: work per parallel step, so the sweep stays modest below ``paper``.
SIZES = {
    "quick": (200, 500),
    "default": (500, 2_000, 10_000),
    "paper": (1_000, 10_000, 100_000),
}

PARALLEL_TIME = 10


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_bench_engine_matrix(benchmark, effort, engine, protocol_name):
    sizes = SIZES[effort]

    def sweep() -> int:
        interactions = 0
        for n in sizes:
            simulator = make_engine(engine, PROTOCOLS[protocol_name](), n, seed=1)
            result = simulator.run(PARALLEL_TIME)
            assert result.parallel_time == PARALLEL_TIME
            interactions += result.interactions
        return interactions

    interactions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["protocol"] = protocol_name
    benchmark.extra_info["population_sizes"] = list(sizes)
    benchmark.extra_info["parallel_time_per_size"] = PARALLEL_TIME
    benchmark.extra_info["interactions_per_run"] = interactions
    assert interactions == sum(sizes) * PARALLEL_TIME


#: Larger single-cell probe of the batched engine (the matrix above keeps
#: its sizes small so the Python-loop engines stay fast).
BATCHED_SCALE = {"quick": 50_000, "default": 200_000, "paper": 1_000_000}


def test_bench_batched_engine_at_scale(benchmark, effort):
    n, parallel_time = BATCHED_SCALE[effort], 30

    def run():
        simulator = make_engine("batched", DynamicSizeCounting(), n, seed=1)
        return simulator.run(parallel_time)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["population_size"] = n
    benchmark.extra_info["interactions_per_run"] = result.interactions
    assert result.interactions == n * parallel_time
