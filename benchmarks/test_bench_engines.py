"""Engine x protocol benchmark matrix (engineering, not in the paper).

A thin wrapper over the :mod:`repro.bench` subsystem: every workload is
timed through :func:`repro.bench.timing.measure` and recorded as a
normalized :class:`repro.bench.suite.CaseResult` via the ``suite_cases``
collector (written to ``$REPRO_BENCH_DIR/BENCH_engines.json`` when set —
the same schema the ``python -m repro.bench`` CLI produces, so the files
are comparable with ``repro.bench compare``).

Covered here, beyond the registry-derived scenario grid the CLI runs:

* the engine x protocol matrix — every engine (sequential / array /
  batched / ensemble) on every protocol with a vectorised counterpart,
  across a sweep of population sizes;
* a larger single-cell probe of the batched engine;
* the Fig. 3-preset ensemble-vs-looped-batched speedup, with the same
  wall-clock assertions as always (gated by ``REPRO_BENCH_ASSERT`` so
  shared-runner noise can never fail a plain test run).

Population sizes scale with ``REPRO_BENCH_EFFORT`` (see ``conftest.py``).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.suite import CaseResult
from repro.bench.timing import measure
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import ENGINE_NAMES, make_engine
from repro.experiments.figures import run_estimate_trace
from repro.protocols.epidemic import MaxEpidemic
from repro.protocols.junta import JuntaElection
from repro.protocols.majority import ApproximateMajority

#: Suite file the ``suite_cases`` collector writes under ``REPRO_BENCH_DIR``.
BENCH_SUITE_FILENAME = "BENCH_engines.json"

#: Scalar protocol factories with registered vectorised counterparts.
PROTOCOLS = {
    "dynamic-counting": DynamicSizeCounting,
    "max-epidemic": MaxEpidemic,
    "junta-election": JuntaElection,
    "approximate-majority": ApproximateMajority,
}

#: Population sizes per effort level.  The exact engines are O(n) Python
#: work per parallel step, so the sweep stays modest below ``paper``.
SIZES = {
    "quick": (200, 500),
    "default": (500, 2_000, 10_000),
    "paper": (1_000, 10_000, 100_000),
}

PARALLEL_TIME = 10


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_bench_engine_matrix(suite_cases, effort, engine, protocol_name):
    sizes = SIZES[effort]
    interactions = 0

    def sweep() -> None:
        nonlocal interactions
        interactions = 0
        for n in sizes:
            simulator = make_engine(engine, PROTOCOLS[protocol_name](), n, seed=1)
            result = simulator.run(PARALLEL_TIME)
            assert result.parallel_time == PARALLEL_TIME
            interactions += result.interactions

    timing = measure(sweep, warmup=0, repeats=1)
    assert interactions == sum(sizes) * PARALLEL_TIME
    suite_cases.append(
        CaseResult(
            case_id=f"engine-matrix:{protocol_name}[engine={engine}]@{effort}",
            scenario=f"engine-matrix:{protocol_name}",
            engine=engine,
            effort=effort,
            seconds=timing.seconds,
            work_interactions=interactions,
            extra={
                "population_sizes": list(sizes),
                "parallel_time_per_size": PARALLEL_TIME,
            },
        )
    )


#: Larger single-cell probe of the batched engine (the matrix above keeps
#: its sizes small so the Python-loop engines stay fast).
BATCHED_SCALE = {"quick": 50_000, "default": 200_000, "paper": 1_000_000}


def test_bench_batched_engine_at_scale(suite_cases, effort):
    n, parallel_time = BATCHED_SCALE[effort], 30
    interactions = 0

    def run() -> None:
        nonlocal interactions
        simulator = make_engine("batched", DynamicSizeCounting(), n, seed=1)
        interactions = simulator.run(parallel_time).interactions

    timing = measure(run, warmup=0, repeats=1)
    assert interactions == n * parallel_time
    suite_cases.append(
        CaseResult(
            case_id=f"batched-at-scale[n={n}]@{effort}",
            scenario="batched-at-scale",
            engine="batched",
            effort=effort,
            seconds=timing.seconds,
            work_interactions=interactions,
            extra={"population_size": n, "parallel_time": parallel_time},
        )
    )


#: Fig. 3-preset-shaped speedup workload per effort level:
#: (population sweep, trials, parallel_time).  The sweep covers the preset's
#: population range up to the >= 10^4 acceptance point; trials match the
#: preset family (>= 16; the paper preset runs 96).
FIG3_SPEEDUP = {
    "quick": ((10, 100, 1_000, 10_000), 16, 60),
    "default": ((10, 100, 1_000, 10_000), 16, 400),
    "paper": ((10, 100, 1_000, 10_000, 100_000), 96, 1_000),
}


def test_bench_ensemble_speedup_fig3_preset(suite_cases, effort):
    """Stacked ensemble pass vs per-trial looped batched runs on Fig. 3.

    Wherever the per-trial Python loop dominates — every small/mid-``n``
    point of the preset — the ensemble engine is well over 5x faster (8-16x
    measured).  At ``n = 10^4`` a single population's batches are already
    1250 lanes wide, so the loop overhead the ensemble removes shrinks and
    the win settles around 2x; both regimes are recorded per point in the
    case's ``extra`` so the perf trajectory stays tracked.
    """
    sizes, trials, parallel_time = FIG3_SPEEDUP[effort]

    per_point = {}
    looped_total = ensemble_total = 0.0
    for n in sizes:
        looped = measure(
            lambda n=n: run_estimate_trace(
                n, parallel_time, trials=trials, seed=1, engine="batched"
            ),
            warmup=0,
            repeats=1,
        ).minimum
        stacked = measure(
            lambda n=n: run_estimate_trace(
                n, parallel_time, trials=trials, seed=1, engine="ensemble"
            ),
            warmup=0,
            repeats=1,
        ).minimum
        per_point[n] = {
            "looped_batched_seconds": looped,
            "ensemble_seconds": stacked,
            "speedup": looped / stacked,
        }
        looped_total += looped
        ensemble_total += stacked

    loop_bound = [n for n in sizes if n <= 1_000]
    loop_bound_speedup = sum(
        per_point[n]["looped_batched_seconds"] for n in loop_bound
    ) / sum(per_point[n]["ensemble_seconds"] for n in loop_bound)

    work = sum(n * parallel_time * trials for n in sizes)
    shared_extra = {
        "trials": trials,
        "parallel_time": parallel_time,
        "per_point": {str(n): per_point[n] for n in sizes},
        "sweep_speedup": looped_total / ensemble_total,
        "loop_bound_speedup": loop_bound_speedup,
    }
    suite_cases.append(
        CaseResult(
            case_id=f"fig3-speedup[engine=batched]@{effort}",
            scenario="fig3-speedup",
            engine="batched",
            effort=effort,
            seconds=(looped_total,),
            work_interactions=work,
            extra=shared_extra,
        )
    )
    suite_cases.append(
        CaseResult(
            case_id=f"fig3-speedup[engine=ensemble]@{effort}",
            scenario="fig3-speedup",
            engine="ensemble",
            effort=effort,
            seconds=(ensemble_total,),
            work_interactions=work,
            extra=shared_extra,
        )
    )

    # Functional runs only check that both paths completed and were timed;
    # every wall-clock comparison gates on the dedicated bench job
    # (REPRO_BENCH_ASSERT=1 in ci.yml) so shared-runner timing noise can
    # never fail the test suite.
    assert all(p["ensemble_seconds"] > 0 for p in per_point.values())

    # Measured margins: >= 5x asserted at 11-17x on the trial-loop-bound
    # points; the widest point asserted at 1.2x, measured ~2.5x; the whole
    # sweep asserted at 2x, measured ~4.5x.
    if os.environ.get("REPRO_BENCH_ASSERT"):
        assert loop_bound_speedup >= 5.0, per_point
        assert per_point[10_000]["speedup"] >= 1.2, per_point
        assert looped_total / ensemble_total >= 2.0, per_point
