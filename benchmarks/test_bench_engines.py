"""Engine x protocol benchmark matrix (engineering, not in the paper).

Times every engine (sequential / array / batched / ensemble) on every
protocol with a vectorised counterpart, across a sweep of population sizes
— the engine-sweep shape of a classic simulator bench harness.  Each cell
runs once (``pedantic``; these are throughput probes, not micro-benchmarks)
and records the executed interaction count in ``extra_info`` so that
interactions-per-second can be derived from the pytest-benchmark JSON.

``test_bench_ensemble_speedup_fig3_preset`` additionally times the Fig. 3
preset workload — the same ``(n, trials)`` sweep a figure regeneration
runs — as per-trial looped ``batched`` runs versus one stacked ensemble
pass, and records the per-point speedups.  CI runs this module with
``--benchmark-json BENCH_engines.json`` so the perf trajectory is tracked
(see ``.github/workflows/ci.yml``).

Population sizes scale with ``REPRO_BENCH_EFFORT`` (see ``conftest.py``):
the quick preset keeps the whole matrix in seconds, the larger presets let
the vectorised engines show their asymptotic advantage.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import ENGINE_NAMES, make_engine
from repro.experiments.figures import run_estimate_trace
from repro.protocols.epidemic import MaxEpidemic
from repro.protocols.junta import JuntaElection
from repro.protocols.majority import ApproximateMajority

#: Scalar protocol factories with registered vectorised counterparts.
PROTOCOLS = {
    "dynamic-counting": DynamicSizeCounting,
    "max-epidemic": MaxEpidemic,
    "junta-election": JuntaElection,
    "approximate-majority": ApproximateMajority,
}

#: Population sizes per effort level.  The exact engines are O(n) Python
#: work per parallel step, so the sweep stays modest below ``paper``.
SIZES = {
    "quick": (200, 500),
    "default": (500, 2_000, 10_000),
    "paper": (1_000, 10_000, 100_000),
}

PARALLEL_TIME = 10


@pytest.mark.parametrize("engine", ENGINE_NAMES)
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_bench_engine_matrix(benchmark, effort, engine, protocol_name):
    sizes = SIZES[effort]

    def sweep() -> int:
        interactions = 0
        for n in sizes:
            simulator = make_engine(engine, PROTOCOLS[protocol_name](), n, seed=1)
            result = simulator.run(PARALLEL_TIME)
            assert result.parallel_time == PARALLEL_TIME
            interactions += result.interactions
        return interactions

    interactions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["protocol"] = protocol_name
    benchmark.extra_info["population_sizes"] = list(sizes)
    benchmark.extra_info["parallel_time_per_size"] = PARALLEL_TIME
    benchmark.extra_info["interactions_per_run"] = interactions
    assert interactions == sum(sizes) * PARALLEL_TIME


#: Larger single-cell probe of the batched engine (the matrix above keeps
#: its sizes small so the Python-loop engines stay fast).
BATCHED_SCALE = {"quick": 50_000, "default": 200_000, "paper": 1_000_000}


def test_bench_batched_engine_at_scale(benchmark, effort):
    n, parallel_time = BATCHED_SCALE[effort], 30

    def run():
        simulator = make_engine("batched", DynamicSizeCounting(), n, seed=1)
        return simulator.run(parallel_time)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["population_size"] = n
    benchmark.extra_info["interactions_per_run"] = result.interactions
    assert result.interactions == n * parallel_time


#: Fig. 3-preset-shaped speedup workload per effort level:
#: (population sweep, trials, parallel_time).  The sweep covers the preset's
#: population range up to the >= 10^4 acceptance point; trials match the
#: preset family (>= 16; the paper preset runs 96).
FIG3_SPEEDUP = {
    "quick": ((10, 100, 1_000, 10_000), 16, 60),
    "default": ((10, 100, 1_000, 10_000), 16, 400),
    "paper": ((10, 100, 1_000, 10_000, 100_000), 96, 1_000),
}


def test_bench_ensemble_speedup_fig3_preset(benchmark, effort):
    """Stacked ensemble pass vs per-trial looped batched runs on Fig. 3.

    Wherever the per-trial Python loop dominates — every small/mid-``n``
    point of the preset — the ensemble engine is well over 5x faster (8-16x
    measured).  At ``n = 10^4`` a single population's batches are already
    1250 lanes wide, so the loop overhead the ensemble removes shrinks and
    the win settles around 2x; both regimes are recorded per point in
    ``extra_info`` so the perf trajectory is tracked from this PR on.
    """
    sizes, trials, parallel_time = FIG3_SPEEDUP[effort]

    per_point = {}
    looped_total = ensemble_total = 0.0
    for n in sizes:
        started = time.perf_counter()
        run_estimate_trace(n, parallel_time, trials=trials, seed=1, engine="batched")
        looped = time.perf_counter() - started
        started = time.perf_counter()
        run_estimate_trace(n, parallel_time, trials=trials, seed=1, engine="ensemble")
        stacked = time.perf_counter() - started
        per_point[n] = {
            "looped_batched_seconds": looped,
            "ensemble_seconds": stacked,
            "speedup": looped / stacked,
        }
        looped_total += looped
        ensemble_total += stacked

    loop_bound = [n for n in sizes if n <= 1_000]
    loop_bound_speedup = sum(
        per_point[n]["looped_batched_seconds"] for n in loop_bound
    ) / sum(per_point[n]["ensemble_seconds"] for n in loop_bound)

    benchmark.extra_info["trials"] = trials
    benchmark.extra_info["parallel_time"] = parallel_time
    benchmark.extra_info["per_point"] = {str(n): per_point[n] for n in sizes}
    benchmark.extra_info["sweep_speedup"] = looped_total / ensemble_total
    benchmark.extra_info["loop_bound_speedup"] = loop_bound_speedup

    # The timing column of the JSON tracks the ensemble pass itself.
    benchmark.pedantic(
        lambda: run_estimate_trace(
            sizes[-1], parallel_time, trials=trials, seed=1, engine="ensemble"
        ),
        rounds=1,
        iterations=1,
    )

    # Functional runs only check that both paths completed and were timed;
    # every wall-clock comparison gates on the dedicated bench job
    # (REPRO_BENCH_ASSERT=1 in ci.yml) so shared-runner timing noise can
    # never fail the test suite.
    assert all(p["ensemble_seconds"] > 0 for p in per_point.values())

    # Measured margins: >= 5x asserted at 11-17x on the trial-loop-bound
    # points; the widest point asserted at 1.2x, measured ~2.5x; the whole
    # sweep asserted at 2x, measured ~4.5x.
    if os.environ.get("REPRO_BENCH_ASSERT"):
        assert loop_bound_speedup >= 5.0, per_point
        assert per_point[10_000]["speedup"] >= 1.2, per_point
        assert looped_total / ensemble_total >= 2.0, per_point
