"""Checkpointing overhead benchmark for long-horizon runs.

A thin wrapper over the :mod:`repro.bench` subsystem (timing via
:func:`repro.bench.timing.measure`, normalized cases via the
``suite_cases`` collector, written to ``$REPRO_BENCH_DIR/BENCH_checkpoint.json``
when set) that times the same sharded workload twice — plain, and with
shard checkpoints written at the default cadence — plus a third case
resuming an already-finished run (the idempotent fast path, which must
cost far less than recomputing).

Checkpointing is only worth having if it is effectively free at a sane
cadence: the <5% wall-clock overhead gate is asserted only in the
dedicated bench job (``REPRO_BENCH_ASSERT=1``), so timing noise on shared
runners cannot fail a functional run, but a regression that makes every
segment boundary expensive (say, re-pickling the whole series) is caught
where timing is trusted.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

from repro.bench.suite import CaseResult
from repro.bench.timing import measure
from repro.experiments.figures import run_estimate_trace

#: Suite file the ``suite_cases`` collector writes under ``REPRO_BENCH_DIR``.
BENCH_SUITE_FILENAME = "BENCH_checkpoint.json"

#: Loop-bound workload per effort level: (n, trials, parallel_time,
#: snapshot_every, checkpoint_every).  The cadence spans a couple of
#: trials, so the run writes real checkpoints (several per shard) with
#: hundreds of milliseconds of compute between writes — the regime
#: checkpointing is for.  A long-horizon run checkpoints every minutes of
#: compute; a cadence of several writes per 10ms trial would measure the
#: filesystem, not the subsystem.
WORKLOADS = {
    "quick": (500, 8, 40, 2, 80),
    "default": (500, 32, 60, 2, 120),
    "paper": (1_000, 32, 100, 2, 200),
}

MAX_OVERHEAD = 0.05


def test_bench_checkpoint_overhead(suite_cases, effort):
    n, trials, parallel_time, snapshot_every, checkpoint_every = WORKLOADS[effort]

    def run(**knobs):
        return run_estimate_trace(
            n,
            parallel_time,
            trials=trials,
            seed=1,
            engine="sequential",
            snapshot_every=snapshot_every,
            workers=1,  # checkpointing forces the sharded path; compare like with like
            **knobs,
        )

    tmp = Path(tempfile.mkdtemp(prefix="bench-checkpoint-"))
    try:
        plain = None
        checkpointed = None
        resumed = None

        def run_plain():
            nonlocal plain
            plain = run()

        def run_checkpointed():
            nonlocal checkpointed
            shutil.rmtree(tmp / "ckpt", ignore_errors=True)
            checkpointed = run(checkpoint_every=checkpoint_every, checkpoint_dir=tmp / "ckpt")

        def run_resumed():
            nonlocal resumed
            resumed = run(resume_from=tmp / "ckpt")

        # The overhead gate compares two minima a few percent apart, so a
        # single cold-start sample per side would gate on scheduler noise;
        # min-of-3 after a warmup converges on the systematic cost.
        plain_timing = measure(run_plain, warmup=1, repeats=3)
        ckpt_timing = measure(run_checkpointed, warmup=1, repeats=3)
        resume_timing = measure(run_resumed, warmup=0, repeats=1)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # The durability contract, re-checked at bench scale: checkpointing and
    # resuming change wall-clock only, never results.
    reference = (plain.minimum, plain.median, plain.maximum)
    assert (checkpointed.minimum, checkpointed.median, checkpointed.maximum) == reference
    assert (resumed.minimum, resumed.median, resumed.maximum) == reference

    overhead = ckpt_timing.minimum / plain_timing.minimum - 1.0
    entry = {
        "n": n,
        "trials": trials,
        "parallel_time": parallel_time,
        "snapshot_every": snapshot_every,
        "checkpoint_every": checkpoint_every,
        "plain_seconds": plain_timing.minimum,
        "checkpointed_seconds": ckpt_timing.minimum,
        "resume_finished_seconds": resume_timing.minimum,
        "overhead_fraction": overhead,
    }
    work = n * parallel_time * trials
    for case, timing in (
        ("plain", plain_timing),
        ("checkpointed", ckpt_timing),
        ("resume-finished", resume_timing),
    ):
        suite_cases.append(
            CaseResult(
                case_id=f"checkpoint:{case}@{effort}",
                scenario="checkpoint-overhead",
                engine="sequential",
                workers=1,
                effort=effort,
                seconds=(timing.minimum,),
                work_interactions=work,
                extra=entry,
            )
        )

    # Functional runs only check that everything completed and was timed;
    # the wall-clock gate lives in the dedicated bench job.
    assert plain_timing.minimum > 0 and ckpt_timing.minimum > 0

    # Regression guard: at the default cadence, checkpointing must cost
    # under 5% wall-clock, and resuming a finished run must be much
    # cheaper than recomputing it.
    if os.environ.get("REPRO_BENCH_ASSERT"):
        assert overhead < MAX_OVERHEAD, entry
        assert resume_timing.minimum < 0.5 * plain_timing.minimum, entry
