"""Benchmarks for the adversarial scenario catalog.

Each benchmark regenerates one registered scenario from
:mod:`repro.scenarios.catalog` at the chosen effort level through the
declarative ``run_scenario`` entry point, with the engine auto-selected by
:func:`repro.engine.registry.choose_engine` — timing the whole stack the CLI
exercises (spec expansion, schedule building, stacked ensemble execution,
metric extraction).
"""

from __future__ import annotations

import pytest

from repro.scenarios import run_scenario


@pytest.mark.parametrize(
    "name", ("oscillate", "boom_bust", "churn", "repeated_decimation")
)
def test_bench_catalog_scenario(benchmark, effort, name):
    result = benchmark.pedantic(
        lambda: run_scenario(name, effort=effort), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["preset"] = result.metadata.get("preset")
    benchmark.extra_info["engine"] = result.metadata.get("engine")
    benchmark.extra_info["rows"] = result.rows
    assert result.rows
