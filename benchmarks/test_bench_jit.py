"""Compiled-kernel benchmarks: the jit backend's speedup, measured and gated.

One loop-bound workload — the fig3 shape (small-to-medium populations x
many trials x a real horizon), where per-batch Python overhead dominates
the NumPy kernels — measured four ways on the dynamic-counting protocol:

* ``looped batched`` — the plain batched engine, trials run one at a time.
  This is the committed baseline's loop-bound configuration
  (``fig3@quick``), and the reference all speedups are quoted against.
* ``plain ensemble`` — the stacked NumPy path (``fig3[engine=ensemble]``).
* ``jit batched`` / ``jit ensemble`` — the same two engines with the fused
  compiled kernels of :mod:`repro.kernels`.

Gated margins (``REPRO_BENCH_ASSERT``, skipped when numba is unavailable —
the no-numba CI leg proves the *fallback*, this module proves the *win*):

* jit ensemble >= 10x over looped batched.  The stacked NumPy path alone
  measures 11-17x here; the compiled kernels remove the remaining
  gather/scatter temporaries and rare-branch lane compression on top.
* jit batched >= 2x over looped batched.  Same-engine speedup is bounded
  by Amdahl: pair drawing and the sub-batch loop stay on the NumPy side,
  so only the kernel body (~3/4 of the per-step cost) compiles away.
* jit ensemble >= 1.2x over plain ensemble — compiled must beat
  interpreted on its own engine, else the backend is pointless.

Without ``REPRO_BENCH_ASSERT`` (or without numba) the module still runs
and records honest rows — on a numba-less machine the jit cases measure
the logged NumPy fallback.  Rows land in
``$REPRO_BENCH_DIR/BENCH_jit.json``; the committed
``benchmarks/BENCH_baseline.json`` fig3 cases are attached (calibration
and all) as a non-asserted anchor in ``extra``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.suite import CaseResult, load_suite
from repro.bench.timing import measure
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import make_engine
from repro.kernels import availability, compile_warmup

#: Suite file the ``suite_cases`` collector writes under ``REPRO_BENCH_DIR``.
BENCH_SUITE_FILENAME = "BENCH_jit.json"

#: (population sizes, trials, parallel-time horizon) per effort level — the
#: fig3 shape, loop-bound at quick: the smallest populations make per-batch
#: Python overhead the dominant cost, which is exactly what the compiled
#: kernels remove.
WORKLOAD = {
    "quick": ((10, 100, 1000), 16, 60),
    "default": ((10, 100, 1000, 3162), 32, 120),
    "paper": ((10, 100, 1000, 3162, 10000), 64, 200),
}

#: Gated floors (see module docstring for why each is where it is).
JIT_ENSEMBLE_VS_LOOPED_FLOOR = 10.0
JIT_BATCHED_VS_LOOPED_FLOOR = 2.0
JIT_ENSEMBLE_VS_PLAIN_FLOOR = 1.2

_BASELINE_PATH = Path(__file__).parent / "BENCH_baseline.json"


def _run_batched_looped(ns, trials, horizon, *, jit):
    for n in ns:
        for trial in range(trials):
            make_engine(
                "batched", DynamicSizeCounting(), n, seed=100 + trial, jit=jit
            ).run(horizon)


def _run_ensemble(ns, trials, horizon, *, jit):
    for n in ns:
        make_engine(
            "ensemble", DynamicSizeCounting(), n, seed=100, trials=trials, jit=jit
        ).run(horizon)


def _baseline_anchor():
    """The committed baseline's loop-bound fig3 cases, for context only.

    The baseline measures the full fig3 scenario (engine selection, metric
    extraction and all), this module a stripped engine loop — the shapes
    match but the harnesses differ, so the anchor is recorded, never
    asserted.
    """
    if not _BASELINE_PATH.exists():
        return {"missing": str(_BASELINE_PATH)}
    baseline = load_suite(_BASELINE_PATH)
    cases = baseline.by_case_id()
    anchor = {"calibration_seconds": baseline.calibration_seconds}
    for case_id in ("fig3@quick", "fig3[engine=ensemble]@quick"):
        case = cases.get(case_id)
        if case is not None:
            anchor[case_id] = case.median_seconds
    return anchor


def test_bench_jit_speedup(suite_cases, effort):
    """Four-way measurement of the loop-bound fig3 shape, jit floors gated."""
    ns, trials, horizon = WORKLOAD[effort]
    compiled = availability().enabled
    warmup_fn = compile_warmup if compiled else None

    looped = measure(
        lambda: _run_batched_looped(ns, trials, horizon, jit=False),
        warmup=0,
        repeats=1,
    )
    plain_ensemble = measure(
        lambda: _run_ensemble(ns, trials, horizon, jit=False), warmup=0, repeats=1
    )
    # compile_warmup runs once, before the first jit measurement, so njit
    # compilation lands in compile_seconds instead of a sample.
    jit_batched = measure(
        lambda: _run_batched_looped(ns, trials, horizon, jit=True),
        warmup=0,
        repeats=1,
        warmup_fn=warmup_fn,
    )
    jit_ensemble = measure(
        lambda: _run_ensemble(ns, trials, horizon, jit=True), warmup=0, repeats=1
    )

    work = sum(n * horizon for n in ns) * trials
    status = availability()
    shared_extra = {
        "population_sizes": list(ns),
        "trials": trials,
        "parallel_time": horizon,
        "jit_available": status.enabled,
        "jit_reason": status.reason,
        "looped_batched_seconds": looped.minimum,
        "plain_ensemble_seconds": plain_ensemble.minimum,
        "jit_batched_seconds": jit_batched.minimum,
        "jit_ensemble_seconds": jit_ensemble.minimum,
        "jit_batched_speedup_vs_looped": looped.minimum / jit_batched.minimum,
        "jit_ensemble_speedup_vs_looped": looped.minimum / jit_ensemble.minimum,
        "jit_ensemble_speedup_vs_plain": plain_ensemble.minimum
        / jit_ensemble.minimum,
        "baseline_anchor": _baseline_anchor(),
    }

    for case_id, engine, timing, jit_flag in (
        (f"jit-speedup[engine=batched]@{effort}", "batched", looped, False),
        (f"jit-speedup[engine=ensemble]@{effort}", "ensemble", plain_ensemble, False),
        (f"jit-speedup[engine=batched,jit=on]@{effort}", "batched", jit_batched, True),
        (
            f"jit-speedup[engine=ensemble,jit=on]@{effort}",
            "ensemble",
            jit_ensemble,
            True,
        ),
    ):
        suite_cases.append(
            CaseResult(
                case_id=case_id,
                scenario="jit-speedup",
                engine=engine,
                effort=effort,
                seconds=(timing.minimum,),
                work_interactions=work,
                compile_seconds=timing.compile_seconds if jit_flag else None,
                extra=shared_extra,
            )
        )

    assert looped.minimum > 0 and plain_ensemble.minimum > 0
    assert jit_batched.minimum > 0 and jit_ensemble.minimum > 0

    if not os.environ.get("REPRO_BENCH_ASSERT"):
        return
    if not compiled:
        pytest.skip(f"compiled kernels unavailable ({status.reason})")
    assert (
        shared_extra["jit_ensemble_speedup_vs_looped"]
        >= JIT_ENSEMBLE_VS_LOOPED_FLOOR
    ), shared_extra
    assert (
        shared_extra["jit_batched_speedup_vs_looped"] >= JIT_BATCHED_VS_LOOPED_FLOOR
    ), shared_extra
    assert (
        shared_extra["jit_ensemble_speedup_vs_plain"] >= JIT_ENSEMBLE_VS_PLAIN_FLOOR
    ), shared_extra
