"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper at the
``quick`` preset (laptop-scale) and records the resulting rows in the
benchmark's ``extra_info`` so that the numbers appear in the pytest-benchmark
JSON output alongside the timing.  Set the environment variable
``REPRO_BENCH_EFFORT=default`` (or ``paper``) to run the larger presets.

The engine/parallel speedup modules are thin wrappers over the
:mod:`repro.bench` subsystem instead: they time through
:func:`repro.bench.timing.measure`, collect :class:`repro.bench.suite.CaseResult`
rows via the :func:`suite_cases` fixture, and — when ``REPRO_BENCH_DIR`` is
set — write one normalized, schema-versioned suite JSON per module
(``BENCH_engines.json`` / ``BENCH_parallel.json``), the same format the
``python -m repro.bench`` CLI produces.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.suite import BenchSuite, CaseResult
from repro.bench.timing import calibration_seconds


@pytest.fixture(scope="session")
def effort() -> str:
    """Benchmark effort level, controlled by REPRO_BENCH_EFFORT."""
    level = os.environ.get("REPRO_BENCH_EFFORT", "quick")
    if level not in ("quick", "default", "paper"):
        raise ValueError(f"invalid REPRO_BENCH_EFFORT {level!r}")
    return level


@pytest.fixture(scope="module")
def suite_cases(request, effort) -> list[CaseResult]:
    """Per-module collector of normalized benchmark cases.

    Tests append :class:`CaseResult` rows; at module teardown the collected
    cases are written as one :class:`BenchSuite` to
    ``$REPRO_BENCH_DIR/<module's BENCH_SUITE_FILENAME>`` when that
    environment variable is set (the CI bench job sets it to upload the
    suites as artifacts).  Without it the cases are simply discarded — the
    assertions in the tests themselves are the point of a plain pytest run.
    """
    cases: list[CaseResult] = []
    yield cases
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    filename = getattr(request.module, "BENCH_SUITE_FILENAME", None)
    if not out_dir or filename is None or not cases:
        return
    suite = BenchSuite(
        cases=tuple(cases),
        effort=effort,
        warmup=0,
        repeats=1,
        calibration_seconds=calibration_seconds(),
    )
    suite.save(Path(out_dir) / filename)


def run_experiment_benchmark(benchmark, runner, effort: str):
    """Run an experiment once under pytest-benchmark and attach its rows."""
    result = benchmark.pedantic(lambda: runner(effort=effort), rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["preset"] = result.metadata.get("preset")
    benchmark.extra_info["rows"] = result.rows
    return result
