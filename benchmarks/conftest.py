"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper at the
``quick`` preset (laptop-scale) and records the resulting rows in the
benchmark's ``extra_info`` so that the numbers appear in the pytest-benchmark
JSON output alongside the timing.  Set the environment variable
``REPRO_BENCH_EFFORT=default`` (or ``paper``) to run the larger presets.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def effort() -> str:
    """Benchmark effort level, controlled by REPRO_BENCH_EFFORT."""
    level = os.environ.get("REPRO_BENCH_EFFORT", "quick")
    if level not in ("quick", "default", "paper"):
        raise ValueError(f"invalid REPRO_BENCH_EFFORT {level!r}")
    return level


def run_experiment_benchmark(benchmark, runner, effort: str):
    """Run an experiment once under pytest-benchmark and attach its rows."""
    result = benchmark.pedantic(lambda: runner(effort=effort), rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["preset"] = result.metadata.get("preset")
    benchmark.extra_info["rows"] = result.rows
    return result
