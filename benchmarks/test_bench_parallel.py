"""Shard-count scaling benchmark of the parallel execution layer.

Times the Fig. 3-preset-shaped workload under the sharded execution path
at ``workers`` ∈ {1, 2, 4} on its *loop-bound* point — the regime where
per-trial Python work dominates and process sharding should scale with
cores — and records per-worker-count seconds plus speedups in
``extra_info``.  CI runs this module with ``--benchmark-json
BENCH_parallel.json`` and uploads the artifact, so the scaling trajectory
is tracked PR over PR alongside ``BENCH_engines.json``.

Two loop-bound flavours are measured:

* the **sequential engine** (pure-Python interaction loop — the workload
  that cannot use the ensemble engine's in-process batching at all and
  has historically capped sweep throughput at one core), and
* **looped batched trials at small n** (the per-trial Python loop the
  ensemble engine removes in-process; sharding attacks the same loop
  with processes instead).

The >= 2x speedup at 4 workers is asserted only in the dedicated bench
job (``REPRO_BENCH_ASSERT=1``) and only when the machine actually has
>= 4 CPUs — on fewer cores (or shared runners without the flag) the
numbers are recorded but never gate the suite, so timing noise and
single-core containers cannot fail it.
"""

from __future__ import annotations

import os
import time

from repro.experiments.figures import run_estimate_trace

#: Fig. 3-preset-shaped loop-bound workloads per effort level:
#: (sequential point, looped-batched point), each (n, trials, parallel_time).
#: Trial counts are multiples of 4x the default shard size so the point
#: splits into at least four equal shards (4-worker parallelism with no
#: straggler); the sequential point keeps ``n`` modest because its cost is
#: O(n * parallel_time * trials) in Python.
WORKLOADS = {
    "quick": {"sequential": (200, 32, 40), "batched": (1_000, 32, 60)},
    "default": {"sequential": (500, 32, 60), "batched": (1_000, 64, 200)},
    "paper": {"sequential": (1_000, 32, 100), "batched": (10_000, 96, 400)},
}

WORKER_COUNTS = (1, 2, 4)


def _time_point(engine: str, n: int, trials: int, parallel_time: int, workers: int):
    started = time.perf_counter()
    trace = run_estimate_trace(
        n,
        parallel_time,
        trials=trials,
        seed=1,
        engine=engine,
        workers=workers,
    )
    elapsed = time.perf_counter() - started
    return elapsed, trace


def test_bench_parallel_shard_scaling(benchmark, effort):
    workloads = WORKLOADS[effort]
    cpu_count = os.cpu_count() or 1

    per_engine: dict[str, dict] = {}
    for engine, (n, trials, parallel_time) in workloads.items():
        seconds = {}
        reference_rows = None
        for workers in WORKER_COUNTS:
            elapsed, trace = _time_point(engine, n, trials, parallel_time, workers)
            seconds[workers] = elapsed
            # The determinism contract, re-checked at bench scale: every
            # worker count reproduces the same aggregated trace.
            rows = (trace.minimum, trace.median, trace.maximum)
            if reference_rows is None:
                reference_rows = rows
            else:
                assert rows == reference_rows, (
                    f"{engine}: workers={workers} changed the results"
                )
        per_engine[engine] = {
            "n": n,
            "trials": trials,
            "parallel_time": parallel_time,
            "seconds_by_workers": {str(w): seconds[w] for w in WORKER_COUNTS},
            "speedup_2_workers": seconds[1] / seconds[2],
            "speedup_4_workers": seconds[1] / seconds[4],
        }

    benchmark.extra_info["cpu_count"] = cpu_count
    benchmark.extra_info["worker_counts"] = list(WORKER_COUNTS)
    benchmark.extra_info["per_engine"] = per_engine

    # The timing column of the JSON tracks the 4-worker sequential point —
    # the sharded path this benchmark exists to guard.
    n, trials, parallel_time = workloads["sequential"]
    benchmark.pedantic(
        lambda: run_estimate_trace(
            n, parallel_time, trials=trials, seed=1, engine="sequential", workers=4
        ),
        rounds=1,
        iterations=1,
    )

    # Functional runs only check that everything completed and was timed;
    # the wall-clock gate lives in the dedicated bench job.
    assert all(
        entry["seconds_by_workers"][str(w)] > 0
        for entry in per_engine.values()
        for w in WORKER_COUNTS
    )

    # Regression guard: on a >= 4-core machine the loop-bound points must
    # scale at least 2x at 4 workers (near-linear minus pool startup and
    # result pickling; CI runners measure comfortably above this floor).
    if os.environ.get("REPRO_BENCH_ASSERT") and cpu_count >= 4:
        for engine, entry in per_engine.items():
            assert entry["speedup_4_workers"] >= 2.0, (engine, per_engine)
