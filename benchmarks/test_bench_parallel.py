"""Shard-count scaling benchmark of the parallel execution layer.

A thin wrapper over the :mod:`repro.bench` subsystem (timing via
:func:`repro.bench.timing.measure`, normalized cases via the
``suite_cases`` collector, written to ``$REPRO_BENCH_DIR/BENCH_parallel.json``
when set) that times the Fig. 3-preset-shaped workload under the sharded
execution path at ``workers`` ∈ {1, 2, 4} on its *loop-bound* points —
the regime where per-trial Python work dominates and process sharding
should scale with cores.

Two loop-bound flavours are measured:

* the **sequential engine** (pure-Python interaction loop — the workload
  that cannot use the ensemble engine's in-process batching at all and
  has historically capped sweep throughput at one core), and
* **looped batched trials at small n** (the per-trial Python loop the
  ensemble engine removes in-process; sharding attacks the same loop
  with processes instead).

The >= 2x speedup at 4 workers is asserted only in the dedicated bench
job (``REPRO_BENCH_ASSERT=1``) and only when the machine actually has
>= 4 CPUs — on fewer cores (or shared runners without the flag) the
numbers are recorded but never gate the suite, so timing noise and
single-core containers cannot fail it.
"""

from __future__ import annotations

import os

from repro.bench.suite import CaseResult
from repro.bench.timing import measure
from repro.experiments.figures import run_estimate_trace

#: Suite file the ``suite_cases`` collector writes under ``REPRO_BENCH_DIR``.
BENCH_SUITE_FILENAME = "BENCH_parallel.json"

#: Fig. 3-preset-shaped loop-bound workloads per effort level:
#: (sequential point, looped-batched point), each (n, trials, parallel_time).
#: Trial counts are multiples of 4x the default shard size so the point
#: splits into at least four equal shards (4-worker parallelism with no
#: straggler); the sequential point keeps ``n`` modest because its cost is
#: O(n * parallel_time * trials) in Python.
WORKLOADS = {
    "quick": {"sequential": (200, 32, 40), "batched": (1_000, 32, 60)},
    "default": {"sequential": (500, 32, 60), "batched": (1_000, 64, 200)},
    "paper": {"sequential": (1_000, 32, 100), "batched": (10_000, 96, 400)},
}

WORKER_COUNTS = (1, 2, 4)


def test_bench_parallel_shard_scaling(suite_cases, effort):
    workloads = WORKLOADS[effort]
    cpu_count = os.cpu_count() or 1

    per_engine: dict[str, dict] = {}
    for engine, (n, trials, parallel_time) in workloads.items():
        seconds = {}
        reference_rows = None
        for workers in WORKER_COUNTS:
            trace = None

            def point(workers=workers):
                nonlocal trace
                trace = run_estimate_trace(
                    n,
                    parallel_time,
                    trials=trials,
                    seed=1,
                    engine=engine,
                    workers=workers,
                )

            timing = measure(point, warmup=0, repeats=1)
            seconds[workers] = timing.minimum
            # The determinism contract, re-checked at bench scale: every
            # worker count reproduces the same aggregated trace.
            rows = (trace.minimum, trace.median, trace.maximum)
            if reference_rows is None:
                reference_rows = rows
            else:
                assert rows == reference_rows, (
                    f"{engine}: workers={workers} changed the results"
                )
        entry = {
            "n": n,
            "trials": trials,
            "parallel_time": parallel_time,
            "seconds_by_workers": {str(w): seconds[w] for w in WORKER_COUNTS},
            "speedup_2_workers": seconds[1] / seconds[2],
            "speedup_4_workers": seconds[1] / seconds[4],
            "cpu_count": cpu_count,
        }
        per_engine[engine] = entry
        work = n * parallel_time * trials
        for workers in WORKER_COUNTS:
            suite_cases.append(
                CaseResult(
                    case_id=f"shard-scaling:{engine}[workers={workers}]@{effort}",
                    scenario=f"shard-scaling:{engine}",
                    engine=engine,
                    workers=workers,
                    effort=effort,
                    seconds=(seconds[workers],),
                    work_interactions=work,
                    extra=entry,
                )
            )

    # Functional runs only check that everything completed and was timed;
    # the wall-clock gate lives in the dedicated bench job.
    assert all(
        entry["seconds_by_workers"][str(w)] > 0
        for entry in per_engine.values()
        for w in WORKER_COUNTS
    )

    # Regression guard: on a >= 4-core machine the loop-bound points must
    # scale at least 2x at 4 workers (near-linear minus pool startup and
    # result pickling; CI runners measure comfortably above this floor).
    if os.environ.get("REPRO_BENCH_ASSERT") and cpu_count >= 4:
        for engine, entry in per_engine.items():
            assert entry["speedup_4_workers"] >= 2.0, (engine, per_engine)
