"""Benchmark regenerating Fig. 4: adaptation after population decimation.

Paper reference: Section 5, Figure 4 — all but 500 agents are removed after
1350 parallel time; the estimate drops to the new log n within a couple of
clock rounds.
"""

from __future__ import annotations


from conftest import run_experiment_benchmark

from repro.experiments.fig4_population_drop import run_fig4


def test_bench_fig4_population_drop(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_fig4, effort)
    for row in result.rows:
        # Before the drop the estimate tracks the original population size.
        assert row["median_before_drop"] >= 0.5 * row["log2_n"]
        # The drop is detected: the adaptation-time column is populated
        # whenever the original population is meaningfully larger than the
        # surviving one.
        if row["log2_n"] - row["log2_keep"] >= 2.0:
            assert row["adapted"], f"no adaptation detected for n={row['n']}"
            assert row["adaptation_time"] > row["drop_time"]
    print()
    print(result.table())
