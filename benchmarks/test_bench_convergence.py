"""Benchmark for the Theorem 2.1 convergence-time table.

Regenerates the measured convergence time against the ``log n-hat + log n``
reference for a sweep of population sizes and initial estimates.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.convergence_table import run_convergence_table


def test_bench_convergence_table(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_convergence_table, effort)
    for row in result.rows:
        assert row["converged"], f"run did not converge: {row}"
        assert row["convergence_time"] >= 0
    print()
    print(result.table())
