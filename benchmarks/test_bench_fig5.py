"""Benchmark regenerating Fig. 5 (Appendix B): recovery from an initial estimate of 60.

Paper reference: Appendix B, Figure 5 — every agent starts with an estimate
of 60; the over-estimate dominates for a period that shrinks (relative to
the horizon) as n grows, and is eventually forgotten.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.fig5_initial_estimate import run_fig5


def test_bench_fig5_initial_estimate(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_fig5, effort)
    rows = sorted(result.rows, key=lambda row: row["n"])
    # The largest population always forgets the over-estimate within the
    # horizon (its clock rounds are short relative to the horizon).
    largest = rows[-1]
    assert largest["forgot_initial_estimate"]
    assert largest["median_at_end"] < largest["initial_estimate"]
    print()
    print(result.table())
