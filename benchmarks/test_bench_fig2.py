"""Benchmark regenerating Fig. 2: size estimate over time, initially empty system.

Paper reference: Section 5, Figure 2 — minimum/median/maximum estimate of
``log n`` over 5000 parallel time for n = 10^6 (96 runs).  The quick preset
scales n and the horizon down; the shape (fast rise to slightly above
``log2 n``, then a stable plateau) is preserved.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.fig2_size_estimate import run_fig2


def test_bench_fig2_size_estimate(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_fig2, effort)
    for row in result.rows:
        # The steady-state estimate is a constant-factor approximation of
        # log2 n (the max-of-GRVs offset makes it sit above log2 n).
        assert row["steady_median"] >= 0.5 * row["log2_n"]
        assert row["steady_maximum"] <= 8.0 * row["log2_n"]
    print()
    print(result.table())
