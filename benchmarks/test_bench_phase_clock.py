"""Benchmark for the Theorem 2.2 phase-clock structure.

Checks the burst/overlap claim on the exact engine: in (almost) every burst
each agent ticks exactly once, and the clock period is Theta(n log n)
interactions.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.phase_clock_experiment import run_phase_clock_experiment


def test_bench_phase_clock(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_phase_clock_experiment, effort)
    for row in result.rows:
        assert row["exact_burst_fraction"] >= 0.6
        assert row["mean_overlap_interactions"] > row["mean_burst_interactions"]
        assert row["mean_period_interactions"] > 0
    print()
    print(result.table())
