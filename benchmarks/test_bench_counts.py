"""Counts-engine benchmarks: the O(|Q|^2)-per-step claim, measured.

Two workloads, recorded as normalized :class:`repro.bench.suite.CaseResult`
rows (written to ``$REPRO_BENCH_DIR/BENCH_counts.json`` when set):

* **speedup vs batched** — seconds per parallel-time step of the counts
  engine vs the batched engine on the dynamic-counting protocol at
  ``n = 10^6``.  The counts cost is amortized over a realistic horizon
  because its first ~30 steps traverse the warm-up state-space peak; the
  batched engine's per-step cost is constant, so a short probe suffices.
* **per-step flatness** — steady-state (post-warm-up) seconds per step of
  the counts engine at ``n = 10^4`` vs ``n = 10^7``.  The state count
  |Q| grows only logarithmically with ``n``, so the per-step cost must be
  measurably flat across three orders of magnitude of population size.

As everywhere in this suite, the wall-clock assertions gate on
``REPRO_BENCH_ASSERT`` (set by the dedicated CI bench job) so shared-runner
noise can never fail a plain test run.
"""

from __future__ import annotations

import os

from repro.bench.suite import CaseResult
from repro.bench.timing import measure
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import make_engine

#: Suite file the ``suite_cases`` collector writes under ``REPRO_BENCH_DIR``.
BENCH_SUITE_FILENAME = "BENCH_counts.json"

#: (population size, batched steps, counts steps) per effort level.  The
#: batched engine's per-step cost is flat in the horizon, so it gets a short
#: probe; the counts engine runs long enough to amortize its warm-up.
SPEEDUP = {
    "quick": (1_000_000, 8, 100),
    "default": (1_000_000, 12, 200),
    "paper": (10_000_000, 4, 200),
}

#: (small n, huge n) for the per-step flatness probe, plus how many steps to
#: skip as warm-up and how many to time at steady state.
FLATNESS = {
    "quick": (10_000, 10_000_000),
    "default": (10_000, 10_000_000),
    "paper": (10_000, 100_000_000),
}
FLATNESS_WARMUP_STEPS = 30
FLATNESS_TIMED_STEPS = 20


def test_bench_counts_speedup_vs_batched(suite_cases, effort):
    """Counts vs batched on dynamic counting at n = 10^6 (10^7 at paper).

    Measured margins: the batched engine spends ~0.4 s per parallel step at
    ``n = 10^6`` (per-agent work), the counts engine ~0.03 s amortized
    (~0.007 s at steady state) — a 10x floor asserted at a measured ~14x.
    """
    n, batched_steps, counts_steps = SPEEDUP[effort]

    def run_batched() -> None:
        make_engine("batched", DynamicSizeCounting(), n, seed=1).run(batched_steps)

    def run_counts() -> None:
        make_engine("counts", DynamicSizeCounting(), n, seed=1).run(counts_steps)

    batched_timing = measure(run_batched, warmup=0, repeats=1)
    counts_timing = measure(run_counts, warmup=0, repeats=1)
    batched_per_step = batched_timing.minimum / batched_steps
    counts_per_step = counts_timing.minimum / counts_steps
    speedup = batched_per_step / counts_per_step

    shared_extra = {
        "population_size": n,
        "batched_steps": batched_steps,
        "counts_steps": counts_steps,
        "batched_seconds_per_step": batched_per_step,
        "counts_seconds_per_step": counts_per_step,
        "per_step_speedup": speedup,
    }
    suite_cases.append(
        CaseResult(
            case_id=f"counts-speedup[engine=batched,n={n}]@{effort}",
            scenario="counts-speedup",
            engine="batched",
            effort=effort,
            seconds=(batched_timing.minimum,),
            work_interactions=n * batched_steps,
            extra=shared_extra,
        )
    )
    suite_cases.append(
        CaseResult(
            case_id=f"counts-speedup[engine=counts,n={n}]@{effort}",
            scenario="counts-speedup",
            engine="counts",
            effort=effort,
            seconds=(counts_timing.minimum,),
            work_interactions=n * counts_steps,
            extra=shared_extra,
        )
    )

    assert batched_per_step > 0 and counts_per_step > 0
    if os.environ.get("REPRO_BENCH_ASSERT"):
        assert speedup >= 10.0, shared_extra


def test_bench_counts_per_step_flat_in_population_size(suite_cases, effort):
    """Steady-state per-step seconds at n = 10^4 vs n = 10^7.

    The occupied state count settles around 400 at 10^4 and 1000 at 10^7,
    so the steady-state per-step cost grows ~3x while the population grows
    1000x; asserted with a generous 10x allowance.
    """
    per_step: dict[int, float] = {}
    for n in FLATNESS[effort]:
        engine = make_engine("counts", DynamicSizeCounting(), n, seed=1)
        for _ in range(FLATNESS_WARMUP_STEPS):
            engine.step_parallel_round()

        def steady(engine=engine) -> None:
            for _ in range(FLATNESS_TIMED_STEPS):
                engine.step_parallel_round()

        timing = measure(steady, warmup=0, repeats=1)
        per_step[n] = timing.minimum / FLATNESS_TIMED_STEPS

    small, huge = FLATNESS[effort]
    extra = {
        "seconds_per_step": {str(n): s for n, s in per_step.items()},
        "population_ratio": huge / small,
        "per_step_ratio": per_step[huge] / per_step[small],
        "warmup_steps": FLATNESS_WARMUP_STEPS,
        "timed_steps": FLATNESS_TIMED_STEPS,
    }
    suite_cases.append(
        CaseResult(
            case_id=f"counts-flatness[n={small}..{huge}]@{effort}",
            scenario="counts-flatness",
            engine="counts",
            effort=effort,
            seconds=(sum(per_step.values()) * FLATNESS_TIMED_STEPS,),
            work_interactions=(small + huge) * FLATNESS_TIMED_STEPS,
            extra=extra,
        )
    )

    assert all(s > 0 for s in per_step.values())
    if os.environ.get("REPRO_BENCH_ASSERT"):
        # 1000x more agents may cost at most 10x per step (measured ~3x).
        assert per_step[huge] <= 10.0 * per_step[small], extra
