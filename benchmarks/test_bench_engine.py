"""Engine micro-benchmarks (engineering, not in the paper).

Measures interactions per second of the exact sequential engine and of the
batched engine on the dynamic size counting protocol, so that regressions in
the simulation substrate are visible in CI.
"""

from __future__ import annotations

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.batch_engine import BatchedSimulator
from repro.engine.simulator import Simulator


def test_bench_sequential_engine(benchmark):
    n, parallel_time = 500, 30

    def run():
        simulator = Simulator(DynamicSizeCounting(), n, seed=1)
        simulator.run(parallel_time)
        return simulator.interactions_executed

    interactions = benchmark(run)
    benchmark.extra_info["interactions_per_run"] = interactions
    assert interactions == n * parallel_time


def test_bench_batched_engine(benchmark):
    n, parallel_time = 50_000, 30

    def run():
        simulator = BatchedSimulator(VectorizedDynamicCounting(), n, seed=1)
        simulator.run(parallel_time)
        return simulator.parallel_time

    steps = benchmark(run)
    benchmark.extra_info["parallel_time_per_run"] = steps
    benchmark.extra_info["interactions_per_run"] = steps * n
    assert steps == parallel_time
