"""Benchmark for the qualitative baseline comparison (Section 2.2 discussion).

Our protocol and the Doty–Eftekhari baseline both adapt to a decimation
event; the static max-of-GRVs baseline does not.  The baseline also pays a
visibly larger per-agent memory footprint.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.baseline_comparison import run_baseline_comparison


def test_bench_baseline_comparison(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_baseline_comparison, effort)
    by_protocol = {}
    for row in result.rows:
        by_protocol.setdefault(row["protocol"], []).append(row)
    for row in by_protocol["dynamic-size-counting (ours)"]:
        assert row["adapted_to_drop"]
    for row in by_protocol["static-max-grv"]:
        assert not row["adapted_to_drop"]
    for row in by_protocol["doty-eftekhari-2022"]:
        ours = by_protocol["dynamic-size-counting (ours)"][0]
        assert row["peak_bits_per_agent"] > ours["peak_bits_per_agent"]
    print()
    print(result.table())
