"""Benchmark for the Theorem 2.1 holding-time table.

Within any feasible simulation horizon the holding time is only a lower
bound (the theoretical holding time is ``Theta(n^{k-1} log n)`` with k=16);
the benchmark checks that validity holds until the end of every run.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.holding_table import run_holding_table


def test_bench_holding_table(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_holding_table, effort)
    for row in result.rows:
        assert row["held_until_end_of_run"], f"estimates became invalid: {row}"
        assert row["observed_rounds_held"] > 1
    print()
    print(result.table())
