"""Benchmark for the Theorem 2.1 space-complexity comparison.

Ours (O(log s + log log n) bits) versus the Doty–Eftekhari baseline
(O(log n log log n)-style storage): the baseline must use strictly more bits
per agent, and the gap must widen with n.
"""

from __future__ import annotations

from conftest import run_experiment_benchmark

from repro.experiments.memory_table import run_memory_table


def test_bench_memory_table(benchmark, effort):
    result = run_experiment_benchmark(benchmark, run_memory_table, effort)
    rows = sorted(result.rows, key=lambda row: row["n"])
    for row in rows:
        assert row["doty_eftekhari_steady_bits"] > row["ours_steady_bits"]
    # The overhead factor grows with n (different asymptotics).
    assert rows[-1]["baseline_over_ours"] >= rows[0]["baseline_over_ours"] * 0.9
    print()
    print(result.table())
