#!/usr/bin/env python3
"""Composing the size estimate with a payload protocol: dynamic majority.

The paper's purpose for dynamic size counting is to drive *non-uniform*
payload protocols — protocols whose phase clocks need an estimate of
log n — in populations whose size changes.  This example wires the
phase-clocked majority payload to the dynamic size counting clock via
:class:`repro.core.ComposedProtocol`:

* 60 % of the agents start with opinion A, 40 % with opinion B,
* the clock component estimates log2(n) and ticks once per round,
* every tick advances the payload's phase (alternating cancellation and
  doubling), and
* halfway through the run the adversary removes a large, biased chunk of
  the population, which the composition survives.

Run it with::

    python examples/dynamic_majority.py
"""

from __future__ import annotations

import math
from collections import Counter

from repro.core import ComposedProtocol, DynamicSizeCounting
from repro.engine import RandomSource, RemoveAgentsAt, Simulator
from repro.protocols import PhasedMajority, PhasedMajorityState


def opinion_counts(composed: ComposedProtocol, simulator: Simulator) -> Counter:
    return Counter(composed.output(state) for state in simulator.states())


def main() -> None:
    n = 400
    share_a = 0.6
    parallel_time = 500

    rng = RandomSource.from_seed(123)
    payload = PhasedMajority(max_exponent=20)
    composed = ComposedProtocol(payload, counting=DynamicSizeCounting())

    payload_states = []
    for index in range(n):
        opinion = 1 if index < int(share_a * n) else -1
        payload_states.append(PhasedMajorityState(opinion=opinion))
    population = composed.make_initial_population(n, rng, payload_states=payload_states)

    adversary = RemoveAgentsAt(time=parallel_time // 2, count=n // 4)
    simulator = Simulator(composed, population, rng=rng, adversary=adversary)

    print(f"Population of {n} agents: {share_a:.0%} opinion A (+1), {1-share_a:.0%} opinion B (-1)")
    print(f"An adversary removes {n // 4} random agents at t={parallel_time // 2}.")
    print()
    print(f"{'time':>6}  {'agents':>6}  {'A':>5}  {'B':>5}  {'neutral':>7}  {'median est.':>11}")

    for checkpoint in range(0, parallel_time, 50):
        simulator.run(50)
        counts = opinion_counts(composed, simulator)
        estimates = sorted(composed.estimate(state) for state in simulator.states())
        median_estimate = estimates[len(estimates) // 2]
        print(
            f"{simulator.parallel_time:>6}  {simulator.population.size:>6}  "
            f"{counts.get(1, 0):>5}  {counts.get(-1, 0):>5}  {counts.get(0, 0):>7}  "
            f"{median_estimate:>11.1f}"
        )

    counts = opinion_counts(composed, simulator)
    a, b = counts.get(1, 0), counts.get(-1, 0)
    print()
    winner = "A" if a > b else "B"
    print(
        f"Signed opinion balance at the end: A={a}, B={b}, neutral={counts.get(0, 0)} "
        f"-> current leader: {winner} (initial majority was A)"
    )
    print(
        "Size estimate tracked log2(n): final median "
        f"{sorted(composed.estimate(s) for s in simulator.states())[simulator.population.size // 2]:.1f} "
        f"vs log2({simulator.population.size}) = {math.log2(simulator.population.size):.1f}"
    )


if __name__ == "__main__":
    main()
