#!/usr/bin/env python3
"""Side-by-side comparison: ours vs Doty–Eftekhari vs a static counter.

Reproduces, at example scale, the qualitative comparison of Section 2.2:

* the static max-of-GRVs counter never notices that the population shrank,
* the Doty–Eftekhari dynamic baseline adapts but stores far more bits per
  agent,
* the paper's protocol adapts with an (asymptotically) optimal footprint.

Run it with::

    python examples/compare_baselines.py
"""

from __future__ import annotations

import math

from repro.core import DynamicSizeCounting
from repro.engine import EstimateRecorder, MemoryRecorder, RemoveAllButAt, Simulator
from repro.protocols import DotyEftekhariCounting, MaxGrvCounting


def run(protocol, n: int, keep: int, drop_time: int, horizon: int, seed: int):
    estimates = EstimateRecorder()
    memory = MemoryRecorder()
    simulator = Simulator(
        protocol,
        n,
        seed=seed,
        adversary=RemoveAllButAt(time=drop_time, keep=keep),
        recorders=[estimates, memory],
    )
    simulator.run(horizon)
    before = [r.median for r in estimates.rows if r.parallel_time < drop_time][-1]
    tail = sorted(r.median for r in estimates.rows if r.parallel_time > horizon * 0.8)
    after = tail[len(tail) // 2]
    return before, after, memory.peak_bits()


def main() -> None:
    n, keep, drop_time, horizon = 600, 60, 150, 900
    print(
        f"Workload: {n} agents, decimated to {keep} at t={drop_time}; "
        f"log2({n}) = {math.log2(n):.1f}, log2({keep}) = {math.log2(keep):.1f}"
    )
    print()
    print(f"{'protocol':<32}  {'before drop':>11}  {'after drop':>10}  {'peak bits/agent':>15}")

    contenders = [
        ("dynamic-size-counting (ours)", DynamicSizeCounting()),
        ("doty-eftekhari-2022", DotyEftekhariCounting()),
        ("static-max-grv", MaxGrvCounting(samples_per_agent=16)),
    ]
    for label, protocol in contenders:
        before, after, bits = run(protocol, n, keep, drop_time, horizon, seed=5)
        print(f"{label:<32}  {before:>11.1f}  {after:>10.1f}  {bits:>15.0f}")

    print()
    print(
        "The static counter keeps its stale estimate forever; both dynamic "
        "protocols adapt, and ours does so with the smallest per-agent state."
    )


if __name__ == "__main__":
    main()
