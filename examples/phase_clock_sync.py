#!/usr/bin/env python3
"""Using the counting protocol as a uniform loosely-stabilizing phase clock.

Theorem 2.2 of the paper: once the population holds estimates of
Theta(log n), the reset events partition time into *bursts* — every agent
ticks exactly once — separated by tick-free *overlaps*, both of length
Theta(n log n) interactions.

This example records every tick of :class:`repro.core.UniformPhaseClock`,
reconstructs the bursts and overlaps with the synchronization analysis, and
prints the measured structure next to the Theta(n log n) reference.

Run it with::

    python examples/phase_clock_sync.py
"""

from __future__ import annotations

import math

from repro.analysis import analyze_synchrony, phase_clock_period_interactions
from repro.core import UniformPhaseClock
from repro.engine import EventRecorder, Simulator


def main() -> None:
    n = 200
    parallel_time = 1_000

    clock = UniformPhaseClock()
    ticks = EventRecorder(kinds={"tick"})
    simulator = Simulator(clock, n, seed=99, recorders=[ticks])

    print(f"Running the uniform phase clock with {n} agents for {parallel_time} parallel time ...")
    simulator.run(parallel_time)

    # Skip the convergence transient: analyse only the second half of the run.
    cutoff = simulator.interactions_executed // 2
    events = [event for event in ticks.events if event.interaction >= cutoff]
    report = analyze_synchrony(events, n, gap_threshold=3 * n)

    reference = phase_clock_period_interactions(n, clock.params, math.log2(n))
    print()
    print(f"Bursts analysed (interior):        {report.total_bursts}")
    print(f"Bursts where every agent ticked exactly once: {report.exact_bursts} "
          f"({report.exact_fraction:.0%})")
    print(f"Mean burst length:                 {report.mean_burst_length():,.0f} interactions")
    print(f"Mean overlap length:               {report.mean_overlap_length():,.0f} interactions")
    print(f"Mean clock period:                 {report.mean_period():,.0f} interactions")
    print(f"tau_1 * n * log2(n) reference:     {reference:,.0f} interactions")
    print()
    print("Per-hour occupancy of the final configuration:")
    hours = {}
    for state in simulator.states():
        hours[clock.hour_of(state).value] = hours.get(clock.hour_of(state).value, 0) + 1
    for hour, count in sorted(hours.items()):
        print(f"  {hour:>9}: {count} agents")


if __name__ == "__main__":
    main()
