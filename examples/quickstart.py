#!/usr/bin/env python3
"""Quickstart: run the dynamic size counting protocol and read the estimate.

This example

1. builds the paper's protocol (Algorithm 2) with the empirical parameters
   of Section 5 (tau_1=6, tau_2=4, tau_3=2, tau'=20, k=16),
2. simulates a population of 500 agents on the exact sequential engine,
3. prints the min/median/max estimate of log2(n) every 25 parallel time
   steps, and
4. reports how many clock ticks (resets) each agent experienced — the same
   protocol doubles as a uniform loosely-stabilizing phase clock.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import math
from collections import Counter

from repro.core import DynamicSizeCounting
from repro.engine import EstimateRecorder, EventRecorder, Simulator


def main() -> None:
    n = 500
    parallel_time = 300

    protocol = DynamicSizeCounting()
    estimates = EstimateRecorder()
    ticks = EventRecorder(kinds={"reset"})
    simulator = Simulator(protocol, n, seed=2024, recorders=[estimates, ticks])

    print(f"Simulating {n} agents for {parallel_time} parallel time steps ...")
    print(f"(true log2 n = {math.log2(n):.2f}; the estimate includes a +log2(k) offset)")
    print()
    print(f"{'time':>6}  {'min':>6}  {'median':>6}  {'max':>6}")
    simulator.run(parallel_time)

    for row in estimates.rows:
        if row.parallel_time % 25 == 0:
            print(
                f"{row.parallel_time:>6}  {row.minimum:>6.1f}  "
                f"{row.median:>6.1f}  {row.maximum:>6.1f}"
            )

    ticks_per_agent = Counter(event.agent_id for event in ticks.events)
    tick_counts = Counter(ticks_per_agent.values())
    print()
    print(f"Total clock ticks (resets): {len(ticks.events)}")
    print("Ticks per agent (count -> number of agents):", dict(sorted(tick_counts.items())))
    print()
    final = estimates.rows[-1]
    print(
        f"Final estimate band: [{final.minimum:.1f}, {final.maximum:.1f}] "
        f"for log2(n) = {math.log2(n):.2f}"
    )


if __name__ == "__main__":
    main()
