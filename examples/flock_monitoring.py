#!/usr/bin/env python3
"""Flock monitoring under a poaching adversary (the paper's motivating story).

Angluin et al. motivate population protocols with a flock of birds carrying
temperature sensors; the paper adds the twist that the flock size changes —
birds join, and "throughout hunting season there is a looming threat that a
poaching adversary selectively targets certain types of birds".

This example simulates exactly that scenario with the dynamic size counting
protocol on the batched engine:

* the flock starts with 20 000 birds,
* at parallel time 400 a migration doubles the flock to 40 000,
* at parallel time 1200 poachers decimate it to 800 birds,

and shows how every bird's estimate of log2(flock size) tracks the changes.

Run it with::

    python examples/flock_monitoring.py
"""

from __future__ import annotations

import math

from repro.core import VectorizedDynamicCounting
from repro.engine import BatchedSimulator


def print_row(snapshot, true_size: int) -> None:
    print(
        f"{snapshot.parallel_time:>6}  {snapshot.population_size:>8}  "
        f"{math.log2(true_size):>8.2f}  {snapshot.minimum:>6.1f}  "
        f"{snapshot.median:>6.1f}  {snapshot.maximum:>6.1f}"
    )


def main() -> None:
    initial_flock = 20_000
    migration = (400, 40_000)   # at t=400 the flock doubles
    poaching = (1_200, 800)     # at t=1200 only 800 birds survive
    horizon = 2_600

    protocol = VectorizedDynamicCounting()
    simulator = BatchedSimulator(
        protocol,
        initial_flock,
        seed=7,
        resize_schedule=[migration, poaching],
    )

    print("Flock monitoring with dynamic size counting")
    print(f"{'time':>6}  {'birds':>8}  {'log2(n)':>8}  {'min':>6}  {'median':>6}  {'max':>6}")

    result = simulator.run(horizon, snapshot_every=1)
    for snapshot in result.snapshots:
        if snapshot.parallel_time % 100 == 0:
            print_row(snapshot, snapshot.population_size)

    final = result.snapshots[-1]
    print()
    print(
        f"After the poaching event the flock has {final.population_size} birds "
        f"(log2 = {math.log2(final.population_size):.2f}); the estimates settled at "
        f"median {final.median:.1f}."
    )
    print(
        "Note the delay of roughly two clock rounds before the drop becomes "
        "visible: the trailing estimate (lastMax) keeps the old value for one "
        "round by design."
    )


if __name__ == "__main__":
    main()
