#!/usr/bin/env python3
"""Huge populations on the counts engine: n = 10^7 agents in seconds.

The per-agent engines store one row per agent, so their per-step cost is
O(n).  The counts engine stores the population as a count vector over the
occupied protocol states — a few hundred to ~3000 states for dynamic size
counting regardless of n — and advances a whole parallel-time step with a
handful of (multivariate-)hypergeometric and multinomial draws.  Per-step
cost is O(|Q|^2), independent of the population size, which is what makes
n = 10^7 (and beyond: the samplers fall back to conditional binomials past
numpy's 10^9 limit) affordable on a laptop.

This example

1. simulates the paper's dynamic size counting protocol (Algorithm 2) with
   ten million agents on the counts engine,
2. prints the min/median/max estimate band as it converges to
   log2(n * k) = log2(10^7 * 16) ~ 27.25,
3. then lets an adversary delete 99% of the population mid-run and shows
   the estimate re-converging to the new size, and
4. reports wall-clock time and the occupied-state count, the quantity the
   engine's cost actually scales with.

Run it with::

    python examples/huge_population.py
"""

from __future__ import annotations

import math
import time

from repro.core import DynamicSizeCounting
from repro.engine import make_engine

N = 10_000_000
DROP_TO = 100_000
DROP_AT = 60
#: Re-convergence after a size drop takes ~2 reset generations: stale
#: maxima age out only when both the current and the remembered maximum
#: have been replaced, and each reset generation lasts tau1 * max ~ 170
#: parallel time units refreshed along the way — roughly 10^3 units total
#: (the same timescale Fig. 4 shows for its decimation).
HORIZON = 1500
REPORT_EVERY = 100


def main() -> None:
    protocol = DynamicSizeCounting()
    engine = make_engine(
        "counts",
        protocol,
        N,
        seed=2024,
        resize_schedule=[(DROP_AT, DROP_TO)],
    )

    print(f"Simulating n = {N:,} agents on the counts engine ...")
    print(f"(true log2 n = {math.log2(N):.2f}; the estimate includes a +log2(k) offset)")
    print(f"(at t = {DROP_AT} the adversary deletes 99% of the population)")
    print()
    print(f"{'time':>6}  {'size':>12}  {'min':>7}  {'median':>7}  {'max':>7}  {'states':>7}")

    start = time.perf_counter()

    def report(eng, snapshot):
        if snapshot.parallel_time % REPORT_EVERY and snapshot.parallel_time != DROP_AT:
            return
        print(
            f"{snapshot.parallel_time:>6}  {snapshot.population_size:>12,}  "
            f"{snapshot.minimum:>7.2f}  {snapshot.median:>7.2f}  "
            f"{snapshot.maximum:>7.2f}  {eng.state.num_states:>7}"
        )

    engine.add_snapshot_hook(report)
    result = engine.run(HORIZON)
    elapsed = time.perf_counter() - start

    print()
    print(f"Simulated {result.interactions:,} interactions in {elapsed:.1f} s")
    print(
        f"({elapsed / HORIZON * 1e3:.1f} ms per parallel step; "
        f"peak occupied states: {result.metadata['peak_states']})"
    )
    final = result.snapshots[-1]
    print(
        f"Final estimate band at n = {final.population_size:,}: "
        f"[{final.minimum:.2f}, {final.maximum:.2f}] "
        f"(target ~ {math.log2(DROP_TO * 16):.2f})"
    )


if __name__ == "__main__":
    main()
