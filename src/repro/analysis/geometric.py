"""Closed-form facts about maxima of geometric random variables.

The correctness of the whole protocol rests on Lemma 4.1: the maximum of
``k * n`` i.i.d. Geom(1/2) random variables lies in
``[0.5 log n, 2 (k + 1) log n]`` with probability ``1 - O(n^-k)``.  This
module provides the exact distribution of such maxima, the paper's bounds,
and helpers used by the property-based tests and the theory benchmarks.

All logarithms are base 2 (the paper writes ``log`` for ``log_2`` — its
geometric variables have parameter 1/2, so the natural scale is bits).
"""

from __future__ import annotations

import math

__all__ = [
    "geometric_pmf",
    "geometric_cdf",
    "max_grv_cdf",
    "max_grv_expectation",
    "lemma_4_1_bounds",
    "lemma_4_1_failure_probability",
    "probability_max_in_bounds",
]


def geometric_pmf(value: int, p: float = 0.5) -> float:
    """P[X = value] for X ~ Geom(p) supported on {1, 2, ...}."""
    if value < 1:
        return 0.0
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must lie in (0, 1], got {p}")
    return (1.0 - p) ** (value - 1) * p


def geometric_cdf(value: int, p: float = 0.5) -> float:
    """P[X <= value] for X ~ Geom(p) supported on {1, 2, ...}."""
    if value < 1:
        return 0.0
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must lie in (0, 1], got {p}")
    return 1.0 - (1.0 - p) ** value


def max_grv_cdf(value: int, count: int, p: float = 0.5) -> float:
    """P[max of ``count`` i.i.d. Geom(p) samples <= value]."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    return geometric_cdf(value, p) ** count


def max_grv_expectation(count: int, p: float = 0.5, *, tolerance: float = 1e-12) -> float:
    """Expected maximum of ``count`` i.i.d. Geom(p) samples.

    Computed from ``E[M] = sum_{v >= 0} P[M > v]``; the series is truncated
    once the tail probability drops below ``tolerance``.  For p = 1/2 the
    expectation is approximately ``log2(count) + 0.33`` for large counts.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    expectation = 0.0
    value = 0
    while True:
        tail = 1.0 - max_grv_cdf(value, count, p) if value >= 1 else 1.0
        expectation += tail
        if tail < tolerance:
            break
        value += 1
        if value > 10_000:  # pragma: no cover - defensive guard
            break
    return expectation


def lemma_4_1_bounds(n: int, k: int) -> tuple[float, float]:
    """The interval ``[0.5 log n, 2 (k + 1) log n]`` from Lemma 4.1."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    log_n = math.log2(n)
    return 0.5 * log_n, 2.0 * (k + 1) * log_n


def lemma_4_1_failure_probability(n: int, k: int) -> float:
    """Upper bound ``2 n^-k`` on the failure probability of Lemma 4.1."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return min(1.0, 2.0 * n ** (-k))


def probability_max_in_bounds(n: int, k: int) -> float:
    """Exact P[0.5 log n <= max of k*n GRVs <= 2(k+1) log n].

    Used by the tests to confirm that the exact probability indeed dominates
    the ``1 - O(n^-k)`` bound claimed by Lemma 4.1 (for the n, k ranges we
    can evaluate exactly).
    """
    lower, upper = lemma_4_1_bounds(n, k)
    count = k * n
    lower_int = math.ceil(lower) - 1  # P[M >= lower]  = 1 - P[M <= ceil(lower)-1]
    upper_int = math.floor(upper)
    p_below_lower = max_grv_cdf(max(lower_int, 0), count) if lower_int >= 1 else 0.0
    p_at_most_upper = max_grv_cdf(upper_int, count)
    return max(0.0, p_at_most_upper - p_below_lower)
