"""Phase-clock synchrony analysis: bursts, overlaps, and Theorem 2.2 checks.

Theorem 2.2 describes the tick structure of the uniform phase clock: there
is a sequence of times ``t_i`` such that every agent ticks exactly once in
the *burst* interval around ``t_i``, consecutive bursts are separated by
tick-free *overlap* intervals, and both have length ``Theta(n log n)``
interactions (``Theta(log n)`` parallel time).

This module reconstructs that structure from recorded tick events
(``ProtocolEvent`` objects of kind ``"tick"`` or ``"reset"``):

* ticks are grouped into bursts by splitting at gaps longer than a
  configurable fraction of the typical round length;
* each burst is checked for the "every agent ticks exactly once" property;
* overlap lengths are the gaps between consecutive bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.protocol import ProtocolEvent

__all__ = ["Burst", "SynchronyReport", "extract_bursts", "analyze_synchrony"]


@dataclass
class Burst:
    """One burst of clock ticks.

    Attributes
    ----------
    start / end:
        Interaction indices of the first and last tick in the burst.
    ticks_per_agent:
        Mapping from agent id to the number of ticks it contributed.
    """

    start: int
    end: int
    ticks_per_agent: dict[int, int] = field(default_factory=dict)

    @property
    def tick_count(self) -> int:
        return sum(self.ticks_per_agent.values())

    @property
    def agent_count(self) -> int:
        return len(self.ticks_per_agent)

    @property
    def length(self) -> int:
        return self.end - self.start

    def is_exact(self, population: Iterable[int] | int) -> bool:
        """Every agent in ``population`` ticked exactly once in this burst.

        ``population`` is either the set of agent ids alive during the burst
        or simply the population size (in which case only the counts are
        checked, which is what the dynamic experiments use since stable ids
        change as agents are removed).
        """
        if isinstance(population, int):
            return (
                self.agent_count == population
                and all(count == 1 for count in self.ticks_per_agent.values())
            )
        expected = set(population)
        return (
            set(self.ticks_per_agent) == expected
            and all(count == 1 for count in self.ticks_per_agent.values())
        )


@dataclass(frozen=True)
class SynchronyReport:
    """Summary of the burst/overlap structure of one run."""

    bursts: tuple[Burst, ...]
    overlap_lengths: tuple[int, ...]
    exact_bursts: int
    total_bursts: int

    @property
    def exact_fraction(self) -> float:
        """Fraction of bursts in which every agent ticked exactly once."""
        if self.total_bursts == 0:
            return 0.0
        return self.exact_bursts / self.total_bursts

    def mean_burst_length(self) -> float:
        if not self.bursts:
            return 0.0
        return sum(b.length for b in self.bursts) / len(self.bursts)

    def mean_overlap_length(self) -> float:
        if not self.overlap_lengths:
            return 0.0
        return sum(self.overlap_lengths) / len(self.overlap_lengths)

    def mean_period(self) -> float:
        """Mean distance between consecutive burst midpoints (the clock period)."""
        if len(self.bursts) < 2:
            return 0.0
        midpoints = [(b.start + b.end) / 2.0 for b in self.bursts]
        gaps = [b - a for a, b in zip(midpoints, midpoints[1:])]
        return sum(gaps) / len(gaps)


def extract_bursts(
    events: Sequence[ProtocolEvent],
    *,
    gap_threshold: int,
    kinds: tuple[str, ...] = ("tick", "reset"),
) -> list[Burst]:
    """Group tick events into bursts by splitting at large gaps.

    Parameters
    ----------
    events:
        Recorded protocol events, in interaction order.
    gap_threshold:
        Two consecutive ticks separated by more than this many interactions
        belong to different bursts.  A good choice is a small multiple of
        ``n`` (i.e. a few parallel time units): within a burst the
        reset->exchange epidemic produces a tick every few interactions,
        while overlaps are ``Theta(n log n)`` interactions long.
    """
    if gap_threshold < 1:
        raise ValueError(f"gap_threshold must be positive, got {gap_threshold}")
    ticks = [e for e in events if e.kind in kinds]
    ticks.sort(key=lambda e: e.interaction)
    bursts: list[Burst] = []
    current: Burst | None = None
    for event in ticks:
        if current is None or event.interaction - current.end > gap_threshold:
            current = Burst(start=event.interaction, end=event.interaction)
            bursts.append(current)
        current.end = event.interaction
        current.ticks_per_agent[event.agent_id] = (
            current.ticks_per_agent.get(event.agent_id, 0) + 1
        )
    return bursts


def analyze_synchrony(
    events: Sequence[ProtocolEvent],
    population_size: int,
    *,
    gap_threshold: int | None = None,
    drop_partial_edges: bool = True,
) -> SynchronyReport:
    """Full Theorem 2.2 style analysis of a recorded tick trace.

    ``gap_threshold`` defaults to ``3 * population_size`` interactions
    (three parallel time units).  When ``drop_partial_edges`` is set the
    first and last burst are excluded from the exactness statistics, since
    the recording window usually cuts them off.
    """
    if population_size < 2:
        raise ValueError(f"population_size must be at least 2, got {population_size}")
    threshold = gap_threshold if gap_threshold is not None else 3 * population_size
    bursts = extract_bursts(events, gap_threshold=threshold)
    overlaps = tuple(
        later.start - earlier.end for earlier, later in zip(bursts, bursts[1:])
    )
    interior = bursts[1:-1] if drop_partial_edges and len(bursts) > 2 else bursts
    exact = sum(1 for burst in interior if burst.is_exact(population_size))
    return SynchronyReport(
        bursts=tuple(bursts),
        overlap_lengths=overlaps,
        exact_bursts=exact,
        total_bursts=len(interior),
    )
