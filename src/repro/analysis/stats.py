"""Plain-NumPy two-sample statistics (no SciPy dependency).

The cross-engine conformance machinery — two-sample Kolmogorov-Smirnov with
the asymptotic critical value ``c(alpha) * sqrt((n+m)/(n*m))`` and a
chi-square homogeneity test on pooled-quantile bins with the Wilson-Hilferty
critical-value approximation — originally lived inside
``tests/test_statistical_conformance.py``.  The scenario fuzzer
(:mod:`repro.scenarios.fuzz`) asserts the same property at runtime for
generated workloads, so the helpers live here and the test module imports
them back.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "ks_statistic",
    "ks_critical",
    "chi_square_critical",
    "chi_square_homogeneity",
]


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF distance)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_critical(n: int, m: int, alpha: float) -> float:
    """Asymptotic two-sample KS critical value at significance ``alpha``."""
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c * math.sqrt((n + m) / (n * m))


#: Upper-tail standard normal quantiles used by the chi-square critical
#: value approximation, keyed by significance level.
_Z_UPPER = {0.05: 1.6449, 0.01: 2.3263, 0.001: 3.0902}


def chi_square_critical(df: int, alpha: float) -> float:
    """Wilson-Hilferty approximation of the chi-square upper quantile."""
    z = _Z_UPPER[alpha]
    return df * (1.0 - 2.0 / (9.0 * df) + z * math.sqrt(2.0 / (9.0 * df))) ** 3


def chi_square_homogeneity(
    a: np.ndarray, b: np.ndarray, bins: int = 3
) -> tuple[float, int]:
    """Chi-square homogeneity statistic of two samples on pooled bins.

    Bin edges are pooled quantiles, so expected counts stay comfortably
    above the classic >= 5 rule for the sample sizes used here.  Returns
    ``(statistic, degrees_of_freedom)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    pooled = np.concatenate([a, b])
    edges = np.quantile(pooled, np.linspace(0.0, 1.0, bins + 1))
    edges[0], edges[-1] = -np.inf, np.inf
    # Collapse duplicate edges (heavily tied samples) to keep bins valid.
    edges = np.unique(edges)
    observed = np.array(
        [np.histogram(sample, bins=edges)[0] for sample in (a, b)], dtype=float
    )
    row = observed.sum(axis=1, keepdims=True)
    col = observed.sum(axis=0, keepdims=True)
    expected = row * col / pooled.size
    mask = expected > 0
    statistic = float(((observed - expected)[mask] ** 2 / expected[mask]).sum())
    df = (observed.shape[0] - 1) * (mask.any(axis=0).sum() - 1)
    return statistic, max(int(df), 1)
