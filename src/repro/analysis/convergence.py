"""Convergence-time and holding-time measurement.

Theorem 2.1 states that the protocol is ``(O(log n-hat + log n),
Theta(n^{k-1} log n))``-loosely-stabilizing: from any configuration it
*converges* to a valid configuration quickly and then *holds* a valid
configuration for a long time.  This module turns recorded estimate traces
into measured convergence and holding times so the experiments can put
numbers next to the theorem.

A configuration is *valid* when every agent's reported estimate lies within
``[lower_factor * log2 n, upper_factor * log2 n]`` (see
:func:`repro.analysis.estimates.estimates_valid`).  Because single-snapshot
validity can flicker at phase boundaries, convergence requires validity to
persist for a configurable number of consecutive snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.estimates import estimates_valid
from repro.engine.recorder import SnapshotStats

__all__ = ["ConvergenceReport", "measure_convergence", "measure_holding", "loose_stabilization_report"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Result of analysing one trace for loose stabilization.

    Attributes
    ----------
    convergence_time:
        First parallel time at which the trace enters a stretch of
        ``persistence`` consecutive valid snapshots, or ``None`` if it never
        converged within the trace.
    holding_time:
        Length (in parallel time) of the valid stretch starting at
        ``convergence_time`` — i.e. how long validity held before the first
        invalid snapshot (or the end of the trace).  ``None`` when the trace
        never converged.
    held_until_end:
        Whether validity still held at the end of the recorded trace (in
        which case ``holding_time`` is only a lower bound, exactly like the
        paper can only certify a polynomial lower bound within a finite
        simulation).
    """

    convergence_time: int | None
    holding_time: int | None
    held_until_end: bool


def measure_convergence(
    rows: Sequence[SnapshotStats],
    *,
    lower_factor: float = 0.5,
    upper_factor: float = 8.0,
    persistence: int = 5,
) -> int | None:
    """First parallel time from which ``persistence`` consecutive snapshots are valid."""
    if persistence < 1:
        raise ValueError(f"persistence must be positive, got {persistence}")
    run = 0
    for index, row in enumerate(rows):
        if estimates_valid(row, lower_factor=lower_factor, upper_factor=upper_factor):
            run += 1
            if run >= persistence:
                return rows[index - persistence + 1].parallel_time
        else:
            run = 0
    return None


def measure_holding(
    rows: Sequence[SnapshotStats],
    start_time: int,
    *,
    lower_factor: float = 0.5,
    upper_factor: float = 8.0,
    grace: int = 0,
) -> tuple[int, bool]:
    """Length of the valid stretch starting at ``start_time``.

    ``grace`` allows that many consecutive invalid snapshots before the
    stretch is considered broken (useful when the phase clock's reset burst
    briefly pulls a single agent's estimate below the threshold).

    Returns ``(holding_time, held_until_end)``.
    """
    if grace < 0:
        raise ValueError(f"grace must be non-negative, got {grace}")
    started = False
    last_valid_time = start_time
    invalid_run = 0
    for row in rows:
        if row.parallel_time < start_time:
            continue
        started = True
        if estimates_valid(row, lower_factor=lower_factor, upper_factor=upper_factor):
            last_valid_time = row.parallel_time
            invalid_run = 0
        else:
            invalid_run += 1
            if invalid_run > grace:
                return max(0, last_valid_time - start_time), False
    if not started:
        return 0, False
    return max(0, last_valid_time - start_time), True


def loose_stabilization_report(
    rows: Sequence[SnapshotStats],
    *,
    lower_factor: float = 0.5,
    upper_factor: float = 8.0,
    persistence: int = 5,
    grace: int = 0,
) -> ConvergenceReport:
    """Combined convergence + holding analysis of one recorded trace."""
    convergence = measure_convergence(
        rows,
        lower_factor=lower_factor,
        upper_factor=upper_factor,
        persistence=persistence,
    )
    if convergence is None:
        return ConvergenceReport(convergence_time=None, holding_time=None, held_until_end=False)
    holding, until_end = measure_holding(
        rows,
        convergence,
        lower_factor=lower_factor,
        upper_factor=upper_factor,
        grace=grace,
    )
    return ConvergenceReport(
        convergence_time=convergence,
        holding_time=holding,
        held_until_end=until_end,
    )
