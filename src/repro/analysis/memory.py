"""Space-complexity accounting.

Lemma 4.13 / Theorem 2.1 claim that each agent of the paper's protocol needs
``O(log s + log log n)`` bits, where ``s`` is the largest value initially
stored by any agent — an exponential improvement over the
``Omega((log log n)^2)`` bits of the Doty–Eftekhari baseline.  This module
post-processes recorded :class:`repro.engine.recorder.MemoryRecorder` traces
into the per-``n`` summary rows of the memory experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["MemorySummary", "summarize_memory", "memory_reference_bits"]


@dataclass(frozen=True)
class MemorySummary:
    """Peak and steady-state memory usage of one run."""

    population_size: int
    peak_bits: float
    steady_state_bits: float
    reference_bits: float

    @property
    def peak_over_reference(self) -> float:
        """Measured peak divided by the ``log s + log log n`` reference."""
        if self.reference_bits <= 0:
            return float("inf")
        return self.peak_bits / self.reference_bits


def memory_reference_bits(n: int, largest_initial_value: float = 0.0) -> float:
    """The ``log2 s + log2 log2 n`` reference of Theorem 2.1 (per variable)."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    log_log_n = math.log2(max(2.0, math.log2(n)))
    log_s = math.log2(max(2.0, largest_initial_value)) if largest_initial_value > 0 else 0.0
    return log_s + log_log_n


def summarize_memory(
    rows: Sequence[dict[str, float]],
    population_size: int,
    *,
    largest_initial_value: float = 0.0,
    steady_state_fraction: float = 0.5,
) -> MemorySummary:
    """Summarise a :class:`MemoryRecorder` trace.

    ``rows`` are the recorder's dictionaries (``parallel_time``,
    ``max_bits``, ``mean_bits``).  The steady-state figure is the maximum
    per-agent footprint over the last ``1 - steady_state_fraction`` of the
    trace, i.e. after the start-up transient has passed.
    """
    if not rows:
        raise ValueError("cannot summarise an empty memory trace")
    if not 0.0 <= steady_state_fraction < 1.0:
        raise ValueError(
            f"steady_state_fraction must lie in [0, 1), got {steady_state_fraction}"
        )
    peak = max(row["max_bits"] for row in rows)
    tail_start = int(len(rows) * steady_state_fraction)
    tail = rows[tail_start:] or rows
    steady = max(row["max_bits"] for row in tail)
    return MemorySummary(
        population_size=population_size,
        peak_bits=peak,
        steady_state_bits=steady,
        reference_bits=memory_reference_bits(population_size, largest_initial_value),
    )
