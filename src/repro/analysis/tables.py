"""Result formatting: ASCII tables, CSV files and JSON dumps.

The experiment harness prints the same rows/series the paper plots and also
persists them so that EXPERIMENTS.md can reference concrete numbers.  No
plotting library is required (the execution environment is offline); the
CSV output can be plotted with any external tool.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "format_table",
    "csv_text",
    "write_csv",
    "read_csv",
    "write_json",
    "read_json",
    "series_to_rows",
    "rows_to_series",
]


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    float_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render rows of dictionaries as a fixed-width ASCII table.

    ``columns`` fixes the column order; by default the keys of the first row
    are used.  Floats are formatted with ``float_format``; other values via
    ``str``.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    keys = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(key, "")) for key in keys] for row in rows]
    widths = [
        max(len(keys[i]), max(len(line[i]) for line in rendered)) for i in range(len(keys))
    ]
    header = "  ".join(key.ljust(widths[i]) for i, key in enumerate(keys))
    divider = "  ".join("-" * widths[i] for i in range(len(keys)))
    body = "\n".join(
        "  ".join(line[i].rjust(widths[i]) for i in range(len(keys))) for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, divider, body])
    return "\n".join(parts)


def series_to_rows(series: Mapping[str, Sequence[Any]]) -> list[dict[str, Any]]:
    """Transpose a column-oriented series into row dictionaries."""
    if not series:
        return []
    lengths = {key: len(values) for key, values in series.items()}
    count = min(lengths.values())
    return [{key: series[key][index] for key in series} for index in range(count)]


def csv_text(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Rows of dictionaries rendered as one CSV document (in memory).

    This is the single CSV encoder: :func:`write_csv` persists exactly this
    text, and the serving layer streams it over HTTP, so an artifact fetched
    from the result API is byte-identical to the file on disk.
    """
    if not rows:
        return ""
    keys = list(columns) if columns is not None else _key_union(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=keys, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> Path:
    """Write rows of dictionaries to ``path`` as CSV; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        handle.write(csv_text(rows, columns))
    return target


def _key_union(rows: Sequence[Mapping[str, Any]]) -> list[str]:
    """Keys appearing in any row, in first-seen order.

    Recorder rows can be ragged — :class:`repro.engine.recorder.
    PhaseOccupancyRecorder` only adds a phase column once that phase is
    occupied — so keying on ``rows[0]`` alone drops late columns.
    """
    keys: dict[str, None] = {}
    for row in rows:
        for key in row:
            keys.setdefault(key, None)
    return list(keys)


def rows_to_series(
    rows: Sequence[Mapping[str, Any]], *, fill: Any = float("nan")
) -> dict[str, list[Any]]:
    """Transpose row dictionaries back into a column-oriented series.

    Takes the union of keys across all rows (first-seen order); cells a row
    does not carry are filled with ``fill`` so every column has one entry
    per row even when the rows are ragged.
    """
    if not rows:
        return {}
    return {key: [row.get(key, fill) for row in rows] for key in _key_union(rows)}


def _parse_cell(text: str) -> Any:
    """Invert the stringification of :func:`write_csv` for one cell.

    Booleans, integers and floats (including ``nan``/``inf``) round-trip;
    everything else stays a string.  Only canonical numeric spellings are
    coerced — strings Python would *accept* but not *produce* (underscored
    literals like ``"1_000"``, padded ``" 42"``) stay strings, so loading
    does not change the type of string-valued cells that merely look
    numeric.  CSV carries no schema, so string cells spelled exactly like a
    Python literal (``"True"``, ``"nan"``) are inherently ambiguous and
    load as the typed value.
    """
    if text == "True":
        return True
    if text == "False":
        return False
    if text != text.strip() or "_" in text:
        return text
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(path: str | Path) -> list[dict[str, Any]]:
    """Read a CSV written by :func:`write_csv` back into typed row dicts."""
    with Path(path).open(newline="") as handle:
        return [
            {key: _parse_cell(value) for key, value in row.items()}
            for row in csv.DictReader(handle)
        ]


def write_json(path: str | Path, payload: Any) -> Path:
    """Write ``payload`` to ``path`` as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return target


def read_json(path: str | Path) -> Any:
    """Read a JSON document written by :func:`write_json`."""
    return json.loads(Path(path).read_text())
