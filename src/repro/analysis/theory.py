"""Theoretical bound calculators for the paper's lemmas and theorems.

These functions compute the *analytical* quantities the paper proves, so
that experiments and tests can place measured values next to the bounds:

* Lemma 4.2 — epidemic completion time,
* Lemma 4.3 / 4.4 — CHVP upper and lower bounds,
* Lemma 4.5 — the phase-traversal schedule with the theory constants,
* Lemma A.1 — concentration of per-agent initiation counts,
* Theorem 2.1 — convergence / holding / space bounds,
* Theorem 2.2 — burst and overlap interval structure.

All bounds are stated in the same units as the paper (interactions or
parallel time, as documented per function); logarithms are base 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import ProtocolParameters

__all__ = [
    "epidemic_interaction_bound",
    "chvp_upper_bound_time",
    "chvp_lower_bound_value",
    "initiation_bounds",
    "lemma_4_5_schedule",
    "TheoremBounds",
    "theorem_2_1_bounds",
    "phase_clock_period_interactions",
]


def epidemic_interaction_bound(n: int, k: float = 1.0) -> float:
    """Lemma 4.2: interactions for an epidemic to finish w.h.p., ``4(k+1) n log n``."""
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    return 4.0 * (k + 1.0) * n * math.log2(n)


def chvp_upper_bound_time(n: int, delta: float, k: float = 1.0) -> float:
    """Lemma 4.3: interactions within which the CHVP maximum drops by ``delta``.

    ``7 n (delta + k log n)`` — after this many interactions the maximum is
    at most ``m - delta`` w.h.p.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return 7.0 * n * (delta + k * math.log2(n))


def chvp_lower_bound_value(m: float, n: int, delta: float, k: float = 2.0) -> float:
    """Lemma 4.4: lower bound on the CHVP minimum after ``7 n (delta + k log n)`` interactions.

    The minimum is at least ``m - 12 (delta + k log n)`` w.h.p.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return m - 12.0 * (delta + k * math.log2(n))


def initiation_bounds(c: float, k: float, n: int) -> tuple[float, float]:
    """Lemma A.1: range of per-agent initiations within ``c log n`` parallel time.

    Each agent initiates between ``c (1 - sqrt(k/c)) log n`` and
    ``c (1 + sqrt(k/c)) log n`` interactions w.h.p. (requires ``k < c``).
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if not 0 < k < c:
        raise ValueError(f"need 0 < k < c, got k={k}, c={c}")
    log_n = math.log2(n)
    spread = math.sqrt(k / c)
    return c * (1.0 - spread) * log_n, c * (1.0 + spread) * log_n


def lemma_4_5_schedule(n: int, m: float, k: int = 2) -> dict[str, float]:
    """Lemma 4.5: the interaction counts ``i_1 < i_2 < i_3`` of the phase traversal.

    For ``M = m * log n`` and the theory constants, returns the interaction
    indices by which the population has entered the exchange, hold and reset
    intervals, plus the bound ``tau' * M`` on initiated interactions.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if k < 2:
        raise ValueError(f"the lemma requires k >= 2, got {k}")
    log_n = math.log2(n)
    return {
        "i1": 8.0 * n * (k + 1) * m * log_n,
        "i2": 400.0 * n * k * m * log_n,
        "i3": 1065.0 * n * k * m * log_n,
        "max_initiations": 4350.0 * k * m * log_n,
    }


@dataclass(frozen=True)
class TheoremBounds:
    """Asymptotic quantities of Theorem 2.1 instantiated for concrete ``n``.

    These are *shape* references (the Theta/O constants are not specified by
    the paper), so the experiments report measured-over-reference ratios and
    check that the ratios stay bounded across ``n``, which is the meaningful
    empirical content of an asymptotic claim.
    """

    n: int
    k: int
    initial_estimate: float
    convergence_reference: float
    holding_reference: float
    memory_reference_bits: float


def theorem_2_1_bounds(
    n: int, *, k: int = 2, initial_estimate: float | None = None, largest_value: float | None = None
) -> TheoremBounds:
    """Instantiate Theorem 2.1's reference quantities for population size ``n``.

    * convergence reference: ``log n-hat + log n`` parallel time,
    * holding reference: ``n^{k-1} log n`` parallel time,
    * memory reference: ``log s + log log n`` bits.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    if k < 2:
        raise ValueError(f"the theorem requires k >= 2, got {k}")
    log_n = math.log2(n)
    estimate = initial_estimate if initial_estimate is not None else log_n
    s = largest_value if largest_value is not None else max(2.0, estimate)
    return TheoremBounds(
        n=n,
        k=k,
        initial_estimate=estimate,
        convergence_reference=estimate + log_n,
        holding_reference=float(n ** (k - 1)) * log_n,
        memory_reference_bits=math.log2(max(2.0, s)) + math.log2(max(2.0, log_n)),
    )


def phase_clock_period_interactions(n: int, params: ProtocolParameters, log_n: float | None = None) -> float:
    """Theorem 2.2 shape reference: one clock round is ``Theta(n log n)`` interactions.

    The reference used is ``tau_1 * overestimation * n * log2 n`` — the
    countdown length times the population size — which is the natural
    constant-free stand-in for the Theta bound when comparing periods across
    population sizes.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    log_value = log_n if log_n is not None else math.log2(n)
    return params.tau1 * params.overestimation * n * log_value
