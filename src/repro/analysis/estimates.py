"""Estimate-quality metrics.

Post-processing of recorded estimate series into the quantities the paper
plots:

* min / median / max of the per-agent estimates over time (Figs. 2, 4, 5),
* the *relative deviation* of those statistics from the true ``log2 n``
  (Fig. 3), and
* validity predicates ("every agent's estimate is within a constant factor
  of ``log n``") used by the convergence- and holding-time analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.engine.recorder import SnapshotStats

__all__ = [
    "RelativeDeviation",
    "relative_deviation",
    "deviation_series",
    "estimates_valid",
    "steady_state_window",
    "summarize_window",
]


@dataclass(frozen=True)
class RelativeDeviation:
    """Relative deviation of the estimate statistics from ``log2 n``.

    A value of 1.0 means the statistic equals ``log2 n`` exactly; 2.0 means
    it is twice as large.  This is the y-axis of Fig. 3.
    """

    parallel_time: int
    population_size: int
    minimum: float
    median: float
    maximum: float


def relative_deviation(stats: SnapshotStats) -> RelativeDeviation:
    """Relative deviation of one snapshot's min/median/max from ``log2 n``."""
    log_n = stats.true_log_n
    if not math.isfinite(log_n) or log_n <= 0:
        raise ValueError(
            f"population size {stats.population_size} has no meaningful log2"
        )
    return RelativeDeviation(
        parallel_time=stats.parallel_time,
        population_size=stats.population_size,
        minimum=stats.minimum / log_n,
        median=stats.median / log_n,
        maximum=stats.maximum / log_n,
    )


def deviation_series(rows: Sequence[SnapshotStats]) -> list[RelativeDeviation]:
    """Map :func:`relative_deviation` over a recorded series."""
    return [relative_deviation(row) for row in rows]


def estimates_valid(
    stats: SnapshotStats,
    *,
    lower_factor: float = 0.5,
    upper_factor: float = 8.0,
) -> bool:
    """Whether every agent's estimate is within constant factors of ``log2 n``.

    The paper's notion of a *valid configuration* is that every agent holds
    a constant-factor approximation of ``log n``; the empirical section uses
    the reported estimate ``max{max, lastMax}``.  The default factors are
    deliberately generous (the maximum of ``k n`` GRVs with ``k = 16``
    concentrates around ``log2 n + 4``) and match what Fig. 3 shows.
    """
    log_n = stats.true_log_n
    if not math.isfinite(log_n) or log_n <= 0:
        return False
    return stats.minimum >= lower_factor * log_n and stats.maximum <= upper_factor * log_n


def steady_state_window(
    rows: Sequence[SnapshotStats], *, skip_fraction: float = 0.5
) -> list[SnapshotStats]:
    """The tail of a series, after discarding the initial convergence phase.

    Fig. 3 reports the estimate quality of converged populations; this
    helper drops the first ``skip_fraction`` of the snapshots so that the
    summary is not polluted by the start-up transient.
    """
    if not 0.0 <= skip_fraction < 1.0:
        raise ValueError(f"skip_fraction must lie in [0, 1), got {skip_fraction}")
    start = int(len(rows) * skip_fraction)
    return list(rows[start:])


def summarize_window(rows: Sequence[SnapshotStats]) -> dict[str, float]:
    """Aggregate a window of snapshots into overall min/median/max statistics.

    Returns the extreme minimum, the median of the per-snapshot medians and
    the extreme maximum over the window — the three numbers one data point
    of Fig. 3 consists of (before dividing by ``log2 n``).
    """
    if not rows:
        raise ValueError("cannot summarise an empty window")
    minima = [row.minimum for row in rows]
    medians = sorted(row.median for row in rows)
    maxima = [row.maximum for row in rows]
    mid = len(medians) // 2
    if len(medians) % 2 == 1:
        median_of_medians = medians[mid]
    else:
        median_of_medians = (medians[mid - 1] + medians[mid]) / 2.0
    return {
        "minimum": min(minima),
        "median": median_of_medians,
        "maximum": max(maxima),
    }
