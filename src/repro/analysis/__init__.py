"""Metrics, theoretical bounds and result post-processing."""

from repro.analysis.convergence import (
    ConvergenceReport,
    loose_stabilization_report,
    measure_convergence,
    measure_holding,
)
from repro.analysis.estimates import (
    RelativeDeviation,
    deviation_series,
    estimates_valid,
    relative_deviation,
    steady_state_window,
    summarize_window,
)
from repro.analysis.geometric import (
    geometric_cdf,
    geometric_pmf,
    lemma_4_1_bounds,
    lemma_4_1_failure_probability,
    max_grv_cdf,
    max_grv_expectation,
    probability_max_in_bounds,
)
from repro.analysis.memory import MemorySummary, memory_reference_bits, summarize_memory
from repro.analysis.stats import (
    chi_square_critical,
    chi_square_homogeneity,
    ks_critical,
    ks_statistic,
)
from repro.analysis.synchronization import (
    Burst,
    SynchronyReport,
    analyze_synchrony,
    extract_bursts,
)
from repro.analysis.tables import format_table, series_to_rows, write_csv, write_json
from repro.analysis.theory import (
    TheoremBounds,
    chvp_lower_bound_value,
    chvp_upper_bound_time,
    epidemic_interaction_bound,
    initiation_bounds,
    lemma_4_5_schedule,
    phase_clock_period_interactions,
    theorem_2_1_bounds,
)

__all__ = [
    "Burst",
    "ConvergenceReport",
    "MemorySummary",
    "RelativeDeviation",
    "SynchronyReport",
    "TheoremBounds",
    "analyze_synchrony",
    "chi_square_critical",
    "chi_square_homogeneity",
    "chvp_lower_bound_value",
    "chvp_upper_bound_time",
    "deviation_series",
    "epidemic_interaction_bound",
    "estimates_valid",
    "extract_bursts",
    "format_table",
    "geometric_cdf",
    "geometric_pmf",
    "initiation_bounds",
    "ks_critical",
    "ks_statistic",
    "lemma_4_1_bounds",
    "lemma_4_1_failure_probability",
    "lemma_4_5_schedule",
    "loose_stabilization_report",
    "max_grv_cdf",
    "max_grv_expectation",
    "measure_convergence",
    "measure_holding",
    "memory_reference_bits",
    "phase_clock_period_interactions",
    "probability_max_in_bounds",
    "relative_deviation",
    "series_to_rows",
    "steady_state_window",
    "summarize_memory",
    "summarize_window",
    "theorem_2_1_bounds",
    "write_csv",
    "write_json",
]
