"""Figure 4 — adaptation after the adversary decimates the population.

The paper's Fig. 4 removes all but 500 agents at parallel time 1350 (for
initial sizes ``n = 10^3 ... 10^6``) and shows that the estimate drops to
the new ``log n`` within a couple of clock rounds.  The trailing estimate
(``lastMax``) delays the visible drop by exactly one round — a feature, not
a bug: it is what keeps the phase lengths long enough during normal
operation.

Declared as the registered scenario ``"fig4"``; the summary rows report the
estimate plateau before the drop, the plateau at the end of the run, and the
adaptation time (first snapshot after the drop at which the median estimate
is within the valid band of the *new* population size).
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.config import decimation_knobs
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec

__all__ = ["run_fig4", "adaptation_time", "FIG4"]


def adaptation_time(
    trace_times: list[float],
    trace_medians: list[float],
    drop_time: float,
    pre_drop_level: float,
    target_level: float,
) -> float | None:
    """First time after ``drop_time`` at which the median has crossed towards the new level.

    "Crossed" means the median estimate has moved below the midpoint between
    the pre-drop plateau and the post-drop target (``log2`` of the surviving
    population scaled by the GRV offset).  This is the visually obvious
    "the curve has dropped" moment of the paper's Fig. 4, made precise
    without having to pick absolute validity constants.
    """
    if pre_drop_level <= target_level:
        # The drop is too small to be observable (e.g. n close to keep).
        return drop_time
    midpoint = (pre_drop_level + target_level) / 2.0
    for time, median in zip(trace_times, trace_medians):
        if time <= drop_time:
            continue
        if median <= midpoint:
            return time
    return None


def _points(preset, params):
    drop_time, keep = decimation_knobs(preset)
    return tuple(
        ScenarioPoint(
            n=n,
            seed=preset.seed + n,
            parallel_time=preset.parallel_time,
            trials=preset.trials,
            resize_schedule=((drop_time, keep),),
        )
        for n in preset.population_sizes
    )


def _row(trace, point, preset, params):
    drop_time, keep = decimation_knobs(preset)
    log_n = math.log2(point.n)
    new_log_n = math.log2(keep)
    pre_drop = [m for t, m in zip(trace.parallel_time, trace.median) if t < drop_time]
    pre_level = pre_drop[-1] if pre_drop else float("nan")
    final_level = trace.median[-1] if trace.median else float("nan")
    # Target level after adaptation: the max of k * keep GRVs sits around
    # log2(keep) + log2(k).
    target_level = new_log_n + math.log2(max(1, params.grv_samples))
    adapt = adaptation_time(
        trace.parallel_time, trace.median, drop_time, pre_level, target_level
    )
    return {
        "n": point.n,
        "log2_n": log_n,
        "keep": keep,
        "log2_keep": new_log_n,
        "drop_time": drop_time,
        "median_before_drop": pre_level,
        "median_at_end": final_level,
        "adaptation_time": adapt if adapt is not None else float("nan"),
        "adapted": adapt is not None,
        "trials": preset.trials,
    }


def _describe(preset) -> str:
    drop_time, keep = decimation_knobs(preset)
    return f"Size estimate with decimation to {keep} agents at t={drop_time}"


FIG4 = register(
    ScenarioSpec(
        name="fig4",
        description="Size estimate with a decimation event (adversarial drop)",
        points=_points,
        metrics=(_row,),
        keep_series=True,
        engine="batched",
        describe=_describe,
        tags=("paper", "adversarial"),
        schedule_kind="decimation",
        knobs=("drop_time", "keep"),
    )
)


def run_fig4(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Regenerate Fig. 4: estimate over time with a decimation event."""
    return run_scenario(FIG4, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_fig4(effort="quick").table())
