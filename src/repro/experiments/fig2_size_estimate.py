"""Figure 2 — size estimate over time in a large, initially empty system.

The paper's Fig. 2 shows the minimum, median and maximum estimate of
``log n`` across 96 runs for a population of 10^6 agents simulated for 5000
parallel time steps, starting from the empty initial configuration (all
agents in the predefined initial state).  The estimates rise quickly from 1
to slightly above ``log2 n`` (the maximum of ``k * n`` GRVs with ``k = 16``
concentrates around ``log2 n + 4``) and then stay there — the protocol's
long holding time in action.

The workload is declared as a :class:`repro.scenarios.spec.ScenarioSpec`
(registered as ``"fig2"``); :func:`run_fig2` is a thin compatibility wrapper
over :func:`repro.scenarios.runner.run_scenario`.  The spec pins the
``batched`` engine so that default outputs stay bit-identical to the
published runs; pass ``engine="auto"`` (or another engine name) to override.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec

__all__ = ["run_fig2", "FIG2"]


def _points(preset, params):
    # One point per population size; all points share the preset's root seed
    # (the historical Fig. 2 behaviour).
    return tuple(
        ScenarioPoint(
            n=n,
            seed=preset.seed,
            parallel_time=preset.parallel_time,
            trials=preset.trials,
        )
        for n in preset.population_sizes
    )


def _row(trace, point, preset, params):
    # Summary row: plateau statistics over the second half of the run.
    half = len(trace.parallel_time) // 2
    tail_min = min(trace.minimum[half:]) if half < len(trace.minimum) else float("nan")
    tail_max = max(trace.maximum[half:]) if half < len(trace.maximum) else float("nan")
    tail_med = sorted(trace.median[half:])[len(trace.median[half:]) // 2]
    return {
        "n": point.n,
        "log2_n": math.log2(point.n),
        "steady_minimum": tail_min,
        "steady_median": tail_med,
        "steady_maximum": tail_max,
        "trials": preset.trials,
        "parallel_time": preset.parallel_time,
    }


FIG2 = register(
    ScenarioSpec(
        name="fig2",
        description="Size estimate over parallel time (initially empty system)",
        points=_points,
        metrics=(_row,),
        keep_series=True,
        engine="batched",
        tags=("paper",),
    )
)


def run_fig2(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Regenerate Fig. 2: estimate of ``log n`` over parallel time."""
    return run_scenario(FIG2, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    result = run_fig2(effort="quick")
    print(result.table())
