"""Figure 2 — size estimate over time in a large, initially empty system.

The paper's Fig. 2 shows the minimum, median and maximum estimate of
``log n`` across 96 runs for a population of 10^6 agents simulated for 5000
parallel time steps, starting from the empty initial configuration (all
agents in the predefined initial state).  The estimates rise quickly from 1
to slightly above ``log2 n`` (the maximum of ``k * n`` GRVs with ``k = 16``
concentrates around ``log2 n + 4``) and then stay there — the protocol's
long holding time in action.

This module regenerates that series.  The quick preset scales the population
down (the shape is identical, only the plateau level shifts with
``log2 n``); the ``paper`` preset reproduces the original scale.
"""

from __future__ import annotations

import math

from repro.core.params import empirical_parameters
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.config import get_preset
from repro.experiments.figures import run_estimate_trace

__all__ = ["run_fig2"]


def run_fig2(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Regenerate Fig. 2: estimate of ``log n`` over parallel time.

    ``engine`` selects the execution engine (``"sequential"`` / ``"array"``
    / ``"batched"`` / ``"ensemble"``); the approximate vectorised engines
    are the only ones practical at the figure's population scale, and
    ``"ensemble"`` additionally runs all trials in one stacked pass.
    """
    preset = preset or get_preset("fig2", effort)
    params = empirical_parameters()
    series: dict[str, dict[str, list[float]]] = {}
    rows: list[dict[str, float]] = []

    for n in preset.population_sizes:
        trace = run_estimate_trace(
            n,
            preset.parallel_time,
            trials=preset.trials,
            seed=preset.seed,
            params=params,
            engine=engine,
        )
        series[f"n_{n}"] = trace.series()
        # Summary rows: plateau statistics over the second half of the run.
        half = len(trace.parallel_time) // 2
        tail_min = min(trace.minimum[half:]) if half < len(trace.minimum) else float("nan")
        tail_max = max(trace.maximum[half:]) if half < len(trace.maximum) else float("nan")
        tail_med = sorted(trace.median[half:])[len(trace.median[half:]) // 2]
        rows.append(
            {
                "n": n,
                "log2_n": math.log2(n),
                "steady_minimum": tail_min,
                "steady_median": tail_med,
                "steady_maximum": tail_max,
                "trials": preset.trials,
                "parallel_time": preset.parallel_time,
            }
        )

    return ExperimentResult(
        experiment="fig2",
        description="Size estimate over parallel time (initially empty system)",
        rows=rows,
        series=series,
        metadata={"preset": preset.name, "params": params.describe(), "engine": engine},
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    result = run_fig2(effort="quick")
    print(result.table())
