"""Theorem 2.1 (convergence) — measured convergence time vs ``n`` and vs ``n-hat``.

Theorem 2.1 claims a convergence time of ``O(log n-hat + log n)`` parallel
time, where ``log n-hat`` is the largest initial estimate in the population.
This scenario sweeps both the population size and the initial estimate and
reports, per combination, the measured convergence time together with the
``log n-hat + log n`` reference, so that the ratio can be checked to stay
bounded (the empirical content of the asymptotic claim).

Convergence is defined exactly as in the analysis module: all agents (over
all trials) report estimates within constant factors of ``log2 n`` for a
number of consecutive snapshots.  Declared as the registered scenario
``"convergence"``.
"""

from __future__ import annotations

import math

from repro.analysis.convergence import measure_convergence
from repro.engine.recorder import SnapshotStats
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.figures import EstimateTrace
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec

__all__ = ["run_convergence_table", "trace_to_snapshots", "CONVERGENCE"]


def trace_to_snapshots(trace: EstimateTrace) -> list[SnapshotStats]:
    """Convert an aggregated trace into SnapshotStats rows for the analysis helpers."""
    return [
        SnapshotStats(
            parallel_time=int(t),
            population_size=int(size),
            minimum=lo,
            median=med,
            maximum=hi,
        )
        for t, size, lo, med, hi in zip(
            trace.parallel_time,
            trace.population_size,
            trace.minimum,
            trace.median,
            trace.maximum,
        )
    ]


def _points(preset, params):
    initial_estimates = tuple(preset.extra.get("initial_estimates", (1.0, 60.0)))
    return tuple(
        ScenarioPoint(
            n=n,
            seed=preset.seed + n + int(estimate * 1000),
            parallel_time=preset.parallel_time,
            trials=preset.trials,
            initial_estimate=None if estimate <= 1.0 else estimate,
            label=f"n_{n}_est_{estimate:g}",
            info={"initial_estimate": estimate},
        )
        for n in preset.population_sizes
        for estimate in initial_estimates
    )


def _row(trace, point, preset, params):
    estimate = float(point.info["initial_estimate"])
    log_n = math.log2(point.n)
    snapshots = trace_to_snapshots(trace)
    # The upper factor of 2.5 is tight enough to reject a lingering
    # over-estimate (e.g. the initial 60 for moderate n) while leaving
    # room for the ~log2(k) offset of the max-of-GRVs estimator.
    convergence = measure_convergence(
        snapshots, lower_factor=0.5, upper_factor=2.5, persistence=5
    )
    reference = max(estimate, 1.0) + log_n
    return {
        "n": point.n,
        "log2_n": log_n,
        "initial_estimate": estimate,
        "convergence_time": convergence if convergence is not None else float("nan"),
        "converged": convergence is not None,
        "reference_log_nhat_plus_log_n": reference,
        "time_over_reference": (
            convergence / reference if convergence is not None else float("nan")
        ),
        "trials": preset.trials,
    }


CONVERGENCE = register(
    ScenarioSpec(
        name="convergence",
        description="Convergence time vs population size and initial estimate (Theorem 2.1)",
        points=_points,
        metrics=(_row,),
        engine="batched",
        tags=("paper",),
    )
)


def run_convergence_table(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Measure convergence time across population sizes and initial estimates."""
    return run_scenario(CONVERGENCE, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_convergence_table(effort="quick").table())
