"""Experiment presets.

Three effort levels are provided for every experiment:

* ``quick``   — seconds; used by the pytest-benchmark harness and CI.
* ``default`` — minutes on a laptop; good fidelity for every figure.
* ``paper``   — the paper's actual scale (n up to 10^6, 5000 parallel time,
  96 trials); hours of CPU, provided for completeness.

The paper's evaluation parameters (Section 5): populations up to 10^6
agents, 5000 parallel time steps, 96 independent runs per data point,
protocol constants tau_1=6, tau_2=4, tau_3=2, tau'=20, k=16, and for Fig. 4
the decimation to 500 agents at parallel time 1350.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentPreset

__all__ = ["PRESETS", "get_preset", "list_presets", "decimation_knobs"]


def decimation_knobs(preset: ExperimentPreset) -> tuple[int, int]:
    """The decimation workload knobs ``(drop_time, keep)`` of a preset.

    Defaults to the paper's Fig. 4 event — all but 500 agents removed at
    parallel time 1350 — shared by every scenario built on that workload.
    """
    return int(preset.extra.get("drop_time", 1350)), int(preset.extra.get("keep", 500))


def _fig_preset(name: str, sizes: tuple[int, ...], time: int, trials: int, **extra) -> ExperimentPreset:
    return ExperimentPreset(
        name=name,
        population_sizes=sizes,
        parallel_time=time,
        trials=trials,
        extra=extra,
    )


#: Preset registry: ``PRESETS[experiment][effort]``.
PRESETS: dict[str, dict[str, ExperimentPreset]] = {
    # Fig. 2 — estimate over time, single (large) population, empty start.
    "fig2": {
        "quick": _fig_preset("quick", (2_000,), 600, 3),
        "default": _fig_preset("default", (100_000,), 2_000, 8),
        "paper": _fig_preset("paper", (1_000_000,), 5_000, 96),
    },
    # Fig. 3 — relative deviation from log n across population sizes.
    "fig3": {
        "quick": _fig_preset("quick", (10, 100, 1_000), 400, 3),
        "default": _fig_preset("default", (10, 100, 1_000, 10_000, 100_000), 1_500, 8),
        "paper": _fig_preset(
            "paper", (10, 100, 1_000, 10_000, 100_000, 1_000_000), 5_000, 96
        ),
    },
    # Fig. 4 — decimation to 500 agents at parallel time 1350.
    "fig4": {
        "quick": _fig_preset("quick", (2_000,), 900, 3, drop_time=300, keep=100),
        "default": _fig_preset(
            "default", (1_000, 10_000, 100_000), 3_000, 8, drop_time=1350, keep=500
        ),
        "paper": _fig_preset(
            "paper",
            (1_000, 10_000, 100_000, 1_000_000),
            5_000,
            96,
            drop_time=1350,
            keep=500,
        ),
    },
    # Fig. 5 (Appendix B) — populations initialised with an estimate of 60.
    "fig5": {
        # Forgetting an over-estimate of 60 takes roughly two clock rounds of
        # length ~tau_1 * 60 parallel time, so even the quick preset needs a
        # horizon in the low thousands (the paper uses 5000).
        "quick": _fig_preset("quick", (100, 2_000), 2_600, 3, initial_estimate=60.0),
        "default": _fig_preset(
            "default", (10, 100, 1_000, 10_000, 100_000), 3_000, 8, initial_estimate=60.0
        ),
        "paper": _fig_preset(
            "paper",
            (10, 100, 1_000, 10_000, 100_000, 1_000_000),
            5_000,
            96,
            initial_estimate=60.0,
        ),
    },
    # Theorem 2.1 — convergence time vs n and vs initial estimate.
    "convergence": {
        "quick": _fig_preset("quick", (100, 500), 2_000, 3, initial_estimates=(1.0, 30.0)),
        "default": _fig_preset(
            "default", (100, 1_000, 10_000), 2_500, 8, initial_estimates=(1.0, 30.0, 60.0)
        ),
        "paper": _fig_preset(
            "paper",
            (100, 1_000, 10_000, 100_000),
            5_000,
            32,
            initial_estimates=(1.0, 30.0, 60.0, 120.0),
        ),
    },
    # Theorem 2.1 — holding time (lower-bound check within the horizon).
    "holding": {
        "quick": _fig_preset("quick", (200,), 1_200, 3),
        "default": _fig_preset("default", (200, 2_000), 5_000, 8),
        "paper": _fig_preset("paper", (200, 2_000, 20_000), 20_000, 16),
    },
    # Theorem 2.1 — memory bits per agent, ours vs the Doty–Eftekhari baseline.
    "memory": {
        "quick": _fig_preset("quick", (50, 200), 300, 2),
        "default": _fig_preset("default", (50, 200, 1_000, 5_000), 600, 4),
        "paper": _fig_preset("paper", (50, 200, 1_000, 5_000, 20_000), 1_200, 8),
    },
    # Theorem 2.2 — burst/overlap structure of the uniform phase clock.
    "phase_clock": {
        "quick": _fig_preset("quick", (100,), 800, 2),
        "default": _fig_preset("default", (100, 300), 2_000, 4),
        "paper": _fig_preset("paper", (100, 300, 1_000), 5_000, 8),
    },
    # Qualitative baseline comparison (ours vs Doty–Eftekhari vs static max).
    "baseline": {
        "quick": _fig_preset("quick", (300,), 700, 2, drop_time=250, keep=50),
        "default": _fig_preset("default", (1_000,), 2_000, 4, drop_time=700, keep=100),
        "paper": _fig_preset("paper", (5_000,), 4_000, 8, drop_time=1350, keep=500),
    },
    # ------------------------------------------------------------------
    # Adversarial scenario catalog (beyond the paper's figures; see
    # repro.scenarios.catalog).  No engine is pinned: the runner
    # auto-selects via repro.engine.registry.choose_engine.
    # ------------------------------------------------------------------
    # Population oscillates between n and n/shrink_factor every period.
    "oscillate": {
        "quick": _fig_preset("quick", (2_000,), 600, 3, period=150, shrink_factor=10),
        "default": _fig_preset(
            "default", (10_000, 100_000), 2_400, 8, period=400, shrink_factor=10
        ),
        "paper": _fig_preset(
            "paper", (100_000, 1_000_000), 5_000, 48, period=700, shrink_factor=10
        ),
    },
    # Exponential growth for several periods, then a crash.
    "boom_bust": {
        "quick": _fig_preset(
            "quick", (500,), 800, 3, period=120, growth_steps=3, crash_divisor=10
        ),
        "default": _fig_preset(
            "default", (2_000,), 2_400, 8, period=300, growth_steps=4, crash_divisor=10
        ),
        "paper": _fig_preset(
            "paper", (10_000,), 5_000, 48, period=600, growth_steps=5, crash_divisor=10
        ),
    },
    # Sustained random churn: resize to a random size every period.
    "churn": {
        "quick": _fig_preset("quick", (2_000,), 600, 3, period=120, low_divisor=10),
        "default": _fig_preset(
            "default", (10_000,), 2_400, 8, period=250, low_divisor=10
        ),
        "paper": _fig_preset(
            "paper", (100_000,), 5_000, 48, period=400, low_divisor=10
        ),
    },
    # Fig. 4's decimation repeated down to a floor.
    "repeated_decimation": {
        "quick": _fig_preset("quick", (4_000,), 900, 3, period=200, floor=50),
        "default": _fig_preset(
            "default", (50_000,), 2_400, 8, period=400, floor=100
        ),
        "paper": _fig_preset(
            "paper", (1_000_000,), 5_000, 48, period=600, floor=500
        ),
    },
    # ------------------------------------------------------------------
    # Trace-driven and multi-phase scenarios (repro.scenarios.catalog):
    # population dynamics replayed from bundled CSV load curves, and a
    # phased outage/recovery timeline.
    # ------------------------------------------------------------------
    # A flash crowd: calm baseline, a 10x spike, then decay back down.
    "flash_crowd": {
        "quick": _fig_preset("quick", (2_000,), 600, 3, trace="flash_crowd"),
        "default": _fig_preset("default", (20_000,), 2_400, 8, trace="flash_crowd"),
        "paper": _fig_preset("paper", (100_000,), 5_000, 48, trace="flash_crowd"),
    },
    # A day of load: overnight trough, daytime peak, back to baseline.
    "diurnal": {
        "quick": _fig_preset("quick", (2_000,), 600, 3, trace="diurnal"),
        "default": _fig_preset("default", (20_000,), 2_400, 8, trace="diurnal"),
        "paper": _fig_preset("paper", (100_000,), 5_000, 48, trace="diurnal"),
    },
    # Steady state -> sudden outage to n/outage_divisor -> full recovery.
    "failover": {
        "quick": _fig_preset("quick", (2_000,), 600, 3, outage_divisor=10),
        "default": _fig_preset("default", (20_000,), 2_400, 8, outage_divisor=10),
        "paper": _fig_preset("paper", (100_000,), 5_000, 48, outage_divisor=10),
    },
}


def get_preset(experiment: str, effort: str = "quick") -> ExperimentPreset:
    """Look up a preset; raises ``KeyError`` with the available options listed."""
    try:
        by_effort = PRESETS[experiment]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment!r}; available: {sorted(PRESETS)}"
        ) from exc
    try:
        return by_effort[effort]
    except KeyError as exc:
        raise KeyError(
            f"unknown effort {effort!r} for {experiment!r}; available: {sorted(by_effort)}"
        ) from exc


def list_presets() -> dict[str, list[str]]:
    """Mapping of experiment id to its available effort levels."""
    return {experiment: sorted(levels) for experiment, levels in PRESETS.items()}
