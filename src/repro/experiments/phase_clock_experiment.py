"""Theorem 2.2 — burst/overlap structure of the uniform phase clock.

Theorem 2.2 states that, once the population holds estimates of
``Theta(log n)``, the reset events partition time into *bursts* (every agent
ticks exactly once) separated by *overlaps* (no agent ticks), both of length
``Theta(n log n)`` interactions.  This scenario records every tick on the
exact sequential engine, reconstructs bursts and overlaps with
:mod:`repro.analysis.synchronization`, and reports

* how many bursts were exact (every live agent ticked exactly once),
* the mean burst length, overlap length and clock period in interactions,
* and the period divided by ``n log2 n`` — the constant that should be
  roughly stable across ``n`` if the ``Theta(n log n)`` claim holds.

Declared as the registered scenario ``"phase_clock"``.  Only the exact
sequential engine is supported: the burst/overlap reconstruction needs every
tick event with its exact interaction index, which the batched/array engines
do not emit — so the spec provides a bespoke executor.
"""

from __future__ import annotations

import math

from repro.analysis.synchronization import analyze_synchrony
from repro.core.phase_clock import UniformPhaseClock
from repro.engine.recorder import EventRecorder
from repro.engine.rng import RandomSource, spawn_streams
from repro.engine.simulator import Simulator
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_phase_clock_experiment", "PHASE_CLOCK"]


def _execute(spec, preset, params, engine) -> ExperimentResult:
    rows: list[dict[str, float]] = []

    for n in preset.population_sizes:
        log_n = math.log2(n)
        exact_fractions: list[float] = []
        burst_lengths: list[float] = []
        overlap_lengths: list[float] = []
        periods: list[float] = []
        for generator in spawn_streams(preset.seed + n, preset.trials):
            rng = RandomSource(generator)
            clock = UniformPhaseClock()
            recorder = EventRecorder(kinds={"tick"})
            simulator = Simulator(
                clock, n, rng=rng, recorders=[recorder], snapshot_stats=False
            )
            simulator.run(preset.parallel_time)
            # Skip the start-up transient: only analyse ticks from the second
            # half of the run, when the population is converged.
            cutoff = simulator.interactions_executed // 2
            events = [e for e in recorder.events if e.interaction >= cutoff]
            report = analyze_synchrony(events, n, gap_threshold=3 * n)
            exact_fractions.append(report.exact_fraction)
            burst_lengths.append(report.mean_burst_length())
            overlap_lengths.append(report.mean_overlap_length())
            periods.append(report.mean_period())

        mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")  # noqa: E731
        rows.append(
            {
                "n": n,
                "log2_n": log_n,
                "exact_burst_fraction": mean(exact_fractions),
                "mean_burst_interactions": mean(burst_lengths),
                "mean_overlap_interactions": mean(overlap_lengths),
                "mean_period_interactions": mean(periods),
                "period_over_n_log_n": mean(periods) / (n * log_n) if log_n > 0 else float("nan"),
                "trials": preset.trials,
            }
        )

    return ExperimentResult(
        experiment=spec.id,
        description=spec.description_for(preset),
        rows=rows,
        metadata={
            "preset": preset.name,
            "params": params.describe(),
            "engine": "sequential",
            "scenario": spec.name,
        },
    )


PHASE_CLOCK = register(
    ScenarioSpec(
        name="phase_clock",
        description="Burst/overlap structure of the uniform phase clock (Theorem 2.2)",
        executor=_execute,
        engines=("sequential",),
        engine="sequential",
        tags=("paper",),
    )
)


def run_phase_clock_experiment(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "sequential",
) -> ExperimentResult:
    """Measure the burst/overlap structure of the clock (Theorem 2.2)."""
    return run_scenario(PHASE_CLOCK, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_phase_clock_experiment(effort="quick").table())
