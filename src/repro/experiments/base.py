"""Common experiment infrastructure.

Every experiment module exposes a ``run_*`` function that takes an
:class:`ExperimentPreset` and returns an :class:`ExperimentResult`.  The
result carries the regenerated series/rows (the same quantities the paper
plots), a human-readable table, and enough metadata to reproduce the run.

Results can be persisted with :meth:`ExperimentResult.save`, which writes a
CSV per series plus a JSON manifest under the chosen output directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.tables import (
    format_table,
    read_csv,
    read_json,
    rows_to_series,
    write_csv,
    write_json,
)

__all__ = ["ExperimentPreset", "ExperimentResult"]


@dataclass(frozen=True)
class ExperimentPreset:
    """Size/effort knobs shared by all experiments.

    Attributes
    ----------
    name:
        Preset label (``"quick"``, ``"default"`` or ``"paper"``).
    population_sizes:
        The ``n`` values to sweep (where the experiment sweeps ``n``).
    parallel_time:
        Simulation horizon in parallel time units.
    trials:
        Independent repetitions per data point (the paper uses 96).
    seed:
        Root seed for reproducibility.
    extra:
        Experiment-specific knobs (e.g. the decimation target of Fig. 4).
    """

    name: str
    population_sizes: tuple[int, ...]
    parallel_time: int
    trials: int
    seed: int = 20240508
    extra: Mapping[str, Any] = field(default_factory=dict)

    def with_overrides(self, **overrides: Any) -> "ExperimentPreset":
        """Return a copy with selected fields replaced."""
        data = {
            "name": self.name,
            "population_sizes": self.population_sizes,
            "parallel_time": self.parallel_time,
            "trials": self.trials,
            "seed": self.seed,
            "extra": dict(self.extra),
        }
        extra_override = overrides.pop("extra", None)
        data.update(overrides)
        if extra_override is not None:
            merged = dict(self.extra)
            merged.update(extra_override)
            data["extra"] = merged
        return ExperimentPreset(**data)


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment:
        Experiment identifier (``"fig2"``, ``"fig3"``, ...).
    description:
        One-line description of what the experiment regenerates.
    rows:
        Row-oriented data (one dictionary per table row / plotted point).
    series:
        Optional column-oriented time series keyed by series name.
    metadata:
        Preset, protocol parameters and engine information.
    """

    experiment: str
    description: str
    rows: list[dict[str, Any]]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def table(self, columns: Sequence[str] | None = None) -> str:
        """Human-readable ASCII table of :attr:`rows`."""
        return format_table(self.rows, columns, title=f"{self.experiment}: {self.description}")

    def save(self, output_dir: str | Path) -> Path:
        """Persist rows, series and metadata under ``output_dir``; returns the dir."""
        base = Path(output_dir) / self.experiment
        base.mkdir(parents=True, exist_ok=True)
        if self.rows:
            write_csv(base / "rows.csv", self.rows)
        for name, series in self.series.items():
            columns = [{key: series[key][i] for key in series} for i in range(min(len(v) for v in series.values()))]
            write_csv(base / f"series_{name}.csv", columns)
        write_json(
            base / "manifest.json",
            {
                "experiment": self.experiment,
                "description": self.description,
                "metadata": self.metadata,
                "row_count": len(self.rows),
                "series": sorted(self.series),
            },
        )
        return base

    @classmethod
    def load(cls, result_dir: str | Path) -> "ExperimentResult":
        """Load a result previously persisted with :meth:`save`.

        ``result_dir`` is the per-experiment directory :meth:`save` returned
        (the one containing ``manifest.json``).  Numeric/boolean cell types
        are restored from the CSVs, so ``load(save(...))`` round-trips: the
        loaded result saves to an identical manifest.
        """
        base = Path(result_dir)
        manifest = read_json(base / "manifest.json")
        rows_path = base / "rows.csv"
        rows = read_csv(rows_path) if rows_path.exists() else []
        series: dict[str, dict[str, list[float]]] = {}
        for name in manifest.get("series", []):
            series[name] = rows_to_series(read_csv(base / f"series_{name}.csv"))
        return cls(
            experiment=manifest["experiment"],
            description=manifest["description"],
            rows=rows,
            series=series,
            metadata=manifest.get("metadata", {}),
        )
