"""Figure 5 (Appendix B) — recovery from an initial over-estimate of 60.

Every agent starts with ``max = lastMax = 60`` (and ``time = tau_1 * 60``),
i.e. the population believes it has ``2^60`` members.  The paper's Fig. 5
shows that the over-estimate dominates for ``O(log n-hat)`` time — visibly
longer for small populations, where a clock round paced by the wrong
estimate takes much longer relative to ``log n`` — and is then forgotten,
after which the estimates settle at the correct level.

This is also the workload where the paper's protocol is slower than the
Doty–Eftekhari baseline (their convergence depends on ``log log n-hat``
rather than ``log n-hat``); the baseline comparison scenario makes that
trade-off measurable.  Declared as the registered scenario ``"fig5"``.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec

__all__ = ["run_fig5", "forgetting_time", "FIG5"]


def forgetting_time(
    trace_times: list[float],
    trace_maxima: list[float],
    initial_estimate: float,
) -> float | None:
    """First time at which no agent reports the initial over-estimate any more."""
    for time, maximum in zip(trace_times, trace_maxima):
        if maximum < initial_estimate:
            return time
    return None


def _initial_estimate(preset) -> float:
    return float(preset.extra.get("initial_estimate", 60.0))


def _points(preset, params):
    estimate = _initial_estimate(preset)
    return tuple(
        ScenarioPoint(
            n=n,
            seed=preset.seed + n,
            parallel_time=preset.parallel_time,
            trials=preset.trials,
            initial_estimate=estimate,
        )
        for n in preset.population_sizes
    )


def _row(trace, point, preset, params):
    initial_estimate = _initial_estimate(preset)
    log_n = math.log2(point.n)
    forget = forgetting_time(trace.parallel_time, trace.maximum, initial_estimate)
    final_median = trace.median[-1] if trace.median else float("nan")
    return {
        "n": point.n,
        "log2_n": log_n,
        "initial_estimate": initial_estimate,
        "forgetting_time": forget if forget is not None else float("nan"),
        "forgot_initial_estimate": forget is not None,
        "median_at_end": final_median,
        "relative_median_at_end": final_median / log_n if log_n > 0 else float("nan"),
        "trials": preset.trials,
    }


FIG5 = register(
    ScenarioSpec(
        name="fig5",
        description="Recovery from an initial over-estimate",
        points=_points,
        metrics=(_row,),
        keep_series=True,
        engine="batched",
        describe=lambda preset: (
            f"Recovery from an initial estimate of {_initial_estimate(preset):g}"
        ),
        tags=("paper",),
    )
)


def run_fig5(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Regenerate Fig. 5: recovery from an initial estimate of 60."""
    return run_scenario(FIG5, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_fig5(effort="quick").table())
