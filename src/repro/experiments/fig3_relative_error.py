"""Figure 3 — relative deviation of the estimate from ``log n`` across ``n``.

The paper's Fig. 3 plots, for ``n = 10^1 ... 10^6``, the relative deviation
of the minimum / median / maximum estimate from the true ``log n`` (a value
of 1 means exact).  Small populations over-estimate by a larger relative
factor (the ``+ log2 k`` additive offset of the max of ``k * n`` GRVs weighs
more when ``log n`` is small), and the deviation approaches 1 as ``n``
grows — which is exactly the shape this scenario regenerates.

Statistics are taken over the steady-state window (the second half of each
run, after convergence), mirroring how the paper reports converged
estimates.  Declared as the registered scenario ``"fig3"``.
"""

from __future__ import annotations

import math

from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_fig3", "FIG3"]


def _row(trace, point, preset, params):
    log_n = math.log2(point.n)
    half = len(trace.parallel_time) // 2
    window_min = min(trace.minimum[half:])
    window_max = max(trace.maximum[half:])
    medians = sorted(trace.median[half:])
    window_med = medians[len(medians) // 2]
    return {
        "n": point.n,
        "log10_n": math.log10(point.n),
        "log2_n": log_n,
        "relative_minimum": window_min / log_n,
        "relative_median": window_med / log_n,
        "relative_maximum": window_max / log_n,
        "trials": preset.trials,
    }


FIG3 = register(
    ScenarioSpec(
        name="fig3",
        description="Relative deviation of the estimate from log n across population sizes",
        metrics=(_row,),
        engine="batched",
        tags=("paper",),
    )
)


def run_fig3(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Regenerate Fig. 3: relative deviation from ``log n`` for varying ``n``."""
    return run_scenario(FIG3, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_fig3(effort="quick").table())
