"""Qualitative baseline comparison under a dynamic adversary.

Section 2.2 of the paper compares its protocol with the Doty–Eftekhari
dynamic counting protocol (space vs convergence-time trade-off) and argues
that static counting protocols break outright in the dynamic setting.  This
scenario makes all three claims measurable on the same workload — a
decimation event in the middle of the run:

* **ours** adapts to the new population size within a couple of rounds,
* **Doty–Eftekhari** also adapts (it is a dynamic protocol), but stores an
  order of magnitude more bits per agent,
* **static max-of-GRVs** never adapts: the stale maximum survives forever.

The summary row per protocol reports the estimate before the drop, the
estimate at the end of the run, whether it adapted, and the peak per-agent
memory in bits.

Declared as the registered scenario ``"baseline"``.  Only the exact
sequential engine is supported: the baseline protocols have no vectorised
counterparts and the comparison records per-state memory footprints — so
the spec provides a bespoke executor.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.adversary import RemoveAllButAt
from repro.engine.recorder import EstimateRecorder, MemoryRecorder
from repro.engine.rng import RandomSource, spawn_streams
from repro.engine.simulator import Simulator
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.config import decimation_knobs
from repro.protocols.doty_eftekhari import DotyEftekhariCounting
from repro.protocols.static_counting import MaxGrvCounting
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_baseline_comparison", "BASELINE"]


def _run_protocol(
    protocol: Any,
    n: int,
    parallel_time: int,
    drop_time: int,
    keep: int,
    trials: int,
    seed: int,
) -> dict[str, float]:
    """Run one protocol on the decimation workload and summarise it."""
    before_levels: list[float] = []
    after_levels: list[float] = []
    after_lows: list[float] = []
    peak_bits: list[float] = []
    for generator in spawn_streams(seed, trials):
        rng = RandomSource(generator)
        estimates = EstimateRecorder()
        memory = MemoryRecorder()
        simulator = Simulator(
            protocol,
            n,
            rng=rng,
            adversary=RemoveAllButAt(time=drop_time, keep=keep),
            recorders=[estimates, memory],
            snapshot_stats=False,
        )
        simulator.run(parallel_time)
        pre = [r.median for r in estimates.rows if r.parallel_time < drop_time]
        before_levels.append(pre[-1] if pre else float("nan"))
        # The estimate oscillates from round to round and occasionally
        # spikes when a large GRV is sampled, so summarise the post-drop
        # behaviour over the second half of the remaining horizon: the
        # median (reported level) and the minimum (the low point of the
        # oscillation, a very stable statistic used for the adaptation
        # verdict).
        cutoff = drop_time + 0.5 * (parallel_time - drop_time)
        tail = sorted(r.median for r in estimates.rows if r.parallel_time >= cutoff)
        after_levels.append(tail[len(tail) // 2] if tail else float("nan"))
        after_lows.append(tail[0] if tail else float("nan"))
        peak_bits.append(memory.peak_bits())
    mean = lambda xs: sum(xs) / len(xs) if xs else float("nan")  # noqa: E731
    return {
        "median_before_drop": mean(before_levels),
        "median_at_end": mean(after_levels),
        "low_after_drop": mean(after_lows),
        "peak_bits_per_agent": mean(peak_bits),
    }


def _execute(spec, preset, params, engine) -> ExperimentResult:
    drop_time, keep = decimation_knobs(preset)
    rows: list[dict[str, Any]] = []

    protocols = {
        "dynamic-size-counting (ours)": DynamicSizeCounting(params),
        "doty-eftekhari-2022": DotyEftekhariCounting(),
        "static-max-grv": MaxGrvCounting(samples_per_agent=params.grv_samples),
    }

    for n in preset.population_sizes:
        log_keep = math.log2(keep)
        for label, protocol in protocols.items():
            summary = _run_protocol(
                protocol, n, preset.parallel_time, drop_time, keep, preset.trials, preset.seed + n
            )
            # "Adapted" = the estimate actually moved towards the new size:
            # its post-drop low point dropped by at least half of the true
            # drop log2(n / keep).  This criterion is estimator-agnostic
            # (each protocol has its own additive offset) and cleanly
            # separates the dynamic protocols from the static baseline,
            # whose estimate never decreases at all.
            expected_drop = math.log2(n / keep)
            observed_drop = summary["median_before_drop"] - summary["low_after_drop"]
            adapted = bool(observed_drop >= 0.5 * expected_drop)
            rows.append(
                {
                    "n": n,
                    "protocol": label,
                    "log2_n": math.log2(n),
                    "log2_keep": log_keep,
                    "median_before_drop": summary["median_before_drop"],
                    "median_at_end": summary["median_at_end"],
                    "low_after_drop": summary["low_after_drop"],
                    "adapted_to_drop": adapted,
                    "peak_bits_per_agent": summary["peak_bits_per_agent"],
                    "trials": preset.trials,
                }
            )

    return ExperimentResult(
        experiment=spec.id,
        description=spec.description_for(preset),
        rows=rows,
        metadata={
            "preset": preset.name,
            "params": params.describe(),
            "engine": "sequential",
            "scenario": spec.name,
        },
    )


def _describe(preset) -> str:
    drop_time, keep = decimation_knobs(preset)
    return (
        f"Adaptation and memory comparison under decimation to {keep} agents at t={drop_time}"
    )


BASELINE = register(
    ScenarioSpec(
        name="baseline",
        description="Adaptation and memory comparison: ours vs Doty-Eftekhari vs static counting",
        executor=_execute,
        engines=("sequential",),
        engine="sequential",
        describe=_describe,
        tags=("paper", "baseline", "adversarial"),
        schedule_kind="decimation",
        knobs=("drop_time", "keep"),
    )
)


def run_baseline_comparison(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "sequential",
) -> ExperimentResult:
    """Compare our protocol, Doty–Eftekhari, and static counting under decimation."""
    return run_scenario(BASELINE, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_baseline_comparison(effort="quick").table())
