"""Theorem 2.1 (holding) — how long valid estimates persist.

Theorem 2.1's holding time is ``Theta(n^{k-1} log n)`` parallel time with
``k = 16`` in the empirical setting — astronomically longer than any
simulation horizon, exactly as in the paper (whose 5000 parallel time steps
are likewise only a lower-bound check).  The scenario therefore reports

* the measured holding time within the simulation horizon,
* whether validity still held at the end of the run (it should), and
* the horizon expressed as a multiple of ``log n`` — i.e. for how many clock
  rounds the estimates were observed to stay valid.

Declared as the registered scenario ``"holding"``.
"""

from __future__ import annotations

import math

from repro.analysis.convergence import loose_stabilization_report
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.convergence_table import trace_to_snapshots
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_holding_table", "HOLDING"]


def _row(trace, point, preset, params):
    log_n = math.log2(point.n)
    report = loose_stabilization_report(
        trace_to_snapshots(trace),
        lower_factor=0.5,
        upper_factor=8.0,
        persistence=5,
        grace=2,
    )
    holding = report.holding_time if report.holding_time is not None else float("nan")
    return {
        "n": point.n,
        "log2_n": log_n,
        "parallel_time_horizon": preset.parallel_time,
        "convergence_time": (
            report.convergence_time
            if report.convergence_time is not None
            else float("nan")
        ),
        "holding_time_observed": holding,
        "held_until_end_of_run": report.held_until_end,
        "observed_rounds_held": (
            holding / (params.tau1 * log_n)
            if log_n > 0 and not math.isnan(holding)
            else float("nan")
        ),
        "trials": preset.trials,
    }


HOLDING = register(
    ScenarioSpec(
        name="holding",
        description="Observed holding time of valid estimates (Theorem 2.1 lower-bound check)",
        metrics=(_row,),
        engine="batched",
        tags=("paper",),
    )
)


def run_holding_table(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "batched",
) -> ExperimentResult:
    """Measure how long the converged estimate band holds within the horizon."""
    return run_scenario(HOLDING, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_holding_table(effort="quick").table())
