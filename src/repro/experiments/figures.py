"""Shared machinery for the figure experiments (Figs. 2–5).

All four figures plot the same quantity — the minimum, median and maximum
agent estimate of ``log2 n`` over parallel time, aggregated over independent
runs — and differ only in the workload (population size, decimation event,
initial estimate).  :func:`run_estimate_trace` runs one such workload on a
selectable engine (``"sequential"`` / ``"array"`` / ``"batched"`` /
``"ensemble"`` / ``"counts"``, see :mod:`repro.engine.registry`) and
aggregates across trials exactly like the paper does over its 96 runs: the
reported minimum is the minimum over all runs' minima, the maximum the
maximum over all maxima, and the median the median of the runs' medians.

The batched engine is the default; the ensemble engine additionally stacks
all trials of a data point into one ``(trials, n)`` engine and removes the
per-trial Python loop entirely — the fastest way to regenerate a figure at
the paper's populations.  The counts engine drops the per-agent state for
a count vector, making huge populations (n = 10^7 and beyond) affordable.
The exact engines are available for small-n cross-validation and for
workloads where the interleaving matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Sequence

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import ProtocolParameters, empirical_parameters
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.api import Engine
from repro.engine.parallel import ShardTiming, resolve_workers
from repro.engine.registry import choose_engine, engine_info, make_engine
from repro.engine.rng import RandomSource
from repro.engine.runner import aggregate_series, run_engine_trials

__all__ = ["EstimateTrace", "run_estimate_trace"]


@dataclass
class EstimateTrace:
    """Aggregated estimate statistics of one workload.

    ``parallel_time``, ``population_size``, ``minimum``, ``median`` and
    ``maximum`` are aligned column lists (one entry per snapshot).
    ``shard_timings`` carries one entry per executed row-shard (dicts with
    ``shard`` / ``start`` / ``stop`` / ``trials`` / ``seconds``) when the
    workload ran on the sharded execution layer, and stays empty on the
    serial path.
    """

    n: int
    trials: int
    parallel_time: list[float]
    population_size: list[float]
    minimum: list[float]
    median: list[float]
    maximum: list[float]
    shard_timings: list[dict[str, Any]] = field(default_factory=list)

    def series(self) -> dict[str, list[float]]:
        return {
            "parallel_time": self.parallel_time,
            "population_size": self.population_size,
            "minimum": self.minimum,
            "median": self.median,
            "maximum": self.maximum,
        }


def _build_trace_engine(
    engine: str,
    n: int,
    rng: RandomSource,
    params: ProtocolParameters,
    resize_schedule: Sequence[tuple[int, int]],
    initial_estimate: float | None,
    sub_batches: int,
    trials: int | None = None,
    jit: bool = False,
) -> Engine:
    """Build one engine for the estimate-trace workload.

    All engines run the same protocol family — the scalar
    :class:`DynamicSizeCounting` on the sequential engine, the
    struct-of-arrays :class:`VectorizedDynamicCounting` on the exact array
    and approximate batched/ensemble engines (and, mapped to its counts
    kernel by the registry, on the counts engine) — so only the workload
    translation (initial estimate to population/arrays) lives here; the
    engine dispatch itself is :func:`repro.engine.registry.make_engine`.
    """
    if engine == "sequential":
        protocol = DynamicSizeCounting(params)
        if initial_estimate is not None:
            population: int | object = protocol.make_estimate_population(
                n, initial_estimate, rng
            )
        else:
            population = n
        return make_engine(
            engine, protocol, population, rng=rng, resize_schedule=resize_schedule
        )
    vectorized = VectorizedDynamicCounting(params)
    initial_arrays = None
    if initial_estimate is not None:
        initial_arrays = vectorized.initial_arrays_with_estimate(n, initial_estimate)
    return make_engine(
        engine,
        vectorized,
        n,
        rng=rng,
        resize_schedule=resize_schedule,
        initial_arrays=initial_arrays,
        sub_batches=sub_batches,
        trials=trials if engine == "ensemble" else None,
        # Guarded per engine so a jit request composes with auto-selection:
        # points that resolve to array/counts simply ignore it.
        jit=jit and engine_info(engine).supports_jit,
    )


def _trace_engine_factory(
    engine_name: str,
    rng: RandomSource,
    ensemble_trials: int | None,
    *,
    n: int,
    params: ProtocolParameters,
    resize_schedule: tuple[tuple[int, int], ...],
    initial_estimate: float | None,
    sub_batches: int,
    jit: bool = False,
) -> Engine:
    """Picklable engine factory for :func:`run_engine_trials`.

    A module-level function (bound via :func:`functools.partial` over
    plain-data keywords) rather than a closure, so the sharded execution
    layer can ship it to worker processes.
    """
    return _build_trace_engine(
        engine_name,
        n,
        rng,
        params,
        resize_schedule,
        initial_estimate,
        sub_batches,
        trials=ensemble_trials,
        jit=jit,
    )


def run_estimate_trace(
    n: int,
    parallel_time: int,
    *,
    trials: int,
    seed: int | None,
    params: ProtocolParameters | None = None,
    resize_schedule: Sequence[tuple[int, int]] = (),
    initial_estimate: float | None = None,
    snapshot_every: int = 1,
    sub_batches: int = 8,
    engine: str | None = "batched",
    workers: int | str | None = None,
    jit: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_dir: Any = None,
    resume_from: Any = None,
    interrupt_after: int | None = None,
) -> EstimateTrace:
    """Run ``trials`` independent simulations of one workload and aggregate.

    Parameters
    ----------
    n:
        Initial population size.
    parallel_time:
        Simulation horizon.
    trials / seed:
        Number of independent runs and the root seed they are spawned from.
    params:
        Protocol constants (defaults to the paper's empirical preset).
    resize_schedule:
        ``(time, target_size)`` adversary events (Fig. 4's decimation).
    initial_estimate:
        If given, all agents start with this estimate instead of the empty
        initial configuration (Fig. 5's over-estimate of 60).
    snapshot_every:
        Snapshot granularity in parallel time units.
    sub_batches:
        Fidelity knob of the batched engine (ignored by the exact engines).
    engine:
        Engine name: ``"sequential"``, ``"array"``, ``"batched"``
        (default), ``"ensemble"``, ``"counts"``, or ``None``/``"auto"`` to
        pick the best engine for the workload via
        :func:`repro.engine.registry.choose_engine`.  All engines report the
        same snapshot series; the exact engines are practical only for small
        ``n``, the ensemble engine runs trials in stacked passes instead of
        the per-trial loop, and the counts engine makes huge populations
        (``n >= 10^7``) affordable.
    workers:
        Sharded execution (see :mod:`repro.engine.parallel`): ``None``
        (default) keeps the serial path, ``"auto"`` uses the capped CPU
        count, an integer fans the trial row-shards over that many worker
        processes.  Per-trial results are bit-identical across worker
        counts (and, for the looped engines, identical to the serial
        path); per-shard wall-clock timings land in the returned trace's
        ``shard_timings``.
    jit:
        Request the compiled kernel backend of :mod:`repro.kernels` when
        the resolved engine supports it; engines without the capability,
        and machines without numba, transparently run the NumPy reference
        kernels.
    checkpoint_every / checkpoint_dir / resume_from / interrupt_after:
        Crash recovery for long-horizon runs, forwarded verbatim to
        :func:`repro.engine.runner.run_engine_trials`: checkpoint every
        ``checkpoint_every`` parallel time units into ``checkpoint_dir``,
        resume an interrupted run from ``resume_from``.  A resumed trace
        is bit-identical to an uninterrupted one.
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    params = params or empirical_parameters()
    resize_schedule = tuple(resize_schedule)
    workers = resolve_workers(workers)
    if engine is None or engine == "auto":
        engine = choose_engine(
            DynamicSizeCounting(params), trials, n, workers=workers, jit=jit
        )

    per_trial_min: list[list[float]] = []
    per_trial_med: list[list[float]] = []
    per_trial_max: list[list[float]] = []
    index: list[float] = []
    sizes: list[float] = []

    timing_sink: list[ShardTiming] = []
    trial_series = run_engine_trials(
        partial(
            _trace_engine_factory,
            n=n,
            params=params,
            resize_schedule=resize_schedule,
            initial_estimate=initial_estimate,
            sub_batches=sub_batches,
            jit=jit,
        ),
        engine=engine,
        trials=trials,
        seed=seed,
        parallel_time=parallel_time,
        snapshot_every=snapshot_every,
        workers=workers,
        timing_sink=timing_sink,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        resume_from=resume_from,
        interrupt_after=interrupt_after,
    )

    for series in trial_series:
        per_trial_min.append(series["minimum"])
        per_trial_med.append(series["median"])
        per_trial_max.append(series["maximum"])
        if not index:
            index = series["parallel_time"]
            sizes = series["population_size"]

    minimum = aggregate_series("minimum", index, per_trial_min)
    median = aggregate_series("median", index, per_trial_med)
    maximum = aggregate_series("maximum", index, per_trial_max)
    length = min(len(minimum.index), len(median.index), len(maximum.index))
    return EstimateTrace(
        n=n,
        trials=trials,
        parallel_time=list(index[:length]),
        population_size=list(sizes[:length]),
        minimum=minimum.minimum[:length],
        median=median.median[:length],
        maximum=maximum.maximum[:length],
        shard_timings=[timing.as_dict() for timing in timing_sink],
    )
