"""Command-line entry point: ``repro-experiments``.

Runs one experiment (or all of them) at a chosen effort level, prints the
regenerated table, and optionally persists the rows/series under an output
directory.  Example::

    repro-experiments fig4 --effort quick --output results/
    repro-experiments fig2 --effort quick --engine array
    repro-experiments all --effort default
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.engine.errors import ConfigurationError, UnsupportedEngineError
from repro.engine.registry import ENGINE_NAMES
from repro.experiments.base import ExperimentResult
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.config import list_presets
from repro.experiments.convergence_table import run_convergence_table
from repro.experiments.fig2_size_estimate import run_fig2
from repro.experiments.fig3_relative_error import run_fig3
from repro.experiments.fig4_population_drop import run_fig4
from repro.experiments.fig5_initial_estimate import run_fig5
from repro.experiments.holding_table import run_holding_table
from repro.experiments.memory_table import run_memory_table
from repro.experiments.phase_clock_experiment import run_phase_clock_experiment

__all__ = ["main", "EXPERIMENT_RUNNERS"]

#: Experiment id -> runner function.
EXPERIMENT_RUNNERS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "convergence": run_convergence_table,
    "holding": run_holding_table,
    "memory": run_memory_table,
    "phase_clock": run_phase_clock_experiment,
    "baseline": run_baseline_comparison,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and tables of 'Dynamic Size Counting in the "
            "Population Protocol Model' (Kaaser & Lohmann, PODC 2024)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENT_RUNNERS) + ["all", "list"],
        help="Experiment to run ('all' runs every experiment, 'list' shows presets).",
    )
    parser.add_argument(
        "--effort",
        default="quick",
        choices=("quick", "default", "paper"),
        help="Preset size: quick (seconds), default (minutes), paper (original scale).",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="Directory to persist CSV/JSON results into (omit to only print).",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=ENGINE_NAMES,
        help=(
            "Execution engine (sequential, array, batched, ensemble); omit to "
            "use each experiment's default.  The ensemble engine runs all "
            "trials of a data point in one stacked vectorized pass."
        ),
    )
    return parser


def _run_one(
    experiment: str, effort: str, output: str | None, engine: str | None = None
) -> ExperimentResult:
    runner = EXPERIMENT_RUNNERS[experiment]
    started = time.time()
    if engine is None:
        result = runner(effort=effort)
    else:
        result = runner(effort=effort, engine=engine)
    elapsed = time.time() - started
    print(result.table())
    print(f"[{experiment}] completed in {elapsed:.1f}s ({result.metadata.get('preset')} preset)")
    print()
    if output is not None:
        saved = result.save(output)
        print(f"[{experiment}] results written to {saved}")
        print()
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment, efforts in sorted(list_presets().items()):
            print(f"{experiment}: {', '.join(efforts)}")
        return 0

    run_all = args.experiment == "all"
    experiments = sorted(EXPERIMENT_RUNNERS) if run_all else [args.experiment]
    for experiment in experiments:
        try:
            _run_one(experiment, args.effort, args.output, args.engine)
        except UnsupportedEngineError as exc:
            if run_all and args.engine is not None:
                # `all` with an explicit engine skips the experiments that
                # only support another engine instead of aborting the sweep.
                print(f"[{experiment}] skipped: {exc}")
                print()
                continue
            print(f"repro-experiments: error: {exc}", file=sys.stderr)
            return 2
        except ConfigurationError as exc:
            print(f"repro-experiments: error: {exc}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main())
