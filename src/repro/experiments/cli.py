"""Command-line entry point: ``repro-experiments``.

The CLI is a thin shell over the scenario registry
(:mod:`repro.scenarios`): every registered scenario — the paper's nine
figures/tables and the adversarial catalog — can be listed, run, and swept
over parameter grids::

    repro-experiments list
    repro-experiments run fig4 --effort quick --output results/
    repro-experiments run all --effort quick
    repro-experiments run oscillate --engine auto
    repro-experiments sweep fig4 --set keep=50,200 --set drop_time=300
    repro-experiments fuzz --seed 7 --count 25

The historical single-experiment invocations keep working as aliases
(``repro-experiments fig4 --effort quick`` is ``run fig4 ...``).

Engine/effort combinations are validated for *every* selected scenario
before any simulation starts, so a bad flag fails in milliseconds with a
one-line error instead of a traceback halfway through a sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.engine.checkpoint import CheckpointInterrupted
from repro.engine.errors import ConfigurationError, EngineError
from repro.engine.options import ExecutionOptions
from repro.engine.registry import engine_names
from repro.experiments.base import ExperimentResult
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.config import list_presets
from repro.experiments.convergence_table import run_convergence_table
from repro.experiments.fig2_size_estimate import run_fig2
from repro.experiments.fig3_relative_error import run_fig3
from repro.experiments.fig4_population_drop import run_fig4
from repro.experiments.fig5_initial_estimate import run_fig5
from repro.experiments.holding_table import run_holding_table
from repro.experiments.memory_table import run_memory_table
from repro.experiments.phase_clock_experiment import run_phase_clock_experiment
from repro.kernels import availability as kernels_availability
from repro.scenarios.registry import get_scenario, has_scenario, iter_scenarios, scenario_names
from repro.scenarios.runner import resolve_preset, run_scenario, run_sweep
from repro.scenarios.spec import SweepSpec

__all__ = ["main", "build_parser", "EXPERIMENT_RUNNERS"]

#: Legacy experiment id -> runner function (kept for programmatic users; the
#: CLI itself routes everything through the scenario registry).
EXPERIMENT_RUNNERS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "convergence": run_convergence_table,
    "holding": run_holding_table,
    "memory": run_memory_table,
    "phase_clock": run_phase_clock_experiment,
    "baseline": run_baseline_comparison,
}

_COMMANDS = ("run", "list", "sweep", "fuzz")


def _parse_workers(text: str) -> int | str:
    """argparse type for ``--workers``: a positive integer or ``auto``."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"workers must be at least 1, got {value}")
    return value


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--effort",
        default="quick",
        choices=("quick", "default", "paper"),
        help="Preset size: quick (seconds), default (minutes), paper (original scale).",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="Directory to persist CSV/JSON results into (omit to only print).",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=engine_names() + ("auto",),
        help=(
            "Execution engine (one of: "
            + ", ".join(engine_names())
            + ") or 'auto' to pick the best engine per workload; omit to use "
            "each scenario's default."
        ),
    )
    parser.add_argument(
        "--workers",
        default=None,
        type=_parse_workers,
        metavar="N|auto",
        help=(
            "Shard trials (and sweep points) over this many worker processes; "
            "'auto' uses the CPU count (capped).  Results are bit-identical "
            "for any worker count; omit for the serial path."
        ),
    )
    parser.add_argument(
        "--jit",
        action="store_true",
        help=(
            "Use the compiled (numba) kernels on engines that support them; "
            "falls back to the NumPy reference kernels when numba is not "
            "installed or REPRO_DISABLE_JIT is set (see `list` for the "
            "current availability)."
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        default=None,
        type=int,
        metavar="T",
        help=(
            "Checkpoint long runs every T parallel time units (a multiple of "
            "the snapshot cadence); requires --checkpoint-dir or --resume-from."
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "Directory for crash-recovery checkpoints (one subdirectory per "
            "scenario/point); defaults to --resume-from when resuming."
        ),
    )
    parser.add_argument(
        "--resume-from",
        default=None,
        metavar="DIR",
        help=(
            "Resume an interrupted run from the checkpoints in DIR; the "
            "resumed run is bit-identical to an uninterrupted one.  The "
            "checkpoint cadence is recovered from the run's own manifests."
        ),
    )
    parser.add_argument(
        "--interrupt-after",
        default=None,
        type=int,
        metavar="N",
        help=(
            "Fault-injection testing knob: abort (exit code 3) after the N-th "
            "checkpoint write per shard, leaving valid checkpoints on disk "
            "for --resume-from."
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Run registered scenarios of 'Dynamic Size Counting in the "
            "Population Protocol Model' (Kaaser & Lohmann, PODC 2024): the "
            "paper's figures/tables plus adversarial workloads beyond them."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="Run one or more scenarios ('all' runs every registered scenario)."
    )
    run_parser.add_argument(
        "scenarios",
        nargs="+",
        metavar="scenario",
        help="Scenario name(s) from `repro-experiments list`, or 'all'.",
    )
    _add_common_arguments(run_parser)

    list_parser = subparsers.add_parser(
        "list", help="List registered scenarios, their presets and engines."
    )
    list_parser.add_argument(
        "--tag", default=None, help="Only show scenarios carrying this tag."
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "Machine-readable output: one JSON record per scenario (the same "
            "formatter that backs the serving layer's GET /scenarios)."
        ),
    )

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help=(
            "Generate random valid scenarios and assert cross-engine "
            "statistical conformance on each (seeded, deterministic)."
        ),
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="Base seed; the same seed reproduces the same cases."
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=25, help="Number of generated scenarios (default 25)."
    )
    fuzz_parser.add_argument(
        "--trials",
        type=int,
        default=16,
        metavar="N",
        help="Per-engine repetitions feeding each two-sample KS test (default 16).",
    )
    fuzz_parser.add_argument(
        "--engines",
        default=None,
        metavar="A,B[,...]",
        help="Comma-separated engines to compare (default: batched,ensemble,counts).",
    )
    fuzz_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_only",
        help="Only print the generated cases (name, family, workload, cache key); no simulation.",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="Run a scenario over a parameter grid."
    )
    sweep_parser.add_argument("scenario", help="Scenario name to sweep.")
    sweep_parser.add_argument(
        "--set",
        dest="axes",
        action="append",
        required=True,
        metavar="KEY=V1[,V2,...]",
        help=(
            "Sweep axis: a preset field (n, trials, parallel_time, seed), a "
            "protocol constant (tau1, k, ...), or a workload knob (keep, "
            "drop_time, period, ...).  Repeat for a grid."
        ),
    )
    _add_common_arguments(sweep_parser)

    return parser


def _normalize_argv(argv: list[str]) -> list[str]:
    """Map the historical ``repro-experiments <name>`` form onto ``run <name>``."""
    if argv and not argv[0].startswith("-") and argv[0] not in _COMMANDS:
        return ["run"] + argv
    return argv


def _parse_axis_value(text: str) -> Any:
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def _parse_axes(entries: list[str]) -> dict[str, tuple[Any, ...]]:
    axes: dict[str, tuple[Any, ...]] = {}
    for entry in entries:
        key, separator, values = entry.partition("=")
        if not separator or not key or not values:
            raise ConfigurationError(
                f"invalid --set {entry!r}; expected KEY=V1[,V2,...]"
            )
        if key in axes:
            raise ConfigurationError(
                f"duplicate --set key {key!r}; list all values in one axis "
                f"(--set {key}=V1,V2,...)"
            )
        axes[key] = tuple(_parse_axis_value(value) for value in values.split(","))
    return axes


def _fail(message: str) -> int:
    print(f"repro-experiments: error: {message}", file=sys.stderr)
    return 2


def _checkpoint_subdir(root: str | None, name: str) -> str | None:
    """Per-scenario checkpoint directory (so `run a b` never mixes files)."""
    return None if root is None else str(Path(root) / name)


def _interrupted(name: str, exc: CheckpointInterrupted) -> int:
    print(
        f"[{name}] run interrupted after a checkpoint write ({exc}); "
        "continue it with --resume-from",
        file=sys.stderr,
    )
    return 3


def _shard_timing_lines(name: str, result: ExperimentResult) -> list[str]:
    """Per-point shard timing summary of one sharded run (empty if serial)."""
    timings = result.metadata.get("shard_timings")
    if not timings:
        return []
    workers = result.metadata.get("workers")
    lines = []
    for label, shards in timings.items():
        total = sum(entry["seconds"] for entry in shards)
        slowest = max(entry["seconds"] for entry in shards)
        lines.append(
            f"[{name}] {label}: {len(shards)} shard(s) x "
            f"{max(entry['trials'] for entry in shards)} trial(s), "
            f"slowest {slowest:.2f}s, shard-seconds {total:.2f}s "
            f"(workers={workers})"
        )
    return lines


def _print_result(
    name: str, result: ExperimentResult, elapsed: float | None, output: str | None
) -> None:
    print(result.table())
    for line in _shard_timing_lines(name, result):
        print(line)
    if elapsed is not None:
        print(f"[{name}] completed in {elapsed:.1f}s ({result.metadata.get('preset')} preset)")
        print()
    if output is not None:
        saved = result.save(output)
        print(f"[{name}] results written to {saved}")
        print()


def _cmd_list(args: argparse.Namespace) -> int:
    if args.json:
        # Shared with GET /scenarios: one formatter, two transports.
        from repro.scenarios.listing import scenario_listing

        print(json.dumps(scenario_listing(tag=args.tag), indent=2, sort_keys=True))
        return 0
    status = kernels_availability()
    jit_line = (
        f"compiled kernels: available ({status.reason})"
        if status.enabled
        else f"compiled kernels: fallback to NumPy ({status.reason})"
    )
    print(jit_line)
    print()
    efforts = list_presets()
    for spec in iter_scenarios():
        if args.tag is not None and args.tag not in spec.tags:
            continue
        available = ", ".join(efforts.get(spec.id, []))
        engine = spec.engine if spec.engine is not None else "auto"
        tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
        sharding = "trial-shards" if spec.executor is None else "serial-only"
        schedule = f"  schedule: {spec.schedule_kind}" if spec.schedule_kind else ""
        print(f"{spec.name}: {spec.description}{tags}")
        print(
            f"    efforts: {available or '(custom preset required)'}  "
            f"engine: {engine}  workers: {sharding}{schedule}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    run_all = "all" in args.scenarios
    selected: list[str] = []
    for name in args.scenarios:
        names = scenario_names() if name == "all" else [name]
        for candidate in names:
            if not has_scenario(candidate):
                return _fail(
                    f"unknown scenario {candidate!r}; available: "
                    f"{', '.join(scenario_names())} (or 'all')"
                )
            if candidate not in selected:
                selected.append(candidate)

    # Validate every effort/engine combination before any simulation starts.
    skipped: dict[str, str] = {}
    for name in selected:
        spec = get_scenario(name)
        try:
            resolve_preset(spec, args.effort)
        except ConfigurationError as exc:
            return _fail(str(exc))
        if (
            args.engine is not None
            and args.engine != "auto"
            and not spec.supports_engine(args.engine)
        ):
            reason = (
                f"scenario {name!r} supports engine(s) {', '.join(spec.engines)}, "
                f"got {args.engine!r}"
            )
            if run_all:
                # `all` with an explicit engine skips the scenarios that only
                # support another engine instead of aborting the sweep.
                skipped[name] = reason
            else:
                return _fail(reason)

    for name in selected:
        if name in skipped:
            print(f"[{name}] skipped: {skipped[name]}")
            print()
            continue
        started = time.time()
        try:
            result = run_scenario(
                name,
                options=ExecutionOptions(
                    effort=args.effort,
                    engine=args.engine,
                    workers=args.workers,
                    jit=args.jit,
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_dir=_checkpoint_subdir(args.checkpoint_dir, name),
                    resume_from=_checkpoint_subdir(args.resume_from, name),
                    interrupt_after=args.interrupt_after,
                ),
            )
        except CheckpointInterrupted as exc:
            return _interrupted(name, exc)
        except EngineError as exc:
            # Covers misconfiguration and invalid schedules alike: every
            # engine-level failure surfaces as a one-line error, not a
            # traceback.
            return _fail(str(exc))
        _print_result(name, result, time.time() - started, args.output)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if not has_scenario(args.scenario):
        return _fail(
            f"unknown scenario {args.scenario!r}; available: "
            f"{', '.join(scenario_names())}"
        )
    spec = get_scenario(args.scenario)
    try:
        resolve_preset(spec, args.effort)
        axes = _parse_axes(args.axes)
        sweep = SweepSpec.from_mapping(args.scenario, axes)
        combos = len(sweep.combinations())
        print(f"[sweep] {args.scenario}: {combos} combination(s)")
        print()
        started = time.time()
        results = run_sweep(
            sweep,
            options=ExecutionOptions(
                effort=args.effort,
                engine=args.engine,
                workers=args.workers,
                jit=args.jit,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=_checkpoint_subdir(args.checkpoint_dir, args.scenario),
                resume_from=_checkpoint_subdir(args.resume_from, args.scenario),
                interrupt_after=args.interrupt_after,
            ),
        )
    except CheckpointInterrupted as exc:
        return _interrupted(args.scenario, exc)
    except EngineError as exc:
        return _fail(str(exc))
    for label, result in results:
        print(f"=== {args.scenario} @ {label} ===")
        if "sweep_seconds" in result.metadata:
            print(
                f"[{args.scenario} @ {label}] point ran in "
                f"{result.metadata['sweep_seconds']:.2f}s "
                f"(workers={result.metadata.get('workers')})"
            )
        output = (
            str(Path(args.output) / label.replace(",", "__"))
            if args.output is not None
            else None
        )
        _print_result(f"{args.scenario} @ {label}", result, None, output)
        print()
    print(f"[sweep] {args.scenario} finished in {time.time() - started:.1f}s")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.scenarios.fuzz import DEFAULT_ENGINES, check_conformance, generate_cases

    if args.count < 1:
        return _fail(f"--count must be at least 1, got {args.count}")
    engines = (
        tuple(e.strip() for e in args.engines.split(",") if e.strip())
        if args.engines is not None
        else DEFAULT_ENGINES
    )
    for engine in engines:
        if engine not in engine_names():
            return _fail(
                f"unknown engine {engine!r}; available: {', '.join(engine_names())}"
            )
    cases = generate_cases(args.seed, args.count)
    if args.list_only:
        for case in cases:
            print(
                f"{case.name}: {case.family}  n={case.n} horizon={case.horizon} "
                f"events={len(case.schedule)}  key={case.cache_key()[:16]}"
            )
        return 0
    started = time.time()
    failures = 0
    for case in cases:
        report = check_conformance(case, engines=engines, trials=args.trials)
        verdict = "ok" if report.ok else "FAIL"
        print(
            f"[{case.name}] {case.family}  n={case.n} horizon={case.horizon}  {verdict}"
        )
        for pair in report.failures():
            failures += 1
            print(
                f"    {pair.engine_a} vs {pair.engine_b} on {pair.statistic}: "
                f"KS={pair.ks:.4f} > critical={pair.critical:.4f}",
                file=sys.stderr,
            )
    elapsed = time.time() - started
    print(
        f"[fuzz] seed={args.seed}: {len(cases)} case(s), "
        f"{len(cases) * len(engines)} engine runs, "
        f"{failures} conformance failure(s) in {elapsed:.1f}s"
    )
    return 0 if failures == 0 else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(_normalize_argv(list(sys.argv[1:] if argv is None else argv)))
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_sweep(args)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main())
