"""Experiment harness: one module per figure/table of the paper's evaluation."""

from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.config import PRESETS, get_preset, list_presets
from repro.experiments.convergence_table import run_convergence_table
from repro.experiments.fig2_size_estimate import run_fig2
from repro.experiments.fig3_relative_error import run_fig3
from repro.experiments.fig4_population_drop import run_fig4
from repro.experiments.fig5_initial_estimate import run_fig5
from repro.experiments.figures import EstimateTrace, run_estimate_trace
from repro.experiments.holding_table import run_holding_table
from repro.experiments.memory_table import run_memory_table
from repro.experiments.phase_clock_experiment import run_phase_clock_experiment

__all__ = [
    "EstimateTrace",
    "ExperimentPreset",
    "ExperimentResult",
    "PRESETS",
    "get_preset",
    "list_presets",
    "run_baseline_comparison",
    "run_convergence_table",
    "run_estimate_trace",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_holding_table",
    "run_memory_table",
    "run_phase_clock_experiment",
]
