"""Theorem 2.1 (space) — per-agent memory, ours vs the Doty–Eftekhari baseline.

The paper's headline improvement is space: ``O(log s + log log n)`` bits per
agent instead of the baseline's ``O(log^2 s + log n log log n)`` bits (or
``O(log^2 s + (log log n)^2)`` in the optimised variant).  This scenario
runs both protocols on the exact sequential engine, records the peak and
steady-state per-agent footprint in bits with
:class:`repro.engine.recorder.MemoryRecorder`, and reports them side by side
together with the ``log s + log log n`` reference — regenerating the
space-complexity comparison of Section 2.2 as a measured table.

Declared as the registered scenario ``"memory"``.  Only the exact sequential
engine is supported: the per-agent memory accounting reads
:meth:`repro.engine.protocol.Protocol.memory_bits` of every state object,
which the struct-of-arrays engines do not carry — so the spec provides a
bespoke executor instead of trace metrics.
"""

from __future__ import annotations

import math

from repro.analysis.memory import summarize_memory
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.recorder import MemoryRecorder
from repro.engine.rng import RandomSource, spawn_streams
from repro.engine.simulator import Simulator
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.protocols.doty_eftekhari import DotyEftekhariCounting
from repro.scenarios.registry import register
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_memory_table", "measure_protocol_memory", "MEMORY"]


def measure_protocol_memory(
    protocol, n: int, parallel_time: int, trials: int, seed: int
) -> tuple[float, float]:
    """Run ``trials`` simulations and return (mean peak bits, mean steady-state bits)."""
    peaks: list[float] = []
    steadies: list[float] = []
    for generator in spawn_streams(seed, trials):
        rng = RandomSource(generator)
        recorder = MemoryRecorder()
        simulator = Simulator(
            protocol, n, rng=rng, recorders=[recorder], snapshot_stats=False
        )
        simulator.run(parallel_time)
        summary = summarize_memory(recorder.rows, n)
        peaks.append(summary.peak_bits)
        steadies.append(summary.steady_state_bits)
    return sum(peaks) / len(peaks), sum(steadies) / len(steadies)


def _execute(spec, preset, params, engine) -> ExperimentResult:
    rows: list[dict[str, float]] = []

    for n in preset.population_sizes:
        log_n = math.log2(n)
        reference = math.log2(max(2.0, log_n))

        ours_peak, ours_steady = measure_protocol_memory(
            DynamicSizeCounting(params), n, preset.parallel_time, preset.trials, preset.seed + n
        )
        baseline_peak, baseline_steady = measure_protocol_memory(
            DotyEftekhariCounting(), n, preset.parallel_time, preset.trials, preset.seed + n + 1
        )
        rows.append(
            {
                "n": n,
                "log2_n": log_n,
                "log2_log2_n": reference,
                "ours_peak_bits": ours_peak,
                "ours_steady_bits": ours_steady,
                "doty_eftekhari_peak_bits": baseline_peak,
                "doty_eftekhari_steady_bits": baseline_steady,
                "baseline_over_ours": (
                    baseline_steady / ours_steady if ours_steady > 0 else float("nan")
                ),
                "trials": preset.trials,
            }
        )

    return ExperimentResult(
        experiment=spec.id,
        description=spec.description_for(preset),
        rows=rows,
        metadata={
            "preset": preset.name,
            "params": params.describe(),
            "engine": "sequential",
            "scenario": spec.name,
        },
    )


MEMORY = register(
    ScenarioSpec(
        name="memory",
        description="Per-agent memory in bits: our protocol vs the Doty-Eftekhari baseline",
        executor=_execute,
        engines=("sequential",),
        engine="sequential",
        tags=("paper", "baseline"),
    )
)


def run_memory_table(
    preset: ExperimentPreset | None = None,
    *,
    effort: str = "quick",
    engine: str = "sequential",
) -> ExperimentResult:
    """Regenerate the space-complexity comparison (ours vs Doty–Eftekhari)."""
    return run_scenario(MEMORY, effort=effort, preset=preset, engine=engine)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    print(run_memory_table(effort="quick").table())
