"""Module entry point: ``python -m repro.bench``."""

from __future__ import annotations

import sys

from repro.bench.cli import main

sys.exit(main())
