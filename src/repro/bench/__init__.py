"""Unified benchmark subsystem: specs, runner, suites, comparison, reports.

``repro.bench`` turns benchmarking from a pile of per-file pytest scripts
into a first-class subsystem layered on the scenario registry
(:mod:`repro.scenarios`):

* :class:`~repro.bench.spec.BenchSpec` — a frozen benchmark case
  (scenario x engine x workers x effort); :func:`~repro.bench.spec.default_grid`
  derives the full grid from the registry, so every newly registered
  scenario is benchable (and benchmarked) for free.
* :func:`~repro.bench.runner.run_suite` — executes a grid with
  warmup/repeat control and produces a normalized, schema-versioned
  :class:`~repro.bench.suite.BenchSuite` (per-case median/min wall time,
  interactions/sec throughput, machine + git metadata, and a calibration
  measurement that lets suites from different machines be compared).
* :func:`~repro.bench.compare.compare_suites` — diffs two suites and
  classifies every case as regression / improvement / neutral under a
  configurable threshold with noise tolerance.
* :mod:`repro.bench.report` — markdown summary tables for runs and
  comparisons (used by the CI job summary).
* ``python -m repro.bench`` — the CLI over all of it (``run`` /
  ``compare`` / ``report``); CI gates every PR with
  ``repro.bench compare --fail-on-regression 25%`` against the committed
  ``benchmarks/BENCH_baseline.json``.
"""

from __future__ import annotations

from repro.bench.compare import CaseComparison, SuiteComparison, compare_suites
from repro.bench.report import markdown_comparison, markdown_report
from repro.bench.runner import run_case, run_suite
from repro.bench.spec import BenchSpec, default_grid
from repro.bench.suite import (
    SCHEMA_VERSION,
    BenchSuite,
    CaseResult,
    SchemaVersionError,
    load_suite,
)
from repro.bench.timing import Timing, calibration_seconds, measure

__all__ = [
    "SCHEMA_VERSION",
    "BenchSpec",
    "BenchSuite",
    "CaseComparison",
    "CaseResult",
    "SchemaVersionError",
    "SuiteComparison",
    "Timing",
    "calibration_seconds",
    "compare_suites",
    "default_grid",
    "load_suite",
    "markdown_comparison",
    "markdown_report",
    "measure",
    "run_case",
    "run_suite",
]
