"""Grid execution: turn :class:`BenchSpec`s into a :class:`BenchSuite`.

Every case runs through the same scenario machinery production code uses
(:func:`repro.scenarios.runner.run_scenario`), so a benchmark measures the
real end-to-end path — engine selection, sharding, metric extraction — not
a stripped-down re-implementation that can drift from it.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.bench.spec import BenchSpec, nominal_work
from repro.bench.suite import BenchSuite, CaseResult
from repro.bench.timing import calibration_seconds, measure
from repro.engine.errors import ConfigurationError
from repro.kernels import availability, compile_warmup
from repro.scenarios.runner import run_scenario

__all__ = ["run_case", "run_suite"]


def run_case(spec: BenchSpec, *, warmup: int = 1, repeats: int = 3) -> CaseResult:
    """Execute one benchmark case and return its measured result.

    A ``jit`` case gets :func:`repro.kernels.compile_warmup` as the one-shot
    ``warmup_fn`` (when the compiled backend is available), so first-call
    numba compilation lands in ``compile_seconds`` instead of a sample.
    """
    work = nominal_work(spec)

    def workload() -> None:
        run_scenario(
            spec.scenario,
            effort=spec.effort,
            engine=spec.engine,
            workers=spec.workers,
            jit=spec.jit,
        )

    warmup_fn = None
    if spec.jit and availability().enabled:
        warmup_fn = compile_warmup

    timing = measure(workload, warmup=warmup, repeats=repeats, warmup_fn=warmup_fn)
    return CaseResult(
        case_id=spec.case_id,
        scenario=spec.scenario,
        engine=spec.engine,
        workers=spec.workers,
        effort=spec.effort,
        seconds=timing.seconds,
        work_interactions=work,
        compile_seconds=timing.compile_seconds,
    )


def run_suite(
    specs: Sequence[BenchSpec],
    *,
    warmup: int = 1,
    repeats: int = 3,
    calibrate: bool = True,
    progress: Callable[[str], None] | None = None,
) -> BenchSuite:
    """Execute a grid of cases and assemble the normalized suite.

    ``progress`` (e.g. ``print``) receives one line per case as it
    completes; the grid itself runs serially so that cases never contend
    with each other for cores — the sharded-execution cases need the
    machine to themselves to measure anything meaningful.
    """
    if not specs:
        raise ConfigurationError("a benchmark suite needs at least one case")
    seen: set[str] = set()
    for spec in specs:
        # Checked up front: the suite would reject duplicates anyway, but
        # only after the whole (multi-minute) grid has already executed.
        if spec.case_id in seen:
            raise ConfigurationError(f"duplicate benchmark case {spec.case_id!r}")
        seen.add(spec.case_id)
    efforts = {spec.effort for spec in specs}
    effort = efforts.pop() if len(efforts) == 1 else "mixed"
    calibration = calibration_seconds() if calibrate else None
    cases = []
    for spec in specs:
        result = run_case(spec, warmup=warmup, repeats=repeats)
        cases.append(result)
        if progress is not None:
            progress(
                f"{result.case_id}: median {result.median_seconds:.3f}s "
                f"min {result.min_seconds:.3f}s "
                f"({result.interactions_per_second / 1e6:.2f}M inter/s)"
            )
    return BenchSuite(
        cases=tuple(cases),
        effort=effort,
        warmup=warmup,
        repeats=repeats,
        calibration_seconds=calibration,
    )
