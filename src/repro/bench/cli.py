"""``python -m repro.bench`` — run, compare and report benchmark suites.

::

    python -m repro.bench run --effort quick --output BENCH_suite.json
    python -m repro.bench compare benchmarks/BENCH_baseline.json BENCH_suite.json \
        --fail-on-regression 25%
    python -m repro.bench report BENCH_suite.json --baseline benchmarks/BENCH_baseline.json

``run`` executes the registry-derived grid and writes one normalized suite
file.  ``compare`` diffs two suite files; with ``--fail-on-regression PCT``
it exits ``1`` when any case regressed beyond the threshold — the CI perf
gate.  ``report`` prints the markdown summary (optionally with the verdict
table against a baseline) for ``$GITHUB_STEP_SUMMARY``.

Exit codes: ``0`` success / no gated regression, ``1`` gated regression,
``2`` usage or input error.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.compare import (
    DEFAULT_NOISE_FLOOR_SECONDS,
    DEFAULT_THRESHOLD,
    compare_files,
    parse_threshold,
)
from repro.bench.report import markdown_comparison, markdown_report
from repro.bench.runner import run_suite
from repro.bench.spec import EFFORTS, default_grid
from repro.bench.suite import load_suite
from repro.engine.errors import EngineError

__all__ = ["main", "build_parser"]


def _threshold(text: str) -> float:
    try:
        return parse_threshold(text)
    except EngineError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark suites over the scenario registry: run, compare, report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="Execute the benchmark grid and write a suite JSON."
    )
    run_parser.add_argument(
        "--effort",
        default="quick",
        choices=EFFORTS,
        help="Preset effort level every case runs at (default: quick).",
    )
    run_parser.add_argument(
        "--scenarios",
        default=None,
        metavar="NAME[,NAME...]",
        help="Restrict the grid to these scenarios (default: every registered one).",
    )
    run_parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="Unmeasured warmup runs per case (default: 1).",
    )
    run_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="Measured runs per case (default: 3).",
    )
    run_parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="Skip the machine-calibration measurement.",
    )
    run_parser.add_argument(
        "--output",
        default="BENCH_suite.json",
        help="Suite file to write (default: BENCH_suite.json).",
    )

    compare_parser = sub.add_parser(
        "compare", help="Diff two suite files and print the verdict table."
    )
    compare_parser.add_argument("baseline", help="Baseline suite JSON.")
    compare_parser.add_argument("current", help="Current suite JSON.")
    compare_parser.add_argument(
        "--fail-on-regression",
        default=None,
        metavar="PCT",
        type=_threshold,
        help=(
            "Gate: exit 1 if any case is at least this much slower than the "
            "baseline (e.g. '25%%'); omit to report without gating."
        ),
    )
    compare_parser.add_argument(
        "--threshold",
        default=None,
        metavar="PCT",
        type=_threshold,
        help=(
            "Classification threshold when not gating (default: "
            f"{DEFAULT_THRESHOLD * 100:.0f}%%)."
        ),
    )
    compare_parser.add_argument(
        "--noise-floor",
        default=DEFAULT_NOISE_FLOOR_SECONDS,
        type=float,
        metavar="SECONDS",
        help=(
            "Cases faster than this on both sides are always neutral "
            f"(default: {DEFAULT_NOISE_FLOOR_SECONDS}s)."
        ),
    )
    compare_parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="Do not rescale the baseline by the suites' calibration ratio.",
    )

    report_parser = sub.add_parser(
        "report", help="Print the markdown summary of a suite file."
    )
    report_parser.add_argument("suite", help="Suite JSON to summarize.")
    report_parser.add_argument(
        "--baseline",
        default=None,
        help="Also print the verdict table against this baseline suite.",
    )
    report_parser.add_argument(
        "--threshold",
        default=None,
        metavar="PCT",
        type=_threshold,
        help=f"Verdict threshold (default: {DEFAULT_THRESHOLD * 100:.0f}%%).",
    )
    report_parser.add_argument(
        "--noise-floor",
        default=DEFAULT_NOISE_FLOOR_SECONDS,
        type=float,
        metavar="SECONDS",
        help="Noise floor for the verdict table.",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    scenarios = None
    if args.scenarios:
        scenarios = [name for name in args.scenarios.split(",") if name]
    specs = default_grid(args.effort, scenarios=scenarios)
    print(
        f"[repro.bench] running {len(specs)} case(s) at effort "
        f"{args.effort!r} (warmup={args.warmup}, repeats={args.repeats})",
        file=sys.stderr,
    )
    suite = run_suite(
        specs,
        warmup=args.warmup,
        repeats=args.repeats,
        calibrate=not args.no_calibrate,
        progress=lambda line: print(f"[repro.bench] {line}", file=sys.stderr),
    )
    path = suite.save(args.output)
    print(markdown_report(suite))
    print(f"[repro.bench] suite written to {path}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    gating = args.fail_on_regression is not None
    threshold = (
        args.fail_on_regression
        if gating
        else (args.threshold if args.threshold is not None else DEFAULT_THRESHOLD)
    )
    comparison = compare_files(
        args.baseline,
        args.current,
        threshold=threshold,
        noise_floor_seconds=args.noise_floor,
        calibrate=not args.no_calibrate,
    )
    print(markdown_comparison(comparison))
    if gating and comparison.has_regressions:
        print(
            f"[repro.bench] FAIL: {len(comparison.regressions)} case(s) "
            f"regressed beyond {threshold * 100:.0f}% vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"[repro.bench] {comparison.summary()}", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    suite = load_suite(args.suite)
    print(markdown_report(suite))
    if args.baseline is not None:
        comparison = compare_files(
            args.baseline,
            args.suite,
            threshold=args.threshold if args.threshold is not None else DEFAULT_THRESHOLD,
            noise_floor_seconds=args.noise_floor,
        )
        print(markdown_comparison(comparison, title="vs committed baseline"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    handlers = {"run": _cmd_run, "compare": _cmd_compare, "report": _cmd_report}
    try:
        return handlers[args.command](args)
    except EngineError as exc:
        print(f"repro.bench: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
