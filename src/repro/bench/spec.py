"""Frozen benchmark case specifications and the registry-derived grid.

A :class:`BenchSpec` pins everything one benchmark case needs — a
registered scenario, the engine to force (or the scenario's default), a
worker count for the sharded execution layer, and the effort preset — as
frozen data, so a case is serializable, hashable, and identified by a
stable :attr:`~BenchSpec.case_id` that two suites can be joined on.

:func:`default_grid` derives the benchmark grid from the scenario registry
itself: one case per registered scenario at its default engine, plus
engine- and worker-axis cases for the designated workhorse scenarios.
Because the grid is *derived* rather than enumerated, registering a new
scenario makes it benchmarked (and therefore regression-gated in CI) for
free — no benchmark-side change required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.errors import ConfigurationError
from repro.engine.registry import engine_names
from repro.scenarios.registry import get_scenario, iter_scenarios
from repro.scenarios.runner import resolve_params, resolve_preset

__all__ = ["EFFORTS", "BenchSpec", "default_grid", "nominal_work"]

#: Effort presets a benchmark case may target.
EFFORTS = ("quick", "default", "paper")

#: Scenarios that additionally get one case per listed engine.  ``fig3`` is
#: the canonical speedup workload of this repository (population sweep x
#: trials), so its engine axis tracks the stacked-ensemble win PR over PR
#: and, since the counts engine landed, the count-vector path as well.
#: ``fig2`` tracks the counts engine on the single-trace workload.
ENGINE_AXIS: dict[str, tuple[str, ...]] = {
    "fig3": ("ensemble", "counts"),
    "fig2": ("counts",),
}

#: Scenarios that additionally get one case per listed worker count,
#: tracking the sharded execution layer's overhead/scaling.
WORKER_AXIS: dict[str, tuple[int, ...]] = {"fig3": (2,)}

#: Scenarios that additionally get one ``jit=True`` case per listed engine,
#: tracking the compiled kernel backend on the loop-bound workhorse.  On
#: machines without numba these cases measure the (logged) NumPy fallback —
#: honest numbers, and the case ids stay stable across environments.
JIT_AXIS: dict[str, tuple[str, ...]] = {"fig3": ("batched", "ensemble")}


@dataclass(frozen=True)
class BenchSpec:
    """One benchmark case: scenario x engine x workers x effort.

    Attributes
    ----------
    scenario:
        Name of a registered scenario (:mod:`repro.scenarios.registry`).
    engine:
        Engine to force for the run; ``None`` (default) uses the
        scenario's own default, ``"auto"`` forces per-point auto-selection.
    workers:
        Worker processes for the sharded execution layer; ``None`` keeps
        the serial path.
    effort:
        Preset effort level the scenario runs at.
    jit:
        Request the compiled kernel backend (:mod:`repro.kernels`) for the
        run.  Best effort by design: without numba the case measures the
        NumPy fallback, keeping the grid identical on every machine.
    """

    scenario: str
    engine: str | None = None
    workers: int | None = None
    effort: str = "quick"
    jit: bool = False

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ConfigurationError("bench spec needs a scenario name")
        known = self.engine is None or self.engine == "auto" or self.engine in engine_names()
        if not known:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; available: "
                f"{', '.join(engine_names())} (or 'auto')"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.effort not in EFFORTS:
            raise ConfigurationError(
                f"unknown effort {self.effort!r}; available: {', '.join(EFFORTS)}"
            )

    @property
    def case_id(self) -> str:
        """Stable identifier two suites join on, e.g. ``fig3[engine=ensemble]@quick``.

        Only non-default axes appear, so the id of the common case stays
        short (``fig3@quick``) and adding a new axis later cannot silently
        rename existing cases.
        """
        axes = []
        if self.engine is not None:
            axes.append(f"engine={self.engine}")
        if self.workers is not None:
            axes.append(f"workers={self.workers}")
        if self.jit:
            # Appended last so pre-jit case ids are byte-identical.
            axes.append("jit=on")
        middle = f"[{','.join(axes)}]" if axes else ""
        return f"{self.scenario}{middle}@{self.effort}"


def nominal_work(spec: BenchSpec) -> int:
    """Nominal interaction count of a case: sum over points of ``n * T * trials``.

    One parallel-time unit is ``n`` interactions, so this is the number of
    agent interactions the workload simulates if the adversary never
    resizes the population — a stable work denominator for
    interactions-per-second throughput that does not depend on which
    engine ran the case.
    """
    scenario = get_scenario(spec.scenario)
    preset = resolve_preset(scenario, spec.effort)
    if scenario.executor is None:
        params = resolve_params(scenario, preset)
        points = scenario.points(preset, params)
        return sum(p.n * p.parallel_time * p.trials for p in points)
    # Bespoke-executor scenarios (recorder workloads) don't expand points;
    # approximate from the preset's own knobs.
    return sum(
        n * preset.parallel_time * preset.trials for n in preset.population_sizes
    )


def _has_effort(scenario_name: str, effort: str) -> bool:
    try:
        resolve_preset(get_scenario(scenario_name), effort)
    except ConfigurationError:
        return False
    return True


def default_grid(
    effort: str = "quick", *, scenarios: Sequence[str] | None = None
) -> tuple[BenchSpec, ...]:
    """The registry-derived benchmark grid at one effort level.

    One case per registered scenario at its default engine, plus the
    :data:`ENGINE_AXIS` / :data:`WORKER_AXIS` / :data:`JIT_AXIS` cases for
    the scenarios that carry them.  ``scenarios`` restricts the grid to the named scenarios
    (unknown names raise, so a typo fails fast instead of silently
    benchmarking nothing).
    """
    if effort not in EFFORTS:
        raise ConfigurationError(
            f"unknown effort {effort!r}; available: {', '.join(EFFORTS)}"
        )
    explicit = scenarios is not None
    if explicit:
        selected: Iterable = [get_scenario(name) for name in scenarios]
    else:
        selected = iter_scenarios()

    grid: list[BenchSpec] = []
    for scenario in selected:
        if not _has_effort(scenario.name, effort):
            if explicit:
                # A named scenario must be benchable at the requested
                # effort; skipping it silently would fake coverage.
                raise ConfigurationError(
                    f"scenario {scenario.name!r} has no {effort!r} preset"
                )
            continue
        grid.append(BenchSpec(scenario=scenario.name, effort=effort))
        default_engine = scenario.engine
        for engine in ENGINE_AXIS.get(scenario.name, ()):
            if engine != default_engine and scenario.supports_engine(engine):
                grid.append(BenchSpec(scenario=scenario.name, engine=engine, effort=effort))
        for engine in JIT_AXIS.get(scenario.name, ()):
            # The engine is pinned explicitly (even when it is the
            # scenario default) so the case id names what it measures.
            if scenario.supports_engine(engine):
                grid.append(
                    BenchSpec(scenario=scenario.name, engine=engine, jit=True, effort=effort)
                )
        if scenario.executor is not None:
            continue  # bespoke executors always run serially
        for workers in WORKER_AXIS.get(scenario.name, ()):
            grid.append(BenchSpec(scenario=scenario.name, workers=workers, effort=effort))
    return tuple(grid)
