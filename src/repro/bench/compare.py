"""Suite-to-suite comparison with a regression/improvement/neutral verdict.

The classification is deliberately conservative — a *regression* verdict
can fail CI, so it must survive timing noise:

* the headline ratio compares **medians**, and a verdict additionally
  requires the **min-of-repeats** ratio (the least noisy statistic a small
  sample offers) to cross the same threshold in the same direction, so a
  single slow sample cannot flip a case;
* cases whose wall time is below the **noise floor** on both sides are
  always neutral — sub-hundredth-of-a-second cases measure scheduler
  jitter, not code;
* when both suites carry a calibration measurement, the baseline's times
  are rescaled by the calibration ratio first, so a baseline committed
  from a fast laptop doesn't read as a fleet-wide regression on a slower
  CI runner (and vice versa).

Cases present in only one suite are reported as ``added`` / ``removed``
and never gate — growing the grid must not fail the build that grows it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path

from repro.bench.suite import BenchSuite, load_suite
from repro.engine.errors import ConfigurationError

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_NOISE_FLOOR_SECONDS",
    "CaseComparison",
    "SuiteComparison",
    "compare_suites",
    "compare_files",
    "parse_threshold",
]

#: Default regression/improvement threshold: 25% (the CI gate's value).
DEFAULT_THRESHOLD = 0.25

#: Cases faster than this on both sides are always neutral.
DEFAULT_NOISE_FLOOR_SECONDS = 0.02

_STATUSES = ("regression", "improvement", "neutral", "added", "removed")


@dataclass(frozen=True)
class CaseComparison:
    """Verdict for one case id.

    ``baseline_seconds`` is the calibration-rescaled baseline median (the
    number the current median was actually judged against);
    ``baseline_raw_seconds`` keeps the value as recorded in the baseline
    file.  ``ratio`` is ``current / rescaled baseline`` (``None`` for
    one-sided cases).
    """

    case_id: str
    status: str
    baseline_seconds: float | None = None
    baseline_raw_seconds: float | None = None
    current_seconds: float | None = None
    ratio: float | None = None
    reason: str = ""

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ConfigurationError(
                f"unknown comparison status {self.status!r}; expected one of "
                f"{', '.join(_STATUSES)}"
            )


@dataclass(frozen=True)
class SuiteComparison:
    """All case verdicts of one baseline-vs-current comparison."""

    cases: tuple[CaseComparison, ...]
    threshold: float
    noise_floor_seconds: float
    calibration_scale: float

    def by_status(self, status: str) -> tuple[CaseComparison, ...]:
        return tuple(case for case in self.cases if case.status == status)

    @property
    def regressions(self) -> tuple[CaseComparison, ...]:
        return self.by_status("regression")

    @property
    def improvements(self) -> tuple[CaseComparison, ...]:
        return self.by_status("improvement")

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def counts(self) -> dict[str, int]:
        return {status: len(self.by_status(status)) for status in _STATUSES}

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{count} {status}" for status, count in counts.items() if count]
        return ", ".join(parts) if parts else "no cases"


def parse_threshold(text: str | float) -> float:
    """Parse a threshold: ``"25%"``, ``"25"`` and ``"0.25"`` all mean 25%."""
    if isinstance(text, (int, float)):
        value = float(text)
        if value >= 1.0:
            value /= 100.0
    else:
        stripped = text.strip()
        percent = stripped.endswith("%")
        try:
            value = float(stripped.rstrip("%"))
        except ValueError:
            raise ConfigurationError(
                f"invalid threshold {text!r}; expected e.g. '25%' or '0.25'"
            ) from None
        if percent:
            value /= 100.0
        elif value >= 1.0:
            value /= 100.0
    if not 0.0 < value < 1.0:
        raise ConfigurationError(
            f"threshold {text!r} is outside the sensible (0%, 100%) range"
        )
    return value


def _classify(
    case_id: str,
    baseline_median: float,
    baseline_min: float,
    current_median: float,
    current_min: float,
    *,
    threshold: float,
    noise_floor: float,
) -> CaseComparison:
    ratio = current_median / baseline_median if baseline_median > 0 else float("inf")
    common = {
        "case_id": case_id,
        "baseline_seconds": baseline_median,
        "current_seconds": current_median,
        "ratio": ratio,
    }
    if max(baseline_median, current_median) < noise_floor:
        return CaseComparison(
            status="neutral",
            reason=f"below the {noise_floor:.3f}s noise floor",
            **common,
        )
    min_ratio = current_min / baseline_min if baseline_min > 0 else float("inf")
    if ratio > 1.0 + threshold:
        if min_ratio > 1.0 + threshold:
            return CaseComparison(
                status="regression",
                reason=f"{(ratio - 1.0) * 100:.0f}% slower (min-of-repeats agrees)",
                **common,
            )
        return CaseComparison(
            status="neutral",
            reason="median crossed the threshold but min-of-repeats did not "
            "(likely a noisy sample)",
            **common,
        )
    if ratio < 1.0 - threshold:
        if min_ratio < 1.0 - threshold:
            return CaseComparison(
                status="improvement",
                reason=f"{(1.0 - ratio) * 100:.0f}% faster (min-of-repeats agrees)",
                **common,
            )
        return CaseComparison(
            status="neutral",
            reason="median crossed the threshold but min-of-repeats did not "
            "(likely a noisy sample)",
            **common,
        )
    return CaseComparison(status="neutral", reason="within threshold", **common)


def compare_suites(
    baseline: BenchSuite,
    current: BenchSuite,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_seconds: float = DEFAULT_NOISE_FLOOR_SECONDS,
    calibrate: bool = True,
) -> SuiteComparison:
    """Diff two suites case by case (see the module docstring for the rules)."""
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(
            f"threshold must be a fraction in (0, 1), got {threshold}"
        )
    scale = 1.0
    if (
        calibrate
        and baseline.calibration_seconds
        and current.calibration_seconds
        and baseline.calibration_seconds > 0
    ):
        scale = current.calibration_seconds / baseline.calibration_seconds

    baseline_cases = baseline.by_case_id()
    current_cases = current.by_case_id()
    comparisons: list[CaseComparison] = []
    for case_id in sorted(set(baseline_cases) | set(current_cases)):
        base = baseline_cases.get(case_id)
        cur = current_cases.get(case_id)
        if base is None:
            comparisons.append(
                CaseComparison(
                    case_id=case_id,
                    status="added",
                    current_seconds=cur.median_seconds,
                    reason="not in baseline",
                )
            )
            continue
        if cur is None:
            comparisons.append(
                CaseComparison(
                    case_id=case_id,
                    status="removed",
                    baseline_seconds=base.median_seconds * scale,
                    baseline_raw_seconds=base.median_seconds,
                    reason="not in current suite",
                )
            )
            continue
        verdict = _classify(
            case_id,
            base.median_seconds * scale,
            base.min_seconds * scale,
            cur.median_seconds,
            cur.min_seconds,
            threshold=threshold,
            noise_floor=noise_floor_seconds,
        )
        comparisons.append(
            dataclasses.replace(verdict, baseline_raw_seconds=base.median_seconds)
        )
    return SuiteComparison(
        cases=tuple(comparisons),
        threshold=threshold,
        noise_floor_seconds=noise_floor_seconds,
        calibration_scale=scale,
    )


def compare_files(
    baseline_path: str | Path,
    current_path: str | Path,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_seconds: float = DEFAULT_NOISE_FLOOR_SECONDS,
    calibrate: bool = True,
) -> SuiteComparison:
    """Load two suite files and compare them (schema-checked on load)."""
    return compare_suites(
        load_suite(baseline_path),
        load_suite(current_path),
        threshold=threshold,
        noise_floor_seconds=noise_floor_seconds,
        calibrate=calibrate,
    )
