"""Wall-clock measurement primitives shared by the whole subsystem.

:func:`measure` is the one way anything in this repository times a
workload: warmup runs that never count, ``repeats`` measured runs, and a
:class:`Timing` carrying every sample so that downstream consumers can use
the noise-robust statistics (median for the headline, min as the "best
achievable on this machine" floor) instead of a single noisy sample.

:func:`calibration_seconds` times a fixed synthetic workload — a mix of
NumPy array work and a pure-Python loop, mirroring the two regimes the
engines live in — so that every :class:`~repro.bench.suite.BenchSuite`
records how fast the machine that produced it actually is.  Comparing a
suite from CI against a baseline committed from a laptop then rescales by
the calibration ratio instead of pretending both machines run at the same
speed.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.engine.errors import ConfigurationError

__all__ = ["Timing", "measure", "calibration_seconds"]


@dataclass(frozen=True)
class Timing:
    """All measured samples of one workload, in execution order.

    ``compile_seconds`` is the wall time of the one-shot ``warmup_fn`` (the
    JIT compile pass), when :func:`measure` was given one — kept separate
    from the samples because it is a one-time cost that must never count
    toward the workload.
    """

    seconds: tuple[float, ...]
    compile_seconds: float | None = None

    def __post_init__(self) -> None:
        if not self.seconds:
            raise ConfigurationError("a Timing needs at least one measured sample")
        if any(s < 0 for s in self.seconds):
            raise ConfigurationError(f"negative wall-clock sample in {self.seconds}")
        if self.compile_seconds is not None and self.compile_seconds < 0:
            raise ConfigurationError(
                f"negative compile_seconds: {self.compile_seconds}"
            )

    @property
    def median(self) -> float:
        """Headline statistic: robust against one slow outlier sample."""
        return statistics.median(self.seconds)

    @property
    def minimum(self) -> float:
        """Best observed sample — the least noisy lower bound on cost."""
        return min(self.seconds)


def measure(
    fn: Callable[[], Any],
    *,
    warmup: int = 1,
    repeats: int = 3,
    warmup_fn: Callable[[], Any] | None = None,
) -> Timing:
    """Time ``fn`` with warmup/repeat control.

    ``warmup`` runs execute first and are discarded (they absorb import
    costs, allocator warmup and CPU frequency ramp); ``repeats`` runs are
    then measured with :func:`time.perf_counter`.

    ``warmup_fn`` runs once before everything else, and its wall time is
    recorded as :attr:`Timing.compile_seconds`.  It exists for backends
    with expensive one-time setup that must be surfaced rather than hidden
    in a discarded warmup run — the compiled kernels pass
    :func:`repro.kernels.compile_warmup` here so first-call JIT
    compilation never pollutes a measurement yet stays visible in the
    suite JSON.
    """
    if warmup < 0:
        raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    compile_seconds = None
    if warmup_fn is not None:
        started = time.perf_counter()
        warmup_fn()
        compile_seconds = time.perf_counter() - started
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return Timing(seconds=tuple(samples), compile_seconds=compile_seconds)


#: Sizes of the calibration workload.  Fixed forever: changing them changes
#: the meaning of ``calibration_seconds`` recorded in every existing suite.
_CALIBRATION_ARRAY = 400_000
_CALIBRATION_LOOP = 800_000


def _calibration_workload() -> float:
    """Deterministic mixed NumPy + pure-Python workload (~0.1s per run)."""
    rng = np.random.default_rng(20240508)
    acc = 0.0
    for _ in range(8):
        values = rng.random(_CALIBRATION_ARRAY)
        acc += float(np.sort(values)[:: _CALIBRATION_ARRAY // 100].sum())
    total = 0
    for i in range(_CALIBRATION_LOOP):
        total = (total + i * 2654435761) & 0xFFFFFFFF
    return acc + total


def calibration_seconds(*, warmup: int = 1, repeats: int = 3) -> float:
    """Median wall time of the fixed calibration workload on this machine."""
    return measure(_calibration_workload, warmup=warmup, repeats=repeats).median
