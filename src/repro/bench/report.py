"""Markdown summaries of suites and comparisons.

The tables are GitHub-flavored markdown so the CI job can append them to
``$GITHUB_STEP_SUMMARY`` — the per-case numbers are then visible on the
run page without downloading any artifact.
"""

from __future__ import annotations

from repro.bench.compare import SuiteComparison
from repro.bench.suite import BenchSuite

__all__ = ["markdown_report", "markdown_comparison"]

_VERDICT_MARKS = {
    "regression": "❌ regression",
    "improvement": "✅ improvement",
    "neutral": "· neutral",
    "added": "➕ added",
    "removed": "➖ removed",
}


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "—"
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.0f}ms"


def _fmt_throughput(interactions_per_second: float) -> str:
    if interactions_per_second <= 0:
        return "—"
    if interactions_per_second >= 1e6:
        return f"{interactions_per_second / 1e6:.1f}M/s"
    if interactions_per_second >= 1e3:
        return f"{interactions_per_second / 1e3:.1f}k/s"
    return f"{interactions_per_second:.0f}/s"


def markdown_report(suite: BenchSuite, *, title: str = "Benchmark suite") -> str:
    """Per-case table of one suite: wall times and nominal throughput."""
    lines = [
        f"### {title}",
        "",
        f"effort `{suite.effort}` · warmup {suite.warmup} · repeats "
        f"{suite.repeats} · {len(suite.cases)} case(s)"
        + (
            f" · calibration {_fmt_seconds(suite.calibration_seconds)}"
            if suite.calibration_seconds
            else ""
        ),
        "",
        "| case | median | min | interactions/s |",
        "| --- | ---: | ---: | ---: |",
    ]
    for case in suite.cases:
        lines.append(
            f"| `{case.case_id}` | {_fmt_seconds(case.median_seconds)} "
            f"| {_fmt_seconds(case.min_seconds)} "
            f"| {_fmt_throughput(case.interactions_per_second)} |"
        )
    commit = suite.git.get("commit")
    if commit:
        dirty = " (dirty)" if suite.git.get("dirty") else ""
        lines += ["", f"git `{commit[:12]}`{dirty} · {suite.machine.get('platform', '?')}"]
    return "\n".join(lines) + "\n"


def markdown_comparison(
    comparison: SuiteComparison, *, title: str = "Benchmark comparison"
) -> str:
    """Verdict table of one baseline-vs-current comparison."""
    lines = [
        f"### {title}",
        "",
        f"threshold ±{comparison.threshold * 100:.0f}% · noise floor "
        f"{_fmt_seconds(comparison.noise_floor_seconds)} · calibration scale "
        f"{comparison.calibration_scale:.2f}x · {comparison.summary()}",
        "",
        "| case | baseline | current | Δ | verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for case in comparison.cases:
        if case.ratio is None:
            delta = "—"
        else:
            delta = f"{(case.ratio - 1.0) * 100:+.0f}%"
        lines.append(
            f"| `{case.case_id}` | {_fmt_seconds(case.baseline_seconds)} "
            f"| {_fmt_seconds(case.current_seconds)} | {delta} "
            f"| {_VERDICT_MARKS[case.status]} |"
        )
    if comparison.has_regressions:
        lines += [
            "",
            "**Regressions detected:** "
            + ", ".join(f"`{case.case_id}`" for case in comparison.regressions),
        ]
    return "\n".join(lines) + "\n"
