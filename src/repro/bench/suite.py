"""Normalized, schema-versioned benchmark suite results.

One benchmark run — whatever produced it (the ``repro.bench run`` CLI, the
legacy wrapper modules under ``benchmarks/``) — serializes to a single
``BENCH_*.json`` with a fixed schema: per-case wall-time samples plus
derived median/min and interactions-per-second throughput, machine and git
provenance, and the calibration measurement that makes cross-machine
comparison meaningful.  :data:`SCHEMA_VERSION` is bumped on any
incompatible change; :func:`load_suite` refuses to read a suite written
under a different schema so a comparison can never silently mix formats.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.bench.timing import Timing
from repro.engine.errors import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SUITE_KIND",
    "SchemaVersionError",
    "CaseResult",
    "BenchSuite",
    "machine_metadata",
    "git_metadata",
    "load_suite",
]

#: Bumped on any incompatible change to the suite JSON layout.
#: Version history: 1 — initial layout; 2 — cases gained an optional
#: ``compile_seconds`` field (one-shot JIT compile cost, never part of the
#: measured samples).
SCHEMA_VERSION = 2

#: Versions :meth:`BenchSuite.from_dict` still reads.  Version-1 suites load
#: with ``compile_seconds=None`` on every case, so baselines committed
#: before the compiled-kernel backend stay usable in ``compare``.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: ``kind`` marker distinguishing suite files from other BENCH_*.json.
SUITE_KIND = "repro-bench-suite"


class SchemaVersionError(ConfigurationError):
    """A suite file was written under an incompatible schema version."""


@dataclass(frozen=True)
class CaseResult:
    """Measured result of one benchmark case.

    ``case_id`` is the join key for comparisons; ``seconds`` keeps every
    measured sample so that consumers can recompute statistics;
    ``work_interactions`` is the nominal interaction count of the workload
    (see :func:`repro.bench.spec.nominal_work`) and ``0`` when no work
    measure applies; ``compile_seconds`` is the one-shot JIT compile cost
    of the case's ``warmup_fn`` (``None`` for cases without one); ``extra``
    carries free-form case diagnostics (per-point speedups, worker scaling
    tables, ...).
    """

    case_id: str
    scenario: str
    seconds: tuple[float, ...]
    engine: str | None = None
    workers: int | None = None
    effort: str = "quick"
    work_interactions: int = 0
    compile_seconds: float | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.case_id:
            raise ConfigurationError("a case result needs a case_id")
        # Validates non-empty, non-negative samples and compile cost.
        Timing(tuple(self.seconds), compile_seconds=self.compile_seconds)
        object.__setattr__(self, "seconds", tuple(float(s) for s in self.seconds))

    @property
    def timing(self) -> Timing:
        return Timing(self.seconds)

    @property
    def median_seconds(self) -> float:
        return self.timing.median

    @property
    def min_seconds(self) -> float:
        return self.timing.minimum

    @property
    def interactions_per_second(self) -> float:
        """Nominal throughput (agent interactions per wall-clock second)."""
        if self.work_interactions <= 0 or self.median_seconds == 0:
            return 0.0
        return self.work_interactions / self.median_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "case_id": self.case_id,
            "scenario": self.scenario,
            "engine": self.engine,
            "workers": self.workers,
            "effort": self.effort,
            "seconds": list(self.seconds),
            "median_seconds": self.median_seconds,
            "min_seconds": self.min_seconds,
            "work_interactions": self.work_interactions,
            "interactions_per_second": self.interactions_per_second,
            "compile_seconds": self.compile_seconds,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CaseResult":
        compile_seconds = data.get("compile_seconds")
        return cls(
            case_id=data["case_id"],
            scenario=data["scenario"],
            engine=data.get("engine"),
            workers=data.get("workers"),
            effort=data.get("effort", "quick"),
            seconds=tuple(data["seconds"]),
            work_interactions=int(data.get("work_interactions", 0)),
            compile_seconds=None if compile_seconds is None else float(compile_seconds),
            extra=dict(data.get("extra", {})),
        )


def machine_metadata() -> dict[str, Any]:
    """Provenance of the machine a suite was produced on."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _git(args: list[str]) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_metadata() -> dict[str, Any]:
    """Commit/branch/dirty provenance (all ``None`` outside a checkout)."""
    commit = _git(["rev-parse", "HEAD"])
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"])
    status = _git(["status", "--porcelain"])
    return {
        "commit": commit,
        "branch": branch,
        "dirty": bool(status) if status is not None else None,
    }


@dataclass(frozen=True)
class BenchSuite:
    """One complete benchmark run: cases plus provenance.

    ``calibration_seconds`` is the median wall time of the fixed
    calibration workload (:func:`repro.bench.timing.calibration_seconds`)
    on the producing machine; comparisons rescale by the ratio of the two
    suites' calibrations, so a baseline committed from one machine remains
    a usable reference on another.  ``None`` means the producer skipped
    calibration (comparisons then assume equal machines).
    """

    cases: tuple[CaseResult, ...]
    effort: str = "quick"
    warmup: int = 1
    repeats: int = 3
    calibration_seconds: float | None = None
    created_unix: float = field(default_factory=time.time)
    machine: Mapping[str, Any] = field(default_factory=machine_metadata)
    git: Mapping[str, Any] = field(default_factory=git_metadata)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for case in self.cases:
            if case.case_id in seen:
                raise ConfigurationError(
                    f"duplicate case_id {case.case_id!r} in suite; case ids "
                    "are the comparison join key and must be unique"
                )
            seen.add(case.case_id)

    def by_case_id(self) -> dict[str, CaseResult]:
        return {case.case_id: case for case in self.cases}

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": SUITE_KIND,
            "schema_version": SCHEMA_VERSION,
            "created_unix": self.created_unix,
            "effort": self.effort,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "calibration_seconds": self.calibration_seconds,
            "machine": dict(self.machine),
            "git": dict(self.git),
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, source: str = "<dict>") -> "BenchSuite":
        version = data.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
            raise SchemaVersionError(
                f"{source}: suite schema version {version!r} is not a "
                f"supported version ({supported}); regenerate the suite "
                "with this checkout's `python -m repro.bench run`"
            )
        if data.get("kind") not in (None, SUITE_KIND):
            raise SchemaVersionError(
                f"{source}: not a bench suite file (kind={data.get('kind')!r})"
            )
        return cls(
            cases=tuple(CaseResult.from_dict(case) for case in data.get("cases", [])),
            effort=data.get("effort", "quick"),
            warmup=int(data.get("warmup", 1)),
            repeats=int(data.get("repeats", 3)),
            calibration_seconds=data.get("calibration_seconds"),
            created_unix=float(data.get("created_unix", 0.0)),
            machine=dict(data.get("machine", {})),
            git=dict(data.get("git", {})),
        )


def load_suite(path: str | Path) -> BenchSuite:
    """Read a suite file, refusing schema-version mismatches."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"no such suite file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{path} does not contain a suite object")
    return BenchSuite.from_dict(data, source=str(path))
