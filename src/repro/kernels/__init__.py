"""Compiled (Numba) kernel backend: availability probe and dispatch layer.

``repro.kernels`` is the opt-in compiled counterpart of the vectorised
NumPy kernels.  It mirrors the two registries in
:mod:`repro.engine.registry`: :func:`register_jit_kernel` maps protocol
classes to factories building their fused-kernel wrappers
(:mod:`repro.kernels.jit`), and :func:`jit_kernel_for` resolves an
instance through its MRO.  The engine registry's ``jit=True`` path calls
the permissive :func:`jit_wrap`, which degrades to the plain vectorised
protocol — silently but logged — whenever :func:`availability` says the
compiled path cannot (numba missing) or must not (``REPRO_DISABLE_JIT``)
be used.

Importing this package is cheap: the kernel module (and hence numba
compilation) loads lazily on the first lookup.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Callable

from repro.kernels.availability import DISABLE_ENV, JitAvailability, availability

__all__ = [
    "DISABLE_ENV",
    "JitAvailability",
    "availability",
    "register_jit_kernel",
    "has_jit_kernel",
    "jit_kernel_for",
    "jit_wrap",
    "registered_jit_protocols",
    "compile_warmup",
]

_LOGGER = logging.getLogger("repro.kernels")

#: Protocol class -> factory building its fused-kernel wrapper.
_JIT_REGISTRY: dict[type, Callable[[Any], Any]] = {}
_defaults_loaded = False
_WRAP_LOGGED: set[str] = set()


def register_jit_kernel(protocol_cls: type, factory: Callable[[Any], Any]) -> None:
    """Register ``factory(protocol) -> jit wrapper`` for a protocol class.

    Mirrors :func:`repro.engine.registry.register_vectorized`.  The factory
    receives the protocol instance (scalar or vectorised — register both
    classes, like the counts kernels do) and returns a
    :class:`~repro.engine.batch_engine.VectorizedProtocol` whose
    ``interact_batch`` / ``interact_ensemble`` run the fused kernels.
    Registering a class again replaces the previous factory.
    """
    _JIT_REGISTRY[protocol_cls] = factory


def _ensure_jit_registrations() -> None:
    """Load the built-in registrations (deferred: importing jit.py pulls in
    the vectorised protocol modules)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.core.dynamic_counting import DynamicSizeCounting
    from repro.core.phase_clock import UniformPhaseClock
    from repro.core.vectorized import VectorizedDynamicCounting
    from repro.kernels.jit import (
        JitVectorizedApproximateMajority,
        JitVectorizedDynamicCounting,
        JitVectorizedInfectionEpidemic,
        JitVectorizedJuntaElection,
        JitVectorizedMaxEpidemic,
    )
    from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
    from repro.protocols.junta import JuntaElection
    from repro.protocols.majority import ApproximateMajority
    from repro.protocols.vectorized import (
        VectorizedApproximateMajority,
        VectorizedInfectionEpidemic,
        VectorizedJuntaElection,
        VectorizedMaxEpidemic,
    )

    # Registered for the scalar protocols *and* their vectorised
    # counterparts, so engine builders that already resolved a
    # VectorizedProtocol can still upgrade to the fused kernels.
    for cls in (DynamicSizeCounting, UniformPhaseClock, VectorizedDynamicCounting):
        register_jit_kernel(cls, lambda p: JitVectorizedDynamicCounting(p.params))
    for cls in (MaxEpidemic, VectorizedMaxEpidemic):
        register_jit_kernel(
            cls, lambda p: JitVectorizedMaxEpidemic(p.initial_value, p.one_way)
        )
    for cls in (InfectionEpidemic, VectorizedInfectionEpidemic):
        register_jit_kernel(cls, lambda p: JitVectorizedInfectionEpidemic(p.one_way))
    for cls in (JuntaElection, VectorizedJuntaElection):
        register_jit_kernel(cls, lambda p: JitVectorizedJuntaElection(p.max_level))
    for cls in (ApproximateMajority, VectorizedApproximateMajority):
        register_jit_kernel(
            cls, lambda p: JitVectorizedApproximateMajority(p.initial_opinion)
        )


def _is_jit_wrapper(protocol: Any) -> bool:
    return bool(getattr(protocol, "jit_backend", False))


def has_jit_kernel(protocol: Any) -> bool:
    """Whether a fused-kernel wrapper is registered for ``protocol``."""
    if _is_jit_wrapper(protocol):
        return True
    _ensure_jit_registrations()
    return any(isinstance(protocol, cls) for cls in _JIT_REGISTRY)


def jit_kernel_for(protocol: Any) -> Any:
    """Build the fused-kernel wrapper for a protocol instance (strict).

    A wrapper passed in is returned unchanged; otherwise the lookup walks
    the protocol's MRO like :func:`repro.engine.registry.vectorized_for`
    and raises :class:`~repro.engine.errors.ConfigurationError` when
    nothing is registered.  Availability is *not* consulted here — the
    returned wrapper itself falls back to the NumPy kernels at call time.
    """
    if _is_jit_wrapper(protocol):
        return protocol
    _ensure_jit_registrations()
    for cls in type(protocol).__mro__:
        factory = _JIT_REGISTRY.get(cls)
        if factory is not None:
            return factory(protocol)
    from repro.engine.errors import ConfigurationError

    raise ConfigurationError(
        f"no jit kernel registered for {type(protocol).__name__}; "
        f"registered protocols: {', '.join(registered_jit_protocols()) or '(none)'}. "
        "Use register_jit_kernel() or run with jit=False."
    )


def registered_jit_protocols() -> list[str]:
    """Sorted names of the protocol classes with jit-kernel registrations."""
    _ensure_jit_registrations()
    return sorted(cls.__name__ for cls in _JIT_REGISTRY)


def _log_wrap_fallback(message: str) -> None:
    if message not in _WRAP_LOGGED:
        _WRAP_LOGGED.add(message)
        _LOGGER.info("%s (using NumPy reference)", message)


def jit_wrap(protocol: Any) -> Any:
    """Best-effort upgrade of a protocol to its fused-kernel wrapper.

    This is the permissive entry point used by the engine builders: when
    the compiled backend is unavailable, or no kernel is registered for the
    protocol, the input is returned unchanged and the reason logged once,
    so ``jit=True`` never breaks a run that would work without it.
    """
    if _is_jit_wrapper(protocol):
        return protocol
    status = availability()
    if not status.enabled:
        # availability() already logged the reason.
        return protocol
    if not has_jit_kernel(protocol):
        _log_wrap_fallback(
            f"no jit kernel registered for {type(protocol).__name__}"
        )
        return protocol
    return jit_kernel_for(protocol)


def compile_warmup() -> float:
    """Trigger numba compilation of every fused kernel; return wall seconds.

    Runs two tiny steps of each registered protocol on the batched and the
    ensemble engine with ``jit=True``, hitting the dtype specialisations
    the real workloads use, so first-call compilation happens here instead
    of inside a measurement.  A no-op (returning ~0) when the compiled
    backend is unavailable.  ``repro.bench`` passes this as ``warmup_fn``
    for jit cases and reports the cost as ``compile_seconds``.
    """
    started = time.perf_counter()
    if not availability().enabled:
        return time.perf_counter() - started
    from repro.core.dynamic_counting import DynamicSizeCounting
    from repro.engine.registry import make_engine
    from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
    from repro.protocols.junta import JuntaElection
    from repro.protocols.majority import ApproximateMajority

    for protocol_cls in (
        DynamicSizeCounting,
        MaxEpidemic,
        InfectionEpidemic,
        JuntaElection,
        ApproximateMajority,
    ):
        make_engine("batched", protocol_cls(), 64, seed=0, jit=True).run(2)
        make_engine(
            "ensemble", protocol_cls(), 64, seed=0, trials=2, jit=True
        ).run(2)
    return time.perf_counter() - started
