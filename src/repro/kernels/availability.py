"""The single probe deciding whether compiled (Numba) kernels may be used.

Everything that cares about the compiled backend — the engine registry's
``jit=`` wiring, the experiments CLI ``list`` output, the benchmark skip
logic — asks :func:`availability` instead of importing :mod:`numba`
directly, so the fallback decision is made exactly once and for exactly one
reason.

The import probe runs once per process and is cached (importing numba is
expensive; a missing numba cannot appear mid-process).  The
``REPRO_DISABLE_JIT`` environment variable, by contrast, is read fresh on
every call so tests and operators can flip the compiled path off without
restarting.  Falling back is silent-but-logged: each distinct reason is
logged once at INFO on the ``repro.kernels`` logger.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass

__all__ = ["DISABLE_ENV", "JitAvailability", "availability"]

#: Set to any non-empty value other than ``"0"`` to force the pure-NumPy
#: reference kernels even when numba is installed.
DISABLE_ENV = "REPRO_DISABLE_JIT"

_LOGGER = logging.getLogger("repro.kernels")

#: Cached result of the (expensive) numba import probe:
#: ``(importable, reason, version)``.
_IMPORT_PROBE: tuple[bool, str, str | None] | None = None

#: Fallback reasons already logged, so each is reported exactly once.
_LOGGED_REASONS: set[str] = set()


@dataclass(frozen=True)
class JitAvailability:
    """Outcome of the compiled-kernel probe.

    Attributes
    ----------
    enabled:
        Whether the compiled kernels may be used right now.
    reason:
        Human-readable explanation (shown by ``repro.experiments.cli list``
        and recorded by the benchmarks when the compiled path is skipped).
    numba_version:
        The installed numba version, or ``None`` when not importable.
    """

    enabled: bool
    reason: str
    numba_version: str | None = None


def _probe_import() -> tuple[bool, str, str | None]:
    global _IMPORT_PROBE
    if _IMPORT_PROBE is None:
        try:
            import numba
        except Exception as exc:  # ImportError or a broken installation
            _IMPORT_PROBE = (
                False,
                f"numba is not importable ({type(exc).__name__}: {exc})",
                None,
            )
        else:
            version = getattr(numba, "__version__", "unknown")
            _IMPORT_PROBE = (True, f"numba {version} available", version)
    return _IMPORT_PROBE


def _log_once(reason: str) -> None:
    if reason not in _LOGGED_REASONS:
        _LOGGED_REASONS.add(reason)
        _LOGGER.info("compiled kernels disabled: %s (using NumPy reference)", reason)


def availability() -> JitAvailability:
    """Whether the compiled kernels may be used, and why (not).

    ``REPRO_DISABLE_JIT`` wins over an installed numba; the import probe is
    cached per process.  The first call per distinct fallback reason logs it
    on ``logging.getLogger("repro.kernels")``.
    """
    disabled = os.environ.get(DISABLE_ENV, "")
    if disabled and disabled != "0":
        importable, _, version = _probe_import()
        reason = f"disabled via {DISABLE_ENV}={disabled}"
        _log_once(reason)
        return JitAvailability(False, reason, version if importable else None)
    importable, reason, version = _probe_import()
    if not importable:
        _log_once(reason)
    return JitAvailability(importable, reason, version)
