"""Fused loop kernels for the hot protocols, compiled with Numba when present.

Each kernel below is an explicit-loop reformulation of one vectorised
protocol's ``interact_batch`` / ``interact_ensemble``: the gather → branch →
scatter sequence that NumPy spreads over dozens of full-width temporaries
(and compressed lane indices for the rare branches) becomes a single pass
over preallocated scratch buffers.  The functions are written in the
numba-compilable subset of Python and are *bit-parity* replacements — under
a shared seed they must produce exactly the arrays the NumPy kernels
produce (``tests/test_jit_kernels.py`` asserts element-for-element
equality).  Three rules keep that true:

* **No randomness inside kernels.**  Numba's RNG is not NumPy's
  ``Generator`` stream, so every random draw happens outside, with exactly
  the same ``Generator`` calls in exactly the same order as the NumPy
  kernels.  Where the number of draws depends on data (dynamic counting's
  resets and backups), the kernel is *phased*: one phase returns the lane
  count, Python draws, the next phase consumes the draws in lane order.
* **Scatter order replicates fancy indexing.**  All reads happen before any
  write (matching the batch-start snapshot semantics), duplicate indices
  resolve last-writer-wins in index order (matching fancy assignment), and
  monotone merges apply an in-order cumulative max (matching
  ``np.maximum.at``).
* **Dtype discipline.**  The ensemble planes may be float32; every constant
  crosses the kernel boundary pre-cast to the plane dtype (NEP 50 weak
  scalars compute in the array's dtype — a float64 constant inside the
  kernel would silently promote and diverge by an ulp).

The wrapper classes subclass the NumPy implementations and fall back to
``super()`` whenever :func:`kernel_table` returns ``None`` (numba missing
or ``REPRO_DISABLE_JIT`` set), so the pure-NumPy reference path is always
one attribute lookup away.  The uncompiled Python kernels are themselves
runnable (slowly) — :func:`use_kernel_table` injects them so the kernel
logic is testable without numba installed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.batch_engine import flat_state_view
from repro.kernels.availability import availability
from repro.protocols.vectorized import (
    VectorizedApproximateMajority,
    VectorizedInfectionEpidemic,
    VectorizedJuntaElection,
    VectorizedMaxEpidemic,
    _row_indices,
)

__all__ = [
    "PYTHON_KERNELS",
    "kernel_table",
    "python_kernels",
    "use_kernel_table",
    "JitVectorizedDynamicCounting",
    "JitVectorizedMaxEpidemic",
    "JitVectorizedInfectionEpidemic",
    "JitVectorizedJuntaElection",
    "JitVectorizedApproximateMajority",
]


# ----------------------------------------------------------- majority kernels


def _majority_batch(opinion, initiators, responders, new_u, new_v):
    m = initiators.shape[0]
    for i in range(m):
        u = opinion[initiators[i]]
        v = opinion[responders[i]]
        nu = u
        if u == 0 and v != 0:
            nu = v
        if v == 0 and u != 0:
            nv = u
        elif u != 0 and v != 0 and u == -v:
            nv = 0
        else:
            nv = v
        new_u[i] = nu
        new_v[i] = nv
    for i in range(m):
        opinion[initiators[i]] = new_u[i]
    for i in range(m):
        opinion[responders[i]] = new_v[i]


def _majority_ensemble(opinion, initiators, responders, new_u, new_v):
    trials = initiators.shape[0]
    m = initiators.shape[1]
    for t in range(trials):
        for i in range(m):
            u = opinion[t, initiators[t, i]]
            v = opinion[t, responders[t, i]]
            nu = u
            if u == 0 and v != 0:
                nu = v
            if v == 0 and u != 0:
                nv = u
            elif u != 0 and v != 0 and u == -v:
                nv = 0
            else:
                nv = v
            new_u[t, i] = nu
            new_v[t, i] = nv
    for t in range(trials):
        for i in range(m):
            opinion[t, initiators[t, i]] = new_u[t, i]
    for t in range(trials):
        for i in range(m):
            opinion[t, responders[t, i]] = new_v[t, i]


# ----------------------------------------------------------- epidemic kernels


def _max_epidemic_batch(value, initiators, responders, peak, two_way):
    m = initiators.shape[0]
    for i in range(m):
        a = value[initiators[i]]
        b = value[responders[i]]
        peak[i] = a if a >= b else b
    for i in range(m):
        j = initiators[i]
        if peak[i] > value[j]:
            value[j] = peak[i]
    if two_way:
        for i in range(m):
            j = responders[i]
            if peak[i] > value[j]:
                value[j] = peak[i]


def _max_epidemic_ensemble(value, initiators, responders, peak, two_way):
    trials = initiators.shape[0]
    m = initiators.shape[1]
    for t in range(trials):
        for i in range(m):
            a = value[t, initiators[t, i]]
            b = value[t, responders[t, i]]
            peak[t, i] = a if a >= b else b
    for t in range(trials):
        for i in range(m):
            j = initiators[t, i]
            if peak[t, i] > value[t, j]:
                value[t, j] = peak[t, i]
    if two_way:
        for t in range(trials):
            for i in range(m):
                j = responders[t, i]
                if peak[t, i] > value[t, j]:
                    value[t, j] = peak[t, i]


def _infection_batch(infected, initiators, responders, peak, one_way):
    m = initiators.shape[0]
    if one_way:
        for i in range(m):
            peak[i] = infected[responders[i]]
    else:
        for i in range(m):
            a = infected[initiators[i]]
            b = infected[responders[i]]
            peak[i] = a if a >= b else b
    for i in range(m):
        j = initiators[i]
        if peak[i] > infected[j]:
            infected[j] = peak[i]
    if not one_way:
        for i in range(m):
            j = responders[i]
            if peak[i] > infected[j]:
                infected[j] = peak[i]


def _infection_ensemble(infected, initiators, responders, peak, one_way):
    trials = initiators.shape[0]
    m = initiators.shape[1]
    if one_way:
        for t in range(trials):
            for i in range(m):
                peak[t, i] = infected[t, responders[t, i]]
    else:
        for t in range(trials):
            for i in range(m):
                a = infected[t, initiators[t, i]]
                b = infected[t, responders[t, i]]
                peak[t, i] = a if a >= b else b
    for t in range(trials):
        for i in range(m):
            j = initiators[t, i]
            if peak[t, i] > infected[t, j]:
                infected[t, j] = peak[t, i]
    if not one_way:
        for t in range(trials):
            for i in range(m):
                j = responders[t, i]
                if peak[t, i] > infected[t, j]:
                    infected[t, j] = peak[t, i]


# -------------------------------------------------------------- junta kernels


def _junta_batch(
    level, climbing, max_seen, initiators, responders, coins, max_level,
    new_level, new_climb, top,
):
    m = initiators.shape[0]
    c = 0
    for i in range(m):
        u = initiators[i]
        v = responders[i]
        u_level = level[u]
        climb = climbing[u] != 0
        coin = False
        if climb:
            coin = coins[c]
            c += 1
        up = climb and coin and (u_level < max_level)
        nl = u_level + 1 if up else u_level
        new_level[i] = nl
        new_climb[i] = 1 if up else 0
        t_val = nl
        if max_seen[u] > t_val:
            t_val = max_seen[u]
        if level[v] > t_val:
            t_val = level[v]
        if max_seen[v] > t_val:
            t_val = max_seen[v]
        top[i] = t_val
    for i in range(m):
        level[initiators[i]] = new_level[i]
    for i in range(m):
        climbing[initiators[i]] = new_climb[i]
    for i in range(m):
        j = initiators[i]
        if top[i] > max_seen[j]:
            max_seen[j] = top[i]
    for i in range(m):
        j = responders[i]
        if top[i] > max_seen[j]:
            max_seen[j] = top[i]
    return c


def _junta_ensemble(
    level, climbing, max_seen, initiators, responders, coins, max_level,
    new_level, new_climb, top,
):
    trials = initiators.shape[0]
    m = initiators.shape[1]
    c = 0
    for t in range(trials):
        for i in range(m):
            u = initiators[t, i]
            v = responders[t, i]
            u_level = level[t, u]
            climb = climbing[t, u] != 0
            coin = False
            if climb:
                coin = coins[c]
                c += 1
            up = climb and coin and (u_level < max_level)
            nl = u_level + 1 if up else u_level
            new_level[t, i] = nl
            new_climb[t, i] = 1 if up else 0
            t_val = nl
            if max_seen[t, u] > t_val:
                t_val = max_seen[t, u]
            if level[t, v] > t_val:
                t_val = level[t, v]
            if max_seen[t, v] > t_val:
                t_val = max_seen[t, v]
            top[t, i] = t_val
    for t in range(trials):
        for i in range(m):
            level[t, initiators[t, i]] = new_level[t, i]
    for t in range(trials):
        for i in range(m):
            climbing[t, initiators[t, i]] = new_climb[t, i]
    for t in range(trials):
        for i in range(m):
            j = initiators[t, i]
            if top[t, i] > max_seen[t, j]:
                max_seen[t, j] = top[t, i]
    for t in range(trials):
        for i in range(m):
            j = responders[t, i]
            if top[t, i] > max_seen[t, j]:
                max_seen[t, j] = top[t, i]
    return c


# -------------------------------------------- dynamic counting, batched (f64)
#
# Phased because the number of GRV draws is data-dependent: gather returns
# the reset count, Python draws, reset returns the backup count, Python
# draws again, finish scatters.  Lane order is batch index order, matching
# the boolean-mask assignments of the NumPy kernel.


def _counting_batch_gather(
    max_a, last_a, time_a, inter_a, initiators, responders,
    u_max, u_last, u_time, u_inter, v_max, v_last, v_time,
    reset_mask, tau2, tau3,
):
    m = initiators.shape[0]
    count = 0
    for i in range(m):
        u = initiators[i]
        v = responders[i]
        um = max_a[u]
        ul = last_a[u]
        ut = time_a[u]
        vm = max_a[v]
        u_max[i] = um
        u_last[i] = ul
        u_time[i] = ut
        u_inter[i] = inter_a[u]
        v_max[i] = vm
        v_last[i] = last_a[v]
        v_time[i] = time_a[v]
        u_scale = um if um >= ul else ul
        v_scale = vm if vm >= last_a[v] else last_a[v]
        v_exchange = time_a[v] >= tau2 * v_scale
        # Lines 2-6: wrap-around / reset->exchange / hold->exchange resets.
        reset = ut <= 0.0
        if not reset and (ut < tau3 * u_scale) and v_exchange:
            reset = True
        if not reset and (not (ut >= tau2 * u_scale)) and um != vm:
            reset = True
        reset_mask[i] = reset
        if reset:
            count += 1
    return count


def _counting_batch_reset(
    u_max, u_last, u_time, u_inter, reset_mask, fresh_vals,
    backup_mask, tau1, tau_prime,
):
    m = u_max.shape[0]
    c = 0
    count = 0
    for i in range(m):
        if reset_mask[i]:
            fresh = fresh_vals[c]
            c += 1
            old_max = u_max[i]
            peak = old_max if old_max >= fresh else fresh
            u_time[i] = tau1 * peak
            u_last[i] = old_max
            u_max[i] = fresh
            u_inter[i] = 0
        # Lines 7-8: is a backup GRV due?
        scale = u_max[i] if u_max[i] >= u_last[i] else u_last[i]
        due = u_inter[i] > tau_prime * scale
        backup_mask[i] = due
        if due:
            count += 1
    return count


def _counting_batch_finish(
    max_a, last_a, time_a, inter_a, initiators,
    u_max, u_last, u_time, u_inter, v_max, v_last, v_time,
    backup_mask, backup_raw, boosted_vals, tau1, tau2, tau3,
):
    m = u_max.shape[0]
    c = 0
    for i in range(m):
        nm = u_max[i]
        nl = u_last[i]
        nt = u_time[i]
        ni = u_inter[i]
        vm = v_max[i]
        vl = v_last[i]
        vt = v_time[i]
        # Lines 9-10: adopt the backup GRV when it beats the current max.
        if backup_mask[i]:
            raw = backup_raw[c]
            boosted = boosted_vals[c]
            c += 1
            ni = 0
            if raw > nm:
                nt = tau1 * boosted
                nm = boosted
        v_scale = vm if vm >= vl else vl
        v_exchange = vt >= tau2 * v_scale
        # Lines 11-12: adopt a larger maximum within the exchange phase.
        scale = nm if nm >= nl else nl
        if (nt >= tau2 * scale) and v_exchange and nm < vm:
            nt = tau1 * vm
            nm = vm
            nl = vl
        # Lines 13-14: exchange the trailing maximum.
        scale = nm if nm >= nl else nl
        v_reset_phase = vt < tau3 * v_scale
        if nm == vm and not ((nt >= tau2 * scale) and v_reset_phase):
            if vl > nl:
                nl = vl
        # Line 15: CHVP countdown plus the interaction counter.
        if vt > nt:
            nt = vt
        nt = nt - 1.0
        ni = ni + 1
        u_max[i] = nm
        u_last[i] = nl
        u_time[i] = nt
        u_inter[i] = ni
    for i in range(m):
        j = initiators[i]
        max_a[j] = u_max[i]
        last_a[j] = u_last[i]
        time_a[j] = u_time[i]
        inter_a[j] = u_inter[i]
    return c


# ------------------------------------- dynamic counting, ensemble (any dtype)
#
# Mirrors the flat-lane ensemble kernel of VectorizedDynamicCounting: lanes
# are walked in row-major (trial, batch) order — the order of the NumPy
# kernel's flattened index vectors — and every constant arrives pre-cast to
# the plane dtype so float32 planes compute exactly what NEP 50 weak
# scalars compute in the NumPy path.


def _counting_ensemble_gather(
    max2d, last2d, time2d, inter2d, initiators, responders,
    u_max, u_last, u_time, u_inter, v_max, v_last, v_time,
    u_t2, v_exchange, v_reset_phase, reset_mask, tau2, tau3,
):
    trials = initiators.shape[0]
    m = initiators.shape[1]
    count = 0
    p = 0
    for t in range(trials):
        for i in range(m):
            u = initiators[t, i]
            v = responders[t, i]
            um = max2d[t, u]
            ul = last2d[t, u]
            ut = time2d[t, u]
            vm = max2d[t, v]
            vl = last2d[t, v]
            vt = time2d[t, v]
            u_max[p] = um
            u_last[p] = ul
            u_time[p] = ut
            u_inter[p] = inter2d[t, u]
            v_max[p] = vm
            v_last[p] = vl
            v_time[p] = vt
            vs = vm if vm >= vl else vl
            vx = vt >= tau2 * vs
            v_exchange[p] = vx
            v_reset_phase[p] = vt < tau3 * vs
            s = um if um >= ul else ul
            in_reset_phase = ut < tau3 * s
            t2 = tau2 * s
            u_t2[p] = t2
            # Lines 2-6: wrap-around / reset->exchange / hold->exchange.
            reset = ut <= 0.0
            if not reset and in_reset_phase and vx:
                reset = True
            if not reset and (ut < t2) and um != vm:
                reset = True
            reset_mask[p] = reset
            if reset:
                count += 1
            p += 1
    return count


def _counting_ensemble_reset(
    u_max, u_last, u_time, u_inter, u_t2, reset_mask, fresh_vals,
    backup_mask, tau1, tau2, ratio,
):
    lanes = u_max.shape[0]
    c = 0
    count = 0
    for p in range(lanes):
        if reset_mask[p]:
            fresh = fresh_vals[c]
            c += 1
            old_max = u_max[p]
            peak = old_max if old_max >= fresh else fresh
            u_time[p] = tau1 * peak
            u_last[p] = old_max
            u_max[p] = fresh
            u_inter[p] = 0
            u_t2[p] = tau2 * peak
        # Lines 7-8: the backup threshold tau' * scale is ratio * u_t2.
        due = u_inter[p] > ratio * u_t2[p]
        backup_mask[p] = due
        if due:
            count += 1
    return count


def _counting_ensemble_finish(
    max2d, last2d, time2d, inter2d, initiators,
    u_max, u_last, u_time, u_inter, u_t2,
    v_max, v_last, v_time, v_exchange, v_reset_phase,
    backup_mask, backup_raw, boosted_vals, tau1, tau2, one,
):
    trials = initiators.shape[0]
    m = initiators.shape[1]
    c = 0
    p = 0
    for t in range(trials):
        for i in range(m):
            nm = u_max[p]
            nl = u_last[p]
            nt = u_time[p]
            ni = u_inter[p]
            t2 = u_t2[p]
            # Lines 9-10: adopt the backup GRV when it beats the current max.
            if backup_mask[p]:
                raw = backup_raw[c]
                boosted = boosted_vals[c]
                c += 1
                ni = 0
                if raw > nm:
                    nt = tau1 * boosted
                    nm = boosted
                    peak = boosted if boosted >= nl else nl
                    t2 = tau2 * peak
            # Lines 11-12: adopt a larger maximum within the exchange phase.
            exchange = nt >= t2
            if exchange and v_exchange[p] and nm < v_max[p]:
                adopted = v_max[p]
                new_last = v_last[p]
                nt = tau1 * adopted
                nm = adopted
                nl = new_last
                peak = adopted if adopted >= new_last else new_last
                t2 = tau2 * peak
                exchange = nt >= t2
            # Lines 13-14: exchange the trailing maximum.
            if nm == v_max[p] and not (exchange and v_reset_phase[p]):
                if v_last[p] > nl:
                    nl = v_last[p]
            # Line 15: CHVP countdown plus the interaction counter.
            if v_time[p] > nt:
                nt = v_time[p]
            nt = nt - one
            ni = ni + 1
            j = initiators[t, i]
            max2d[t, j] = nm
            last2d[t, j] = nl
            time2d[t, j] = nt
            inter2d[t, j] = ni
            p += 1
    return c


# -------------------------------------------------------------- kernel table

#: The uncompiled kernel functions, by name.  :func:`kernel_table` compiles
#: this table with ``numba.njit(cache=True)`` on first use.
PYTHON_KERNELS: dict[str, Callable[..., Any]] = {
    "majority_batch": _majority_batch,
    "majority_ensemble": _majority_ensemble,
    "max_epidemic_batch": _max_epidemic_batch,
    "max_epidemic_ensemble": _max_epidemic_ensemble,
    "infection_batch": _infection_batch,
    "infection_ensemble": _infection_ensemble,
    "junta_batch": _junta_batch,
    "junta_ensemble": _junta_ensemble,
    "counting_batch_gather": _counting_batch_gather,
    "counting_batch_reset": _counting_batch_reset,
    "counting_batch_finish": _counting_batch_finish,
    "counting_ensemble_gather": _counting_ensemble_gather,
    "counting_ensemble_reset": _counting_ensemble_reset,
    "counting_ensemble_finish": _counting_ensemble_finish,
}

_COMPILED: dict[str, Callable[..., Any]] | None = None
_OVERRIDE: dict[str, Callable[..., Any]] | None = None


def python_kernels() -> dict[str, Callable[..., Any]]:
    """A fresh copy of the uncompiled kernel table (for tests and debugging)."""
    return dict(PYTHON_KERNELS)


def _compile_kernels() -> dict[str, Callable[..., Any]]:
    from numba import njit

    compile_one = njit(cache=True)
    return {name: compile_one(fn) for name, fn in PYTHON_KERNELS.items()}


def kernel_table() -> dict[str, Callable[..., Any]] | None:
    """The active kernel table, or ``None`` for the pure-NumPy fallback.

    Resolution order: a test override installed by :func:`use_kernel_table`,
    then the njit-compiled table when :func:`~repro.kernels.availability.
    availability` allows it (compiled once per process, lazily), else
    ``None``.  Resolved at *call* time by the wrapper classes, so wrappers
    stay picklable for the sharded execution layer and react to
    ``REPRO_DISABLE_JIT`` without rebuilding engines.
    """
    global _COMPILED
    if _OVERRIDE is not None:
        return _OVERRIDE
    if not availability().enabled:
        return None
    if _COMPILED is None:
        _COMPILED = _compile_kernels()
    return _COMPILED


@contextmanager
def use_kernel_table(table: dict[str, Callable[..., Any]]) -> Iterator[None]:
    """Force a specific kernel table while the context is active.

    The parity tests inject :func:`python_kernels` so the kernel *logic*
    executes (interpreted) even on machines without numba.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = table
    try:
        yield
    finally:
        _OVERRIDE = previous


# ------------------------------------------------------------ scratch buffers


class _ScratchPool:
    """Reusable per-wrapper scratch buffers, grown geometrically on demand."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, key: str, size: int, dtype: np.dtype) -> np.ndarray:
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape[0] < size or buffer.dtype != dtype:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:size]


class _PooledMixin:
    """Lazily attached scratch pool (kept out of ``__init__`` chains)."""

    #: Marker consulted by the dispatch layer (a wrapper is never re-wrapped).
    jit_backend = True

    @property
    def _pool(self) -> _ScratchPool:
        pool = self.__dict__.get("_scratch_pool")
        if pool is None:
            pool = _ScratchPool()
            self.__dict__["_scratch_pool"] = pool
        return pool


_EMPTY_BOOL = np.empty(0, dtype=bool)


# ------------------------------------------------------------ wrapper classes


class JitVectorizedApproximateMajority(_PooledMixin, VectorizedApproximateMajority):
    """Fused-kernel approximate majority (NumPy fallback via ``super()``)."""

    name = "jit-approximate-majority"

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_batch(arrays, initiators, responders, rng)
        opinion = arrays["opinion"]
        m = initiators.shape[0]
        pool = self._pool
        new_u = pool.get("new_u", m, opinion.dtype)
        new_v = pool.get("new_v", m, opinion.dtype)
        kernels["majority_batch"](opinion, initiators, responders, new_u, new_v)

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_ensemble(arrays, initiators, responders, rng)
        opinion = arrays["opinion"]
        lanes = initiators.size
        pool = self._pool
        new_u = pool.get("new_u", lanes, opinion.dtype).reshape(initiators.shape)
        new_v = pool.get("new_v", lanes, opinion.dtype).reshape(initiators.shape)
        kernels["majority_ensemble"](opinion, initiators, responders, new_u, new_v)


class JitVectorizedMaxEpidemic(_PooledMixin, VectorizedMaxEpidemic):
    """Fused-kernel max-propagation epidemic."""

    name = "jit-max-epidemic"

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_batch(arrays, initiators, responders, rng)
        value = arrays["value"]
        peak = self._pool.get("peak", initiators.shape[0], value.dtype)
        kernels["max_epidemic_batch"](
            value, initiators, responders, peak, not self.one_way
        )

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_ensemble(arrays, initiators, responders, rng)
        value = arrays["value"]
        peak = self._pool.get("peak", initiators.size, value.dtype).reshape(
            initiators.shape
        )
        kernels["max_epidemic_ensemble"](
            value, initiators, responders, peak, not self.one_way
        )


class JitVectorizedInfectionEpidemic(_PooledMixin, VectorizedInfectionEpidemic):
    """Fused-kernel binary SI epidemic."""

    name = "jit-infection-epidemic"

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_batch(arrays, initiators, responders, rng)
        infected = arrays["infected"]
        peak = self._pool.get("peak", initiators.shape[0], infected.dtype)
        kernels["infection_batch"](
            infected, initiators, responders, peak, self.one_way
        )

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_ensemble(arrays, initiators, responders, rng)
        infected = arrays["infected"]
        peak = self._pool.get("peak", initiators.size, infected.dtype).reshape(
            initiators.shape
        )
        kernels["infection_ensemble"](
            infected, initiators, responders, peak, self.one_way
        )


class JitVectorizedJuntaElection(_PooledMixin, VectorizedJuntaElection):
    """Fused-kernel junta election.

    The coin flips are drawn *outside* the kernel with exactly the NumPy
    kernel's call (`integers(0, 2, size=climbers)` over the climbing
    initiators of the batch snapshot); the kernel assigns them to climbing
    lanes in index order, matching the boolean-mask fill.
    """

    name = "jit-junta-election"

    def _draw_coins(self, climbing_lanes: np.ndarray, rng) -> np.ndarray:
        climbers = int(np.count_nonzero(climbing_lanes))
        if not climbers:
            return _EMPTY_BOOL
        return rng.generator.integers(0, 2, size=climbers).astype(bool)

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_batch(arrays, initiators, responders, rng)
        level = arrays["level"]
        climbing = arrays["climbing"]
        max_seen = arrays["max_seen"]
        coins = self._draw_coins(climbing[initiators], rng)
        m = initiators.shape[0]
        pool = self._pool
        new_level = pool.get("new_level", m, level.dtype)
        new_climb = pool.get("new_climb", m, climbing.dtype)
        top = pool.get("top", m, max_seen.dtype)
        kernels["junta_batch"](
            level, climbing, max_seen, initiators, responders, coins,
            self.max_level, new_level, new_climb, top,
        )

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_ensemble(arrays, initiators, responders, rng)
        level = arrays["level"]
        climbing = arrays["climbing"]
        max_seen = arrays["max_seen"]
        rows = _row_indices(initiators)
        coins = self._draw_coins(climbing[rows, initiators], rng)
        lanes = initiators.size
        pool = self._pool
        shape = initiators.shape
        new_level = pool.get("new_level", lanes, level.dtype).reshape(shape)
        new_climb = pool.get("new_climb", lanes, climbing.dtype).reshape(shape)
        top = pool.get("top", lanes, max_seen.dtype).reshape(shape)
        kernels["junta_ensemble"](
            level, climbing, max_seen, initiators, responders, coins,
            self.max_level, new_level, new_climb, top,
        )


class JitVectorizedDynamicCounting(_PooledMixin, VectorizedDynamicCounting):
    """Fused-kernel Algorithm 2 (dynamic size counting).

    The GRV draw counts are data-dependent, so both layouts run in three
    phases: gather (returns the reset-lane count) → Python draws the fresh
    GRV maxima with the NumPy kernel's exact generator calls → reset
    (returns the backup-lane count) → Python draws the backups → finish
    (adopt/share/countdown + scatter).  ``over``-scaling and the plane-dtype
    cast happen on the Python side so the kernels never touch float64
    constants on float32 planes.
    """

    name = "jit-dynamic-size-counting"

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_batch(arrays, initiators, responders, rng)
        params = self.params
        over = params.overestimation
        m = initiators.shape[0]
        pool = self._pool
        dtype = arrays["max"].dtype
        u_max = pool.get("b_u_max", m, dtype)
        u_last = pool.get("b_u_last", m, dtype)
        u_time = pool.get("b_u_time", m, dtype)
        u_inter = pool.get("b_u_inter", m, arrays["interactions"].dtype)
        v_max = pool.get("b_v_max", m, dtype)
        v_last = pool.get("b_v_last", m, dtype)
        v_time = pool.get("b_v_time", m, dtype)
        reset_mask = pool.get("b_reset", m, np.dtype(bool))
        backup_mask = pool.get("b_backup", m, np.dtype(bool))

        reset_count = int(
            kernels["counting_batch_gather"](
                arrays["max"], arrays["last_max"], arrays["time"],
                arrays["interactions"], initiators, responders,
                u_max, u_last, u_time, u_inter, v_max, v_last, v_time,
                reset_mask, float(params.tau2), float(params.tau3),
            )
        )
        fresh_vals = over * self._sample_grv_max(rng, reset_count)
        backup_count = int(
            kernels["counting_batch_reset"](
                u_max, u_last, u_time, u_inter, reset_mask, fresh_vals,
                backup_mask, float(params.tau1), float(params.tau_prime),
            )
        )
        backup_raw = self._sample_grv_max(rng, backup_count)
        boosted_vals = over * backup_raw
        kernels["counting_batch_finish"](
            arrays["max"], arrays["last_max"], arrays["time"],
            arrays["interactions"], initiators,
            u_max, u_last, u_time, u_inter, v_max, v_last, v_time,
            backup_mask, backup_raw, boosted_vals,
            float(params.tau1), float(params.tau2), float(params.tau3),
        )
        if reset_count:
            np.add.at(arrays["resets"], np.unique(initiators[reset_mask]), 1)

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        kernels = kernel_table()
        if kernels is None:
            return super().interact_ensemble(arrays, initiators, responders, rng)
        params = self.params
        over = params.overestimation
        grv_k = params.grv_samples
        max2d = arrays["max"]
        dtype = max2d.dtype
        trials, n = max2d.shape
        lanes = initiators.size
        pool = self._pool
        u_max = pool.get("e_u_max", lanes, dtype)
        u_last = pool.get("e_u_last", lanes, dtype)
        u_time = pool.get("e_u_time", lanes, dtype)
        u_inter = pool.get("e_u_inter", lanes, arrays["interactions"].dtype)
        u_t2 = pool.get("e_u_t2", lanes, dtype)
        v_max = pool.get("e_v_max", lanes, dtype)
        v_last = pool.get("e_v_last", lanes, dtype)
        v_time = pool.get("e_v_time", lanes, dtype)
        v_exchange = pool.get("e_v_ex", lanes, np.dtype(bool))
        v_reset_phase = pool.get("e_v_rp", lanes, np.dtype(bool))
        reset_mask = pool.get("e_reset", lanes, np.dtype(bool))
        backup_mask = pool.get("e_backup", lanes, np.dtype(bool))
        tau1 = dtype.type(params.tau1)
        tau2 = dtype.type(params.tau2)
        tau3 = dtype.type(params.tau3)
        ratio = dtype.type(params.tau_prime / params.tau2)
        one = dtype.type(1.0)

        reset_count = int(
            kernels["counting_ensemble_gather"](
                max2d, arrays["last_max"], arrays["time"],
                arrays["interactions"], initiators, responders,
                u_max, u_last, u_time, u_inter, v_max, v_last, v_time,
                u_t2, v_exchange, v_reset_phase, reset_mask, tau2, tau3,
            )
        )
        if reset_count:
            fresh_vals = (over * rng.geometric_max_array(grv_k, reset_count)).astype(
                dtype, copy=False
            )
        else:
            fresh_vals = np.empty(0, dtype=dtype)
        backup_count = int(
            kernels["counting_ensemble_reset"](
                u_max, u_last, u_time, u_inter, u_t2, reset_mask, fresh_vals,
                backup_mask, tau1, tau2, ratio,
            )
        )
        if backup_count:
            backup_raw = rng.geometric_max_array(grv_k, backup_count)
            boosted_vals = (over * backup_raw).astype(dtype, copy=False)
        else:
            backup_raw = np.empty(0, dtype=np.float64)
            boosted_vals = np.empty(0, dtype=dtype)
        kernels["counting_ensemble_finish"](
            max2d, arrays["last_max"], arrays["time"],
            arrays["interactions"], initiators,
            u_max, u_last, u_time, u_inter, u_t2,
            v_max, v_last, v_time, v_exchange, v_reset_phase,
            backup_mask, backup_raw, boosted_vals, tau1, tau2, one,
        )
        # Count effective resets once per (trial, agent) slot — the same
        # dedup strategy switch as the NumPy kernel.
        if reset_count:
            rows, cols = np.nonzero(reset_mask.reshape(trials, -1))
            slots = rows * n + initiators[rows, cols].astype(np.int64, copy=False)
            resets_flat = flat_state_view(arrays["resets"])
            if slots.size * 8 < resets_flat.size:
                np.add.at(resets_flat, np.unique(slots), 1)
            else:
                flags = np.zeros(resets_flat.size, dtype=bool)
                flags[slots] = True
                resets_flat += flags
