"""Randomness utilities for population protocol simulations.

The paper's simulator uses the ``ranlux`` generator seeded from a
non-deterministic source to guarantee independence across the 96 simulation
runs behind every data point.  We substitute NumPy's PCG64 generator, which
is of comparable statistical quality, and derive *independent child streams*
for every trial via :class:`numpy.random.SeedSequence` spawning.  This gives
us reproducibility (a single root seed reproduces an entire experiment) while
preserving independence between trials.

The module also provides the primitive random quantities the protocols need:

* fair coin flips,
* geometric random variables with parameter 1/2 (the GRVs of the paper),
* uniform choice of an ordered pair of distinct agents (the random
  scheduler).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "RandomSource",
    "SeedTree",
    "spawn_streams",
    "make_rng",
]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a NumPy random generator.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws entropy from the operating system, which
        mirrors the paper's use of ``std::random_device``; passing an integer
        makes the run reproducible.
    """
    return np.random.default_rng(seed)


def spawn_streams(seed: int | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed.

    Used by the multi-run :class:`repro.engine.runner.TrialRunner` so that
    every independent trial behind a data point uses its own stream, exactly
    as the paper seeds each of its 96 runs independently.

    This is the flat special case of :class:`SeedTree`:
    ``spawn_streams(seed, count)[t]`` is bit-identical to
    ``SeedTree.from_seed(seed).trial(t).generator()``, so code addressing
    trials through the tree interoperates with code using this helper.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return SeedTree.from_seed(seed).streams(count)


#: Spawn-key word marking a hashed (string / out-of-range integer) key
#: block in a :class:`SeedTree` path, keeping hashed keys from colliding
#: with directly-encoded trial indices.  (Golden ratio in 32 bits — an
#: arbitrary constant far above any realistic trial count.)
_HASHED_KEY_TAG = 0x9E3779B9

#: One uint32 word is appended verbatim for integer keys in this range,
#: which makes ``SeedTree.from_seed(s).child(t)`` bit-identical to
#: ``numpy.random.SeedSequence(s).spawn(...)[t]``.
_DIRECT_KEY_LIMIT = 2**32


def _encode_key(key: int | str) -> tuple[int, ...]:
    """Encode one tree key as spawn-key words (uint32 values).

    Integers in ``[0, 2**32)`` encode as themselves — the NumPy
    ``SeedSequence.spawn`` convention, which keeps trial addressing
    compatible with :func:`spawn_streams`.  Strings (scenario names, shard
    namespaces) and out-of-range integers are hashed through SHA-256 into a
    tagged five-word block; the hash is stable across processes and Python
    versions (unlike builtin ``hash``), which the multi-process executors
    rely on.
    """
    if isinstance(key, bool):  # bool is an int subclass; reject to avoid typos
        raise ValueError(f"SeedTree keys must be int or str, got {key!r}")
    if isinstance(key, (int, np.integer)):
        value = int(key)
        if 0 <= value < _DIRECT_KEY_LIMIT:
            return (value,)
        digest = hashlib.sha256(str(value).encode("ascii")).digest()
    elif isinstance(key, str):
        digest = hashlib.sha256(key.encode("utf-8")).digest()
    else:
        raise ValueError(f"SeedTree keys must be int or str, got {key!r}")
    words = tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )
    return (_HASHED_KEY_TAG,) + words


@dataclass(frozen=True)
class SeedTree:
    """Deterministic hierarchy of independent random streams.

    A node is an entropy root plus a spawn-key path — exactly the
    coordinates :class:`numpy.random.SeedSequence` uses for spawned
    children, so child streams are statistically independent by the same
    argument.  The tree gives every unit of work an *address* instead of a
    *position in a spawning sequence*: the stream of trial ``t`` of point
    ``p`` of scenario ``s`` is ``tree.child(s).child(p).trial(t)``,
    identical no matter how many sibling trials exist, which shard the
    trial lands in, or how many worker processes execute the shards.  That
    address-based derivation is what makes the sharded executors in
    :mod:`repro.engine.parallel` bit-deterministic across worker counts.

    Integer keys below ``2**32`` append one spawn-key word verbatim, so the
    first tree level is bit-compatible with the historical
    :func:`spawn_streams` derivation: experiment outputs pinned under that
    scheme are unchanged.  String keys hash through SHA-256 (stable across
    processes) into a tagged word block that cannot collide with any
    directly-encoded trial index.

    Nodes are frozen, hashable and picklable, so a node can be shipped to a
    worker process and expanded there.
    """

    entropy: int
    spawn_key: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.entropy < 0:
            raise ValueError(f"entropy must be non-negative, got {self.entropy}")

    @classmethod
    def from_seed(cls, seed: "int | SeedTree | None") -> "SeedTree":
        """Root a tree at a seed; ``None`` draws OS entropy *once*.

        Materialising the entropy up front (instead of letting every worker
        draw its own) is what keeps unseeded runs internally consistent:
        all shards of one run still derive from a single root.
        """
        if isinstance(seed, SeedTree):
            return seed
        if seed is None:
            return cls(entropy=int(np.random.SeedSequence().entropy))
        return cls(entropy=int(seed))

    def child(self, *keys: int | str) -> "SeedTree":
        """The subtree addressed by ``keys`` (ints and/or strings)."""
        path = self.spawn_key
        for key in keys:
            path = path + _encode_key(key)
        return SeedTree(entropy=self.entropy, spawn_key=path)

    def trial(self, trial: int) -> "SeedTree":
        """The subtree of one trial index (readability alias of ``child``)."""
        if trial < 0:
            raise ValueError(f"trial index must be non-negative, got {trial}")
        return self.child(trial)

    def sequence(self) -> np.random.SeedSequence:
        """This node as a NumPy :class:`~numpy.random.SeedSequence`."""
        return np.random.SeedSequence(entropy=self.entropy, spawn_key=self.spawn_key)

    def generator(self) -> np.random.Generator:
        """A fresh PCG64 generator seeded at this node."""
        return np.random.default_rng(self.sequence())

    def source(self) -> "RandomSource":
        """A fresh :class:`RandomSource` seeded at this node."""
        return RandomSource(self.generator())

    def streams(self, count: int) -> list[np.random.Generator]:
        """Generators for children ``0 .. count-1`` (one per trial)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.trial(t).generator() for t in range(count)]


@dataclass
class RandomSource:
    """Thin convenience wrapper over :class:`numpy.random.Generator`.

    Protocols interact with randomness exclusively through this class so
    that the set of random primitives used by the system is explicit and
    easy to audit.  All methods forward to the wrapped generator.

    Attributes
    ----------
    generator:
        The underlying NumPy generator.
    """

    generator: np.random.Generator

    @classmethod
    def from_seed(cls, seed: int | None = None) -> "RandomSource":
        """Build a source from an integer seed (or OS entropy if ``None``)."""
        return cls(make_rng(seed))

    def coin(self) -> bool:
        """Flip a fair coin; ``True`` means heads."""
        return bool(self.generator.integers(0, 2))

    def biased_coin(self, p_true: float) -> bool:
        """Flip a coin that is ``True`` with probability ``p_true``."""
        if not 0.0 <= p_true <= 1.0:
            raise ValueError(f"p_true must lie in [0, 1], got {p_true}")
        return bool(self.generator.random() < p_true)

    def geometric(self) -> int:
        """Sample one Geom(1/2) random variable.

        Returns the number of fair coin flips needed until the first heads,
        i.e. values 1, 2, 3, ... with P[X = i] = 2^-i.  This matches the
        distribution the paper calls a GRV.
        """
        return int(self.generator.geometric(0.5))

    def geometric_max(self, count: int) -> int:
        """Return the maximum of ``count`` independent Geom(1/2) samples.

        Equivalent to Algorithm 3 (``GRV(k)``) of the paper when called with
        ``count = k``, but vectorised.  ``count = 0`` returns 1, matching the
        algorithm's initialisation ``M <- 1``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return 1
        samples = self.generator.geometric(0.5, size=count)
        return int(samples.max(initial=1))

    def uniform_index(self, n: int) -> int:
        """Pick an index uniformly from ``range(n)``."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return int(self.generator.integers(0, n))

    def ordered_pair(self, n: int) -> tuple[int, int]:
        """Pick an ordered pair of distinct indices uniformly from ``range(n)``.

        This is the random scheduler of the population protocol model: the
        first index is the *initiator*, the second the *responder*.
        """
        if n < 2:
            raise ValueError(f"need at least two agents, got {n}")
        i = int(self.generator.integers(0, n))
        j = int(self.generator.integers(0, n - 1))
        if j >= i:
            j += 1
        return i, j

    def ordered_pairs(self, n: int, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised version of :meth:`ordered_pair` for batched engines.

        Returns two arrays ``(initiators, responders)`` of length ``count``
        with element-wise distinct entries drawn uniformly at random.
        """
        if n < 2:
            raise ValueError(f"need at least two agents, got {n}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        initiators = self.generator.integers(0, n, size=count)
        responders = self.generator.integers(0, n - 1, size=count)
        responders = np.where(responders >= initiators, responders + 1, responders)
        return initiators, responders

    def ordered_pair_matrix(
        self, n: int, rows: int, count: int, dtype: np.dtype | type = np.int64
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``rows`` independent batches of ordered pairs in one call.

        Returns two ``(rows, count)`` arrays ``(initiators, responders)``
        with element-wise distinct entries, each drawn uniformly at random —
        the ensemble engine's scheduler, which draws the pair batches of all
        stacked trials with a single pass through the generator instead of
        one :meth:`ordered_pairs` call per trial.  ``dtype`` narrows the
        index type (the ensemble engine passes int32 whenever the flat
        coordinate space fits, halving the draw bandwidth).
        """
        if n < 2:
            raise ValueError(f"need at least two agents, got {n}")
        if rows < 1:
            raise ValueError(f"rows must be positive, got {rows}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        initiators = self.generator.integers(0, n, size=(rows, count), dtype=dtype)
        responders = self.generator.integers(0, n - 1, size=(rows, count), dtype=dtype)
        # Branchless collision skip (cheaper than np.where at this call rate).
        responders += responders >= initiators
        return initiators, responders

    def geometric_max_array(self, k: int, count: int) -> np.ndarray:
        """Sample ``count`` independent maxima of ``k`` Geom(1/2) draws each.

        Uses the closed-form inverse CDF ``F(m) = (1 - 2^-m)^k`` — one
        uniform draw per sample instead of ``k`` geometric draws — which is
        what makes per-interaction GRV regeneration affordable inside the
        stacked ensemble engine.  ``1 - u^(1/k)`` is evaluated as
        ``-expm1(log(u) / k)`` so the tail stays finite for ``u`` near 1.
        Distribution-identical to ``geometric(0.5, (count, k)).max(axis=1)``
        but consumes a different slice of the stream.
        """
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.float64)
        u = self.generator.random(count)
        with np.errstate(divide="ignore"):
            samples = np.ceil(-np.log2(-np.expm1(np.log(u) / k)))
        return np.maximum(samples, 1.0)

    def shuffled(self, items: Sequence[int]) -> list[int]:
        """Return a shuffled copy of ``items``."""
        arr = np.array(items, dtype=np.int64)
        self.generator.shuffle(arr)
        return [int(x) for x in arr]

    def spawn(self, count: int) -> Iterator["RandomSource"]:
        """Yield ``count`` independent child sources."""
        for child in self.generator.bit_generator.seed_seq.spawn(count):  # type: ignore[union-attr]
            yield RandomSource(np.random.default_rng(child))
