"""Exception hierarchy for the simulation engine.

All engine-level failures derive from :class:`EngineError` so that callers
can distinguish misuse of the simulation substrate from ordinary Python
errors raised by protocol code.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all errors raised by :mod:`repro.engine`."""


class EmptyPopulationError(EngineError):
    """Raised when an operation requires at least two agents.

    The population protocol model schedules interactions between two
    *distinct* agents, so a population of fewer than two agents cannot
    make progress.
    """


class UnknownAgentError(EngineError):
    """Raised when an agent id does not refer to a live agent."""


class InvalidScheduleError(EngineError):
    """Raised when an adversary schedule is inconsistent.

    Examples include events scheduled at negative parallel times or a
    removal that would leave fewer than two agents alive.
    """


class ConfigurationError(EngineError):
    """Raised when simulator or experiment configuration is invalid."""


class UnsupportedEngineError(ConfigurationError):
    """Raised when a workload only supports a subset of the engines.

    Distinct from a plain :class:`ConfigurationError` so that sweeps (the
    CLI's ``all --engine X`` mode) can skip engine-incompatible experiments
    while still treating genuine misconfigurations as fatal.
    """


class CheckpointError(EngineError):
    """Raised when a checkpoint cannot be written, read, or applied.

    Covers on-disk corruption (bad magic, truncated payload, checksum
    mismatch, unknown schema version) as well as restore-time mismatches
    (a checkpoint taken from a differently configured engine).  Resuming
    from a damaged checkpoint must fail loudly with this error — never
    silently continue from wrong state.
    """


class ProtocolContractError(EngineError):
    """Raised when a protocol violates the engine's interaction contract.

    The engine expects :meth:`repro.engine.protocol.Protocol.interact` to
    return a pair of states.  Returning anything else (``None``, a single
    state, a triple, ...) raises this error so that bugs surface near the
    offending protocol rather than corrupting the population silently.
    """
