"""Multi-trial orchestration.

Every data point in the paper's evaluation aggregates 96 independent
simulation runs.  The :class:`TrialRunner` reproduces this pattern: it fans a
root seed out into independent per-trial random streams, builds a fresh
simulator per trial via a user-supplied factory, runs them, and aggregates
the recorded series (element-wise min / median / max across trials).

Trials are independent by construction (each has its own spawned random
stream), so the runner can execute them either synchronously in-process
(the default — the experiment presets are sized so that a full figure
regenerates in minutes on a laptop) or fanned out over a
:mod:`multiprocessing` pool via the opt-in ``processes`` parameter.  Both
modes produce identical outcomes for the same root seed.

For workloads that fit the struct-of-arrays engines there is a third mode:
pass an :class:`EnsembleSpec` and the runner executes *all* trials in one
stacked pass on the :class:`repro.engine.ensemble_engine.EnsembleSimulator`
— no per-trial Python loop at all — while still returning the same
``list[TrialOutcome]`` shape as the looped modes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.engine.api import RunResult, matrix_quantiles
from repro.engine.rng import RandomSource, spawn_streams
from repro.engine.simulator import SimulationResult

__all__ = [
    "TrialOutcome",
    "AggregatedSeries",
    "EnsembleSpec",
    "TrialRunner",
    "aggregate_series",
    "run_engine_trials",
]


@dataclass
class TrialOutcome:
    """Result of a single trial: the simulation summary plus extracted data.

    ``result`` is the engine's run summary — a
    :class:`repro.engine.simulator.SimulationResult` for looped trials, a
    per-trial :class:`repro.engine.api.RunResult` for ensemble trials.
    """

    trial: int
    seed_stream: int
    result: RunResult
    data: dict[str, Any] = field(default_factory=dict)


@dataclass
class AggregatedSeries:
    """Element-wise aggregation of one numeric series across trials.

    ``minimum``, ``median`` and ``maximum`` have one entry per time index and
    are computed across trials, which is exactly how the paper's plots
    report "Minimum / Median / Maximum" over its 96 runs.
    """

    name: str
    index: list[float]
    minimum: list[float]
    median: list[float]
    maximum: list[float]

    def as_dict(self) -> dict[str, list[float]]:
        return {
            "index": list(self.index),
            "minimum": list(self.minimum),
            "median": list(self.median),
            "maximum": list(self.maximum),
        }


def aggregate_series(
    name: str,
    index: Sequence[float],
    per_trial_values: Sequence[Sequence[float]],
) -> AggregatedSeries:
    """Aggregate per-trial series element-wise into min/median/max.

    Trials may have different lengths (e.g. early-stopped runs); the
    aggregate is truncated to the shortest trial so that every reported
    point covers all trials.  The columns are reduced in one
    :func:`repro.engine.api.matrix_quantiles` partition pass over the
    stacked ``(trials, length)`` matrix rather than a Python loop per time
    index; the output is unchanged — plain float lists, with the
    even-count median averaging the two middle values exactly like
    ``statistics.median``.
    """
    if not per_trial_values:
        return AggregatedSeries(name=name, index=[], minimum=[], median=[], maximum=[])
    length = min(len(v) for v in per_trial_values)
    length = min(length, len(index))
    stacked = np.array(
        [np.asarray(values, dtype=float)[:length] for values in per_trial_values]
    )
    minima, medians, maxima = matrix_quantiles(stacked.T)
    return AggregatedSeries(
        name=name,
        index=[float(x) for x in index[:length]],
        minimum=minima.tolist(),
        median=medians.tolist(),
        maximum=maxima.tolist(),
    )


def run_engine_trials(
    engine_factory: Callable[[str, RandomSource, int | None], Any],
    *,
    engine: str,
    trials: int,
    seed: int | None,
    parallel_time: int,
    snapshot_every: int = 1,
) -> list[dict[str, list[float]]]:
    """Run ``trials`` repetitions of one workload and return per-trial series.

    This is the one place that knows how a multi-trial workload maps onto an
    engine: the looped engines get one freshly built engine per trial, each
    with its own random stream spawned from the root ``seed`` (identical to
    what :class:`TrialRunner` does), while the ``"ensemble"`` engine gets the
    root seed directly and runs all trials in one stacked pass.

    ``engine_factory(engine_name, rng, trials)`` builds the engine; it
    receives ``trials`` only in ensemble mode (``None`` otherwise, where the
    engine runs exactly one trial).  Each returned entry is one trial's
    snapshot series (:meth:`repro.engine.api.RunResult.series` columns), in
    trial order — the same shape regardless of the execution mode.
    """
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    if engine == "ensemble":
        simulator = engine_factory(engine, RandomSource.from_seed(seed), trials)
        result = simulator.run(parallel_time, snapshot_every=snapshot_every)
        return [trial_result.series() for trial_result in result.trial_results]
    all_series = []
    for generator in spawn_streams(seed, trials):
        simulator = engine_factory(engine, RandomSource(generator), None)
        result = simulator.run(parallel_time, snapshot_every=snapshot_every)
        all_series.append(result.series())
    return all_series


@dataclass(frozen=True)
class EnsembleSpec:
    """Workload description for the stacked single-pass trial mode.

    Passing one of these to :class:`TrialRunner` replaces the per-trial
    loop with a single :class:`repro.engine.ensemble_engine.
    EnsembleSimulator` run holding all trials as ``(trials, n)`` stacked
    arrays.

    Attributes
    ----------
    protocol:
        A scalar protocol with a registered vectorised counterpart, or a
        :class:`repro.engine.batch_engine.VectorizedProtocol` directly.
    n:
        Population size of every trial.
    parallel_time:
        Horizon each trial runs for.
    snapshot_every / resize_schedule / initial_arrays / sub_batches:
        Forwarded to the ensemble engine (see
        :func:`repro.engine.registry.make_engine`).
    data_fn:
        Optional extractor ``(RunResult) -> dict`` building each outcome's
        ``data``; defaults to the result's :meth:`~repro.engine.api.
        RunResult.series` columns, which is what
        :meth:`TrialRunner.run_and_aggregate` consumes.
    """

    protocol: Any
    n: int
    parallel_time: int
    snapshot_every: int = 1
    resize_schedule: tuple[tuple[int, int], ...] = ()
    initial_arrays: Mapping[str, np.ndarray] | None = None
    sub_batches: int = 8
    data_fn: Callable[[RunResult], dict[str, Any]] | None = None


def _execute_trial(
    job: tuple[Callable[..., tuple[SimulationResult, dict[str, Any]]], int, np.random.Generator],
) -> tuple[int, SimulationResult, dict[str, Any]]:
    """Run one trial; module-level so that worker processes can unpickle it."""
    trial_fn, trial, generator = job
    result, data = trial_fn(trial, RandomSource(generator))
    return trial, result, data


class TrialRunner:
    """Runs several independent trials of the same experiment.

    Parameters
    ----------
    trial_fn:
        Callable ``(trial_index, rng) -> (SimulationResult, data)`` that
        builds and runs one simulation.  ``data`` is a free-form dictionary
        of extracted series (e.g. the estimate min/median/max over time).
        Omit it (pass ``None``) when running in ensemble mode.
    trials:
        Number of independent repetitions.
    seed:
        Root seed; looped modes spawn per-trial streams from it, the
        ensemble mode feeds it to the stacked engine's single stream.
    processes:
        Opt-in multiprocessing: with a value greater than 1, trials are
        fanned out over that many worker processes.  ``trial_fn`` (and the
        data it returns) must then be picklable — in practice, a
        module-level function.  ``None`` or 1 keeps the historical
        synchronous single-process behaviour; results are identical either
        way because every trial owns its spawned random stream.
    ensemble:
        Opt-in stacked execution: an :class:`EnsembleSpec` describing the
        workload.  All trials then run in one
        :class:`repro.engine.ensemble_engine.EnsembleSimulator` pass — the
        fastest mode for vectorisable protocols, and the outcomes keep the
        exact ``list[TrialOutcome]`` shape of the looped modes.  Mutually
        exclusive with ``trial_fn`` and ``processes``.
    """

    def __init__(
        self,
        trial_fn: Callable[[int, RandomSource], tuple[SimulationResult, dict[str, Any]]]
        | None = None,
        *,
        trials: int,
        seed: int | None = None,
        processes: int | None = None,
        ensemble: EnsembleSpec | None = None,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be at least 1, got {trials}")
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be at least 1, got {processes}")
        if ensemble is None and trial_fn is None:
            raise ValueError("provide either trial_fn or an EnsembleSpec")
        if ensemble is not None:
            if trial_fn is not None:
                raise ValueError(
                    "trial_fn and ensemble are mutually exclusive; the ensemble "
                    "spec already describes the whole workload"
                )
            if processes is not None:
                raise ValueError(
                    "processes does not apply to ensemble mode; all trials run "
                    "in one stacked engine pass"
                )
        self._trial_fn = trial_fn
        self.trials = trials
        self.seed = seed
        self.processes = processes
        self.ensemble = ensemble

    def run(self) -> list[TrialOutcome]:
        """Execute all trials and return their outcomes in trial order."""
        if self.ensemble is not None:
            return self._run_ensemble(self.ensemble)
        streams = spawn_streams(self.seed, self.trials)
        jobs = [
            (self._trial_fn, trial, generator) for trial, generator in enumerate(streams)
        ]
        if self.processes is not None and self.processes > 1:
            with multiprocessing.Pool(min(self.processes, self.trials)) as pool:
                triples = pool.map(_execute_trial, jobs)
        else:
            triples = [_execute_trial(job) for job in jobs]
        return [
            TrialOutcome(trial=trial, seed_stream=trial, result=result, data=data)
            for trial, result, data in triples
        ]

    def _run_ensemble(self, spec: EnsembleSpec) -> list[TrialOutcome]:
        """Run all trials as one stacked ensemble pass."""
        from repro.engine.registry import make_engine

        engine = make_engine(
            "ensemble",
            spec.protocol,
            spec.n,
            trials=self.trials,
            seed=self.seed,
            resize_schedule=spec.resize_schedule,
            initial_arrays=dict(spec.initial_arrays)
            if spec.initial_arrays is not None
            else None,
            sub_batches=spec.sub_batches,
        )
        result = engine.run(spec.parallel_time, snapshot_every=spec.snapshot_every)
        outcomes = []
        for trial, trial_result in enumerate(result.trial_results):
            data = (
                spec.data_fn(trial_result)
                if spec.data_fn is not None
                else trial_result.series()
            )
            outcomes.append(
                TrialOutcome(
                    trial=trial, seed_stream=trial, result=trial_result, data=data
                )
            )
        return outcomes

    def run_and_aggregate(
        self,
        series_key: str,
        index_key: str = "parallel_time",
    ) -> tuple[list[TrialOutcome], AggregatedSeries]:
        """Run all trials and aggregate ``data[series_key]`` across them.

        The index (x-axis) is taken from the first trial's ``data[index_key]``.
        """
        outcomes = self.run()
        index = outcomes[0].data.get(index_key, [])
        per_trial = [outcome.data[series_key] for outcome in outcomes]
        return outcomes, aggregate_series(series_key, index, per_trial)
