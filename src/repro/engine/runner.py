"""Multi-trial orchestration.

Every data point in the paper's evaluation aggregates 96 independent
simulation runs.  The :class:`TrialRunner` reproduces this pattern: it fans a
root seed out into independent per-trial random streams, builds a fresh
simulator per trial via a user-supplied factory, runs them, and aggregates
the recorded series (element-wise min / median / max across trials).

Trials are independent by construction (each has its own spawned random
stream), so the runner can execute them either synchronously in-process
(the default — the experiment presets are sized so that a full figure
regenerates in minutes on a laptop) or fanned out over a
:mod:`multiprocessing` pool via the opt-in ``processes`` parameter.  Both
modes produce identical outcomes for the same root seed.
"""

from __future__ import annotations

import multiprocessing
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.rng import RandomSource, spawn_streams
from repro.engine.simulator import SimulationResult

__all__ = ["TrialOutcome", "AggregatedSeries", "TrialRunner", "aggregate_series"]


@dataclass
class TrialOutcome:
    """Result of a single trial: the simulation summary plus extracted data."""

    trial: int
    seed_stream: int
    result: SimulationResult
    data: dict[str, Any] = field(default_factory=dict)


@dataclass
class AggregatedSeries:
    """Element-wise aggregation of one numeric series across trials.

    ``minimum``, ``median`` and ``maximum`` have one entry per time index and
    are computed across trials, which is exactly how the paper's plots
    report "Minimum / Median / Maximum" over its 96 runs.
    """

    name: str
    index: list[float]
    minimum: list[float]
    median: list[float]
    maximum: list[float]

    def as_dict(self) -> dict[str, list[float]]:
        return {
            "index": list(self.index),
            "minimum": list(self.minimum),
            "median": list(self.median),
            "maximum": list(self.maximum),
        }


def aggregate_series(
    name: str,
    index: Sequence[float],
    per_trial_values: Sequence[Sequence[float]],
) -> AggregatedSeries:
    """Aggregate per-trial series element-wise into min/median/max.

    Trials may have different lengths (e.g. early-stopped runs); the
    aggregate is truncated to the shortest trial so that every reported
    point covers all trials.
    """
    if not per_trial_values:
        return AggregatedSeries(name=name, index=[], minimum=[], median=[], maximum=[])
    length = min(len(v) for v in per_trial_values)
    length = min(length, len(index))
    mins, meds, maxs = [], [], []
    for t in range(length):
        column = [float(values[t]) for values in per_trial_values]
        mins.append(min(column))
        meds.append(float(statistics.median(column)))
        maxs.append(max(column))
    return AggregatedSeries(
        name=name,
        index=[float(x) for x in index[:length]],
        minimum=mins,
        median=meds,
        maximum=maxs,
    )


def _execute_trial(
    job: tuple[Callable[..., tuple[SimulationResult, dict[str, Any]]], int, np.random.Generator],
) -> tuple[int, SimulationResult, dict[str, Any]]:
    """Run one trial; module-level so that worker processes can unpickle it."""
    trial_fn, trial, generator = job
    result, data = trial_fn(trial, RandomSource(generator))
    return trial, result, data


class TrialRunner:
    """Runs several independent trials of the same experiment.

    Parameters
    ----------
    trial_fn:
        Callable ``(trial_index, rng) -> (SimulationResult, data)`` that
        builds and runs one simulation.  ``data`` is a free-form dictionary
        of extracted series (e.g. the estimate min/median/max over time).
    trials:
        Number of independent repetitions.
    seed:
        Root seed; per-trial streams are spawned from it.
    processes:
        Opt-in multiprocessing: with a value greater than 1, trials are
        fanned out over that many worker processes.  ``trial_fn`` (and the
        data it returns) must then be picklable — in practice, a
        module-level function.  ``None`` or 1 keeps the historical
        synchronous single-process behaviour; results are identical either
        way because every trial owns its spawned random stream.
    """

    def __init__(
        self,
        trial_fn: Callable[[int, RandomSource], tuple[SimulationResult, dict[str, Any]]],
        *,
        trials: int,
        seed: int | None = None,
        processes: int | None = None,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be at least 1, got {trials}")
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be at least 1, got {processes}")
        self._trial_fn = trial_fn
        self.trials = trials
        self.seed = seed
        self.processes = processes

    def run(self) -> list[TrialOutcome]:
        """Execute all trials and return their outcomes in trial order."""
        streams = spawn_streams(self.seed, self.trials)
        jobs = [
            (self._trial_fn, trial, generator) for trial, generator in enumerate(streams)
        ]
        if self.processes is not None and self.processes > 1:
            with multiprocessing.Pool(min(self.processes, self.trials)) as pool:
                triples = pool.map(_execute_trial, jobs)
        else:
            triples = [_execute_trial(job) for job in jobs]
        return [
            TrialOutcome(trial=trial, seed_stream=trial, result=result, data=data)
            for trial, result, data in triples
        ]

    def run_and_aggregate(
        self,
        series_key: str,
        index_key: str = "parallel_time",
    ) -> tuple[list[TrialOutcome], AggregatedSeries]:
        """Run all trials and aggregate ``data[series_key]`` across them.

        The index (x-axis) is taken from the first trial's ``data[index_key]``.
        """
        outcomes = self.run()
        index = outcomes[0].data.get(index_key, [])
        per_trial = [outcome.data[series_key] for outcome in outcomes]
        return outcomes, aggregate_series(series_key, index, per_trial)
