"""Multi-trial orchestration.

Every data point in the paper's evaluation aggregates 96 independent
simulation runs.  The :class:`TrialRunner` reproduces this pattern: it fans a
root seed out into independent per-trial random streams, builds a fresh
simulator per trial via a user-supplied factory, runs them, and aggregates
the recorded series (element-wise min / median / max across trials).

Trials are independent by construction — every trial's random stream is
derived from its *address* in a :class:`repro.engine.rng.SeedTree`
(``root seed -> trial index``), not from its position in an execution
schedule — so the runner can execute them synchronously in-process (the
default — the experiment presets are sized so that a full figure
regenerates in minutes on a laptop) or shard them across a process pool
via the opt-in ``workers`` parameter (see :mod:`repro.engine.parallel`).
All modes produce bit-identical outcomes for the same root seed.

For workloads that fit the struct-of-arrays engines there is a stacked
mode: pass an :class:`EnsembleSpec` and the runner executes trials as
``(trials, n)`` stacked state on the :class:`repro.engine.ensemble_engine.
EnsembleSimulator` — no per-trial Python loop at all — while still
returning the same ``list[TrialOutcome]`` shape as the looped modes.
Combined with ``workers``, the stack is split into row-shards (layout
independent of the worker count, each shard's stream derived from the
seed tree) and the shards run across the pool.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.engine.api import RunResult, matrix_quantiles
from repro.engine.checkpoint import (
    CheckpointInterrupted,
    read_checkpoint,
    write_checkpoint,
)
from repro.engine.errors import CheckpointError, ConfigurationError
from repro.engine.options import ExecutionOptions
from repro.engine.parallel import (
    ShardTiming,
    execute_shards,
    merge_shard_results,
    plan_shards,
    resolve_workers,
)
from repro.engine.rng import RandomSource, SeedTree, spawn_streams
from repro.engine.simulator import SimulationResult

__all__ = [
    "TrialOutcome",
    "AggregatedSeries",
    "EnsembleSpec",
    "SHARD_NAMESPACE",
    "TrialRunner",
    "aggregate_series",
    "run_engine_trials",
]


@dataclass
class TrialOutcome:
    """Result of a single trial: the simulation summary plus extracted data.

    ``result`` is the engine's run summary — a
    :class:`repro.engine.simulator.SimulationResult` for looped trials, a
    per-trial :class:`repro.engine.api.RunResult` for ensemble trials.
    """

    trial: int
    seed_stream: int
    result: RunResult
    data: dict[str, Any] = field(default_factory=dict)


@dataclass
class AggregatedSeries:
    """Element-wise aggregation of one numeric series across trials.

    ``minimum``, ``median`` and ``maximum`` have one entry per time index and
    are computed across trials, which is exactly how the paper's plots
    report "Minimum / Median / Maximum" over its 96 runs.
    """

    name: str
    index: list[float]
    minimum: list[float]
    median: list[float]
    maximum: list[float]

    def as_dict(self) -> dict[str, list[float]]:
        return {
            "index": list(self.index),
            "minimum": list(self.minimum),
            "median": list(self.median),
            "maximum": list(self.maximum),
        }


def aggregate_series(
    name: str,
    index: Sequence[float],
    per_trial_values: Sequence[Sequence[float]],
) -> AggregatedSeries:
    """Aggregate per-trial series element-wise into min/median/max.

    Trials may have different lengths (e.g. early-stopped runs); the
    aggregate is truncated to the shortest trial so that every reported
    point covers all trials.  The columns are reduced in one
    :func:`repro.engine.api.matrix_quantiles` partition pass over the
    stacked ``(trials, length)`` matrix rather than a Python loop per time
    index; the output is unchanged — plain float lists, with the
    even-count median averaging the two middle values exactly like
    ``statistics.median``.
    """
    if not per_trial_values:
        return AggregatedSeries(name=name, index=[], minimum=[], median=[], maximum=[])
    length = min(len(v) for v in per_trial_values)
    length = min(length, len(index))
    stacked = np.array(
        [np.asarray(values, dtype=float)[:length] for values in per_trial_values]
    )
    minima, medians, maxima = matrix_quantiles(stacked.T)
    return AggregatedSeries(
        name=name,
        index=[float(x) for x in index[:length]],
        minimum=minima.tolist(),
        median=medians.tolist(),
        maximum=maxima.tolist(),
    )


#: Seed-tree namespace of the stacked ensemble row-shards: shard streams
#: are addressed ``tree.child(SHARD_NAMESPACE, first_trial)``, so a
#: shard's stream depends on which trials it covers, never on which
#: worker runs it or how many siblings exist.
SHARD_NAMESPACE = "shard"


def _run_looped_engine_shard(payload: dict[str, Any]) -> list[dict[str, list[float]]]:
    """Run one row-shard of looped-engine trials; module-level for pickling.

    Each trial in the shard gets the stream at its own tree address
    (``tree.trial(t)``) — bit-identical to the serial per-trial loop no
    matter how trials are grouped into shards.
    """
    tree: SeedTree = payload["tree"]
    all_series = []
    for trial in range(payload["start"], payload["stop"]):
        simulator = payload["factory"](payload["engine"], tree.trial(trial).source(), None)
        result = simulator.run(
            payload["parallel_time"], snapshot_every=payload["snapshot_every"]
        )
        all_series.append(result.series())
    return all_series


def _run_ensemble_engine_shard(payload: dict[str, Any]) -> list[dict[str, list[float]]]:
    """Run one row-shard of an ensemble workload as its own stacked engine."""
    tree: SeedTree = payload["tree"]
    rng = tree.child(SHARD_NAMESPACE, payload["start"]).source()
    simulator = payload["factory"](
        "ensemble", rng, payload["stop"] - payload["start"]
    )
    result = simulator.run(
        payload["parallel_time"], snapshot_every=payload["snapshot_every"]
    )
    return [trial_result.series() for trial_result in result.trial_results]


# --------------------------------------------------------------- checkpoints
#
# Long-horizon runs segment each shard's engine at multiples of
# ``checkpoint_every`` parallel time: roughly every ``checkpoint_every``
# of parallel time (mid-trial segment boundaries, plus trial boundaries
# once the cadence has elapsed since the last write) the shard writes
# one atomic, checksummed ``shard_<start>-<stop>.ckpt`` file (see
# :mod:`repro.engine.checkpoint`) holding everything needed to continue —
# the series of already-finished trials, the in-flight engine's
# :meth:`~repro.engine.api.Engine.checkpoint_payload`, and the partial
# segment series of the in-flight trial.  Because every random stream is
# derived from a seed-tree *address* and engine counters persist across
# ``run()`` calls, a resumed shard replays bit-identically to an
# uninterrupted one.  The parent writes a ``manifest.json`` pinning the
# workload; resuming against a different workload fails loudly with
# :class:`~repro.engine.errors.CheckpointError` instead of silently mixing
# runs.

#: Name of the workload manifest inside a checkpoint directory.
CHECKPOINT_MANIFEST = "manifest.json"


def _shard_checkpoint_path(directory: str | Path, start: int, stop: int) -> Path:
    """The checkpoint file of the shard covering trials ``[start, stop)``."""
    return Path(directory) / f"shard_{start}-{stop}.ckpt"


def _shard_workload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The workload fingerprint pinned into a shard checkpoint.

    A checkpoint is a *same-workload* recovery mechanism, not a migration
    format: every knob that shapes the shard's trajectory (engine, trial
    range, horizon, cadences, root seed) is recorded and must match
    exactly on resume.
    """
    return {
        "engine": payload["engine"],
        "start": int(payload["start"]),
        "stop": int(payload["stop"]),
        "parallel_time": int(payload["parallel_time"]),
        "snapshot_every": int(payload["snapshot_every"]),
        "checkpoint_every": int(payload["checkpoint_every"]),
        "seed": payload["seed"],
    }


def _load_shard_checkpoint(
    path: Path, expected_workload: Mapping[str, Any]
) -> dict[str, Any] | None:
    """Read one shard checkpoint; ``None`` when absent (fresh start).

    A present-but-corrupt file and a workload mismatch both raise
    :class:`~repro.engine.errors.CheckpointError` — a resume must never
    silently fall back to recomputing (masking data loss) or continue a
    different run's state.
    """
    if not path.exists():
        return None
    state = read_checkpoint(path, kind="shard")
    if state.get("workload") != dict(expected_workload):
        raise CheckpointError(
            f"shard checkpoint {path.name} was taken for a different workload "
            f"({state.get('workload')!r} != {dict(expected_workload)!r})"
        )
    return state


def _write_shard_checkpoint(
    path: Path,
    state: dict[str, Any],
    *,
    writes: int,
    interrupt_after: int | None,
) -> int:
    """Persist one shard checkpoint; returns the updated write count.

    ``interrupt_after`` is the deterministic fault-injection knob: after
    the N-th *completed* write this raises
    :class:`~repro.engine.checkpoint.CheckpointInterrupted`, so tests and
    CI can kill a run at an exactly reproducible point and resume from a
    checkpoint that is guaranteed to be on disk.
    """
    write_checkpoint(path, state, kind="shard")
    writes += 1
    if interrupt_after is not None and writes >= interrupt_after:
        raise CheckpointInterrupted(
            f"injected interruption after checkpoint write {writes} ({path.name})"
        )
    return writes


def _concat_series(
    segments: Sequence[Mapping[str, list[float]]],
) -> dict[str, list[float]]:
    """Stitch per-segment series columns into one continuous series.

    Engine counters persist across ``run()`` calls and each call returns
    only its own snapshots, so concatenation reproduces exactly the series
    of one uninterrupted run over the whole horizon.
    """
    if not segments:
        return {}
    return {
        key: [value for segment in segments for value in segment[key]]
        for key in segments[0]
    }


def _run_looped_engine_shard_checkpointed(
    payload: dict[str, Any],
) -> list[dict[str, list[float]]]:
    """Checkpointed variant of :func:`_run_looped_engine_shard`.

    Trials run in order; the engine of the in-flight trial is segmented at
    multiples of ``checkpoint_every`` parallel time.  A checkpoint is
    written at every mid-trial segment boundary, and at the first trial
    boundary once at least ``checkpoint_every`` parallel time has accrued
    since the last write — so when trials are shorter than the cadence,
    write frequency still follows the cadence instead of the trial count.
    The final ``done`` checkpoint is always written.  Streams are still
    addressed ``tree.trial(t)`` and the restored RNG state overwrites
    whatever the factory drew, so an interrupted-and-resumed shard is
    bit-identical to an uninterrupted one.
    """
    tree: SeedTree = payload["tree"]
    start, stop = payload["start"], payload["stop"]
    parallel_time = payload["parallel_time"]
    snapshot_every = payload["snapshot_every"]
    checkpoint_every = payload["checkpoint_every"]
    interrupt_after = payload.get("interrupt_after")
    workload = _shard_workload(payload)
    path = _shard_checkpoint_path(payload["checkpoint_dir"], start, stop)

    completed: list[dict[str, list[float]]] = []
    trial = start
    engine_payload: dict[str, Any] | None = None
    segments: list[dict[str, list[float]]] = []
    resume_from = payload.get("resume_from")
    if resume_from is not None:
        state = _load_shard_checkpoint(
            _shard_checkpoint_path(resume_from, start, stop), workload
        )
        if state is not None:
            if state["done"]:
                return state["completed"]
            completed = state["completed"]
            trial = state["trial"]
            engine_payload = state["engine_payload"]
            segments = state["segments"]

    writes = 0
    since_last_write = 0
    while trial < stop:
        simulator = payload["factory"](payload["engine"], tree.trial(trial).source(), None)
        if engine_payload is not None:
            simulator.apply_checkpoint_payload(engine_payload)
            engine_payload = None
        else:
            segments = []
        while simulator.parallel_time < parallel_time:
            step = min(checkpoint_every, parallel_time - simulator.parallel_time)
            result = simulator.run(step, snapshot_every=snapshot_every)
            segments.append(result.series())
            since_last_write += step
            if simulator.parallel_time < parallel_time:
                writes = _write_shard_checkpoint(
                    path,
                    {
                        "workload": workload,
                        "completed": completed,
                        "trial": trial,
                        # copy=False: the payload is pickled by the write
                        # below, before the simulator advances again.
                        "engine_payload": simulator.checkpoint_payload(copy=False),
                        "segments": segments,
                        "done": False,
                    },
                    writes=writes,
                    interrupt_after=interrupt_after,
                )
                since_last_write = 0
        completed.append(_concat_series(segments))
        segments = []
        trial += 1
        if trial >= stop or since_last_write >= checkpoint_every:
            writes = _write_shard_checkpoint(
                path,
                {
                    "workload": workload,
                    "completed": completed,
                    "trial": trial,
                    "engine_payload": None,
                    "segments": [],
                    "done": trial >= stop,
                },
                writes=writes,
                interrupt_after=interrupt_after,
            )
            since_last_write = 0
    return completed


def _run_ensemble_engine_shard_checkpointed(
    payload: dict[str, Any],
) -> list[dict[str, list[float]]]:
    """Checkpointed variant of :func:`_run_ensemble_engine_shard`.

    The whole shard is one stacked engine, so the checkpoint carries the
    stack's engine payload plus the per-segment lists of per-trial series;
    the per-trial view is stitched only once the horizon is reached.
    """
    tree: SeedTree = payload["tree"]
    start, stop = payload["start"], payload["stop"]
    parallel_time = payload["parallel_time"]
    snapshot_every = payload["snapshot_every"]
    checkpoint_every = payload["checkpoint_every"]
    interrupt_after = payload.get("interrupt_after")
    workload = _shard_workload(payload)
    path = _shard_checkpoint_path(payload["checkpoint_dir"], start, stop)

    segments: list[list[dict[str, list[float]]]] = []
    engine_payload: dict[str, Any] | None = None
    resume_from = payload.get("resume_from")
    if resume_from is not None:
        state = _load_shard_checkpoint(
            _shard_checkpoint_path(resume_from, start, stop), workload
        )
        if state is not None:
            segments = state["segments"]
            engine_payload = state["engine_payload"]
            if state["done"]:
                return [
                    _concat_series([segment[i] for segment in segments])
                    for i in range(stop - start)
                ]

    rng = tree.child(SHARD_NAMESPACE, start).source()
    simulator = payload["factory"]("ensemble", rng, stop - start)
    if engine_payload is not None:
        simulator.apply_checkpoint_payload(engine_payload)
    writes = 0
    while simulator.parallel_time < parallel_time:
        step = min(checkpoint_every, parallel_time - simulator.parallel_time)
        result = simulator.run(step, snapshot_every=snapshot_every)
        segments.append([tr.series() for tr in result.trial_results])
        done = simulator.parallel_time >= parallel_time
        writes = _write_shard_checkpoint(
            path,
            {
                "workload": workload,
                # copy=False: pickled by the write below, before the next segment.
                "engine_payload": None if done else simulator.checkpoint_payload(copy=False),
                "segments": segments,
                "done": done,
            },
            writes=writes,
            interrupt_after=interrupt_after,
        )
    return [
        _concat_series([segment[i] for segment in segments])
        for i in range(stop - start)
    ]


def _prepare_checkpoint_run(
    checkpoint_dir: Path,
    resume_from: Path | None,
    manifest: dict[str, Any],
) -> None:
    """Create the checkpoint directory and pin/validate its manifest.

    The manifest records the full workload; an existing manifest (in the
    resume source or the target directory) that disagrees means the caller
    is about to mix two different runs' checkpoints — a
    :class:`~repro.engine.errors.CheckpointError`, never a silent restart.
    """

    def check(path: Path) -> None:
        if not path.exists():
            return
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint manifest {path}: {exc}") from exc
        if existing != manifest:
            raise CheckpointError(
                f"checkpoint manifest {path} does not match this workload "
                f"({existing!r} != {manifest!r}); checkpoints are same-workload "
                "recovery only"
            )

    if resume_from is not None:
        check(resume_from / CHECKPOINT_MANIFEST)
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    target = checkpoint_dir / CHECKPOINT_MANIFEST
    check(target)
    if not target.exists():
        fd, tmp = tempfile.mkstemp(
            prefix=CHECKPOINT_MANIFEST + ".", suffix=".tmp", dir=checkpoint_dir
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(manifest, indent=2, sort_keys=True))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def run_engine_trials(
    engine_factory: Callable[[str, RandomSource, int | None], Any],
    *,
    engine: str,
    trials: int,
    seed: int | None,
    parallel_time: int,
    snapshot_every: int = 1,
    options: "ExecutionOptions | None" = None,
    workers: int | str | None = None,
    timing_sink: list[ShardTiming] | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
    resume_from: str | Path | None = None,
    interrupt_after: int | None = None,
) -> list[dict[str, list[float]]]:
    """Run ``trials`` repetitions of one workload and return per-trial series.

    This is the one place that knows how a multi-trial workload maps onto an
    engine: the looped engines get one freshly built engine per trial, each
    with its own random stream derived from the root ``seed`` (identical to
    what :class:`TrialRunner` does), while the ``"ensemble"`` engine stacks
    trials into struct-of-arrays passes.

    ``engine_factory(engine_name, rng, trials)`` builds the engine; it
    receives ``trials`` only in ensemble mode (``None`` otherwise, where the
    engine runs exactly one trial).  Each returned entry is one trial's
    snapshot series (:meth:`repro.engine.api.RunResult.series` columns), in
    trial order — the same shape regardless of the execution mode.

    ``workers`` selects the sharded execution path of
    :mod:`repro.engine.parallel`: ``None`` (default) keeps the historical
    serial behaviour, ``1`` runs the sharded path serially in-process, and
    higher counts (or ``"auto"``) fan the shards over a process pool —
    ``engine_factory`` must then be picklable (a module-level function or
    :func:`functools.partial` over one).  The shard layout is independent
    of the worker count, and every random stream is derived from its seed-
    tree address, so any two worker counts produce bit-identical per-trial
    results.  For the looped engines the sharded path is additionally
    bit-identical to ``workers=None``; the stacked ensemble engine reseeds
    per shard, so its sharded results differ from the single-stack
    ``workers=None`` run (statistically equivalent, pinned by the
    conformance tests).  ``timing_sink``, when given, receives one
    :class:`~repro.engine.parallel.ShardTiming` per executed shard.

    Long-horizon runs opt into crash recovery with ``checkpoint_every=C``
    (parallel time between checkpoints, a multiple of ``snapshot_every``)
    and ``checkpoint_dir=D``: each shard persists an atomic, checksummed
    ``shard_<start>-<stop>.ckpt`` roughly every ``C`` of parallel time (an
    interrupted run loses at most about that much progress per shard), and
    a ``manifest.json`` pins the workload.  ``resume_from=D`` continues an
    interrupted run from those files (``checkpoint_dir`` defaults to the
    resume directory); missing files mean a fresh start, corrupt files or
    a workload mismatch raise :class:`~repro.engine.errors.
    CheckpointError`.  A resumed run is bit-identical to an uninterrupted
    one.  Checkpointing always uses the sharded execution path (serially
    when ``workers`` is ``None``), so a checkpointed ensemble run matches
    ``workers=1``, not the single-stack mode.  ``interrupt_after=N``
    injects a deterministic :class:`~repro.engine.checkpoint.
    CheckpointInterrupted` after the N-th checkpoint write (per shard) for
    kill-and-resume tests.

    ``options`` bundles the execution knobs this layer consumes (workers +
    the four checkpoint fields) as an
    :class:`~repro.engine.options.ExecutionOptions`; passing the object
    together with a conflicting legacy keyword raises a
    :class:`~repro.engine.errors.ConfigurationError`.  The bundle's
    effort/preset/engine/jit fields do not apply here — the workload is the
    explicit ``engine``/``engine_factory`` pair.
    """
    if options is not None:
        opts = ExecutionOptions.merge(
            options,
            workers=workers,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume_from=resume_from,
            interrupt_after=interrupt_after,
        )
        workers = opts.workers
        checkpoint_every, checkpoint_dir = opts.checkpoint_every, opts.checkpoint_dir
        resume_from, interrupt_after = opts.resume_from, opts.interrupt_after
    if trials < 1:
        raise ValueError(f"trials must be at least 1, got {trials}")
    resolved = resolve_workers(workers)
    checkpointing = (
        checkpoint_every is not None
        or checkpoint_dir is not None
        or resume_from is not None
    )
    if checkpointing:
        if checkpoint_every is None and resume_from is not None:
            # Resuming re-reads the cadence from the run's own manifest, so
            # `resume_from=dir` alone is enough to continue a run.
            manifest_path = Path(resume_from) / CHECKPOINT_MANIFEST
            if manifest_path.exists():
                try:
                    checkpoint_every = int(
                        json.loads(manifest_path.read_text())["checkpoint_every"]
                    )
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    raise CheckpointError(
                        f"unreadable checkpoint manifest {manifest_path}: {exc}"
                    ) from exc
        if checkpoint_every is None:
            raise ConfigurationError(
                "checkpoint_every is required when checkpoint_dir is given "
                "(or resume_from names a directory without a manifest)"
            )
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be at least 1, got {checkpoint_every}"
            )
        if checkpoint_every % snapshot_every != 0:
            raise ConfigurationError(
                f"checkpoint_every ({checkpoint_every}) must be a multiple of "
                f"snapshot_every ({snapshot_every}) so that checkpoint "
                "boundaries land exactly on snapshot boundaries"
            )
        if checkpoint_dir is None:
            if resume_from is None:
                raise ConfigurationError(
                    "checkpoint_every requires checkpoint_dir (or resume_from)"
                )
            checkpoint_dir = resume_from
        if resolved is None:
            resolved = 1
    elif interrupt_after is not None:
        raise ConfigurationError(
            "interrupt_after only applies to checkpointed runs "
            "(pass checkpoint_every/checkpoint_dir)"
        )
    if resolved is None:
        if engine == "ensemble":
            simulator = engine_factory(engine, RandomSource.from_seed(seed), trials)
            result = simulator.run(parallel_time, snapshot_every=snapshot_every)
            return [trial_result.series() for trial_result in result.trial_results]
        all_series = []
        for generator in spawn_streams(seed, trials):
            simulator = engine_factory(engine, RandomSource(generator), None)
            result = simulator.run(parallel_time, snapshot_every=snapshot_every)
            all_series.append(result.series())
        return all_series

    tree = SeedTree.from_seed(seed)
    shards = plan_shards(trials)
    if checkpointing:
        shard_fn = (
            _run_ensemble_engine_shard_checkpointed
            if engine == "ensemble"
            else _run_looped_engine_shard_checkpointed
        )
    else:
        shard_fn = (
            _run_ensemble_engine_shard
            if engine == "ensemble"
            else _run_looped_engine_shard
        )
    payloads = [
        {
            "factory": engine_factory,
            "engine": engine,
            "tree": tree,
            "start": shard.start,
            "stop": shard.stop,
            "parallel_time": parallel_time,
            "snapshot_every": snapshot_every,
        }
        for shard in shards
    ]
    if checkpointing:
        _prepare_checkpoint_run(
            Path(checkpoint_dir),
            None if resume_from is None else Path(resume_from),
            {
                "schema_version": 1,
                "kind": "trial-run",
                "engine": engine,
                "trials": trials,
                "seed": seed,
                "parallel_time": parallel_time,
                "snapshot_every": snapshot_every,
                "checkpoint_every": checkpoint_every,
                "shards": [[shard.start, shard.stop] for shard in shards],
            },
        )
        for payload in payloads:
            payload["checkpoint_every"] = checkpoint_every
            payload["checkpoint_dir"] = str(checkpoint_dir)
            payload["resume_from"] = None if resume_from is None else str(resume_from)
            payload["seed"] = seed
            payload["interrupt_after"] = interrupt_after
    per_shard, timings = execute_shards(
        shard_fn, payloads, workers=resolved, shards=shards
    )
    if timing_sink is not None:
        timing_sink.extend(timings)
    return merge_shard_results(shards, per_shard)


@dataclass(frozen=True)
class EnsembleSpec:
    """Workload description for the stacked single-pass trial mode.

    Passing one of these to :class:`TrialRunner` replaces the per-trial
    loop with a single :class:`repro.engine.ensemble_engine.
    EnsembleSimulator` run holding all trials as ``(trials, n)`` stacked
    arrays.

    Attributes
    ----------
    protocol:
        A scalar protocol with a registered vectorised counterpart, or a
        :class:`repro.engine.batch_engine.VectorizedProtocol` directly.
    n:
        Population size of every trial.
    parallel_time:
        Horizon each trial runs for.
    snapshot_every / resize_schedule / initial_arrays / sub_batches:
        Forwarded to the ensemble engine (see
        :func:`repro.engine.registry.make_engine`).
    data_fn:
        Optional extractor ``(RunResult) -> dict`` building each outcome's
        ``data``; defaults to the result's :meth:`~repro.engine.api.
        RunResult.series` columns, which is what
        :meth:`TrialRunner.run_and_aggregate` consumes.
    """

    protocol: Any
    n: int
    parallel_time: int
    snapshot_every: int = 1
    resize_schedule: tuple[tuple[int, int], ...] = ()
    initial_arrays: Mapping[str, np.ndarray] | None = None
    sub_batches: int = 8
    data_fn: Callable[[RunResult], dict[str, Any]] | None = None


def _run_trial_fn_shard(
    payload: dict[str, Any],
) -> list[tuple[int, SimulationResult, dict[str, Any]]]:
    """Run one row-shard of ``trial_fn`` trials; module-level for pickling.

    Every trial's stream is the one at its seed-tree address
    (``tree.trial(t)``): the root entropy is mixed into every derivation,
    so two runners with the same trial count but distinct base seeds can
    never silently reuse streams, and the result is independent of how
    trials are grouped into shards.
    """
    tree: SeedTree = payload["tree"]
    trial_fn = payload["trial_fn"]
    outcomes = []
    for trial in range(payload["start"], payload["stop"]):
        result, data = trial_fn(trial, tree.trial(trial).source())
        outcomes.append((trial, result, data))
    return outcomes


def _shard_initial_arrays(
    initial_arrays: Mapping[str, np.ndarray] | None,
    total_trials: int,
    start: int,
    stop: int,
) -> dict[str, np.ndarray] | None:
    """Restrict an ensemble's initial arrays to one row-shard's trials.

    Per-trial 2-D ``(trials, n)`` state planes are sliced to the shard's
    rows; shared 1-D length-``n`` arrays (every trial starts identically)
    pass through untouched.
    """
    if initial_arrays is None:
        return None
    sliced: dict[str, np.ndarray] = {}
    for key, value in initial_arrays.items():
        arr = np.asarray(value)
        if arr.ndim == 2 and arr.shape[0] == total_trials:
            arr = arr[start:stop]
        sliced[key] = arr
    return sliced


def _run_ensemble_spec_shard(payload: dict[str, Any]) -> list[RunResult]:
    """Run one row-shard of an :class:`EnsembleSpec` as its own stack.

    Module-level for pickling; returns the shard's per-trial
    :class:`RunResult` objects.  The payload carries the spec's plain-data
    fields only — ``data_fn`` extraction happens in the parent, and the
    initial arrays arrive pre-sliced to the shard's rows — so the spec's
    callable never crosses the process boundary.
    """
    from repro.engine.registry import make_engine

    spec: EnsembleSpec = payload["spec"]
    tree: SeedTree = payload["tree"]
    engine = make_engine(
        "ensemble",
        spec.protocol,
        spec.n,
        trials=payload["stop"] - payload["start"],
        rng=tree.child(SHARD_NAMESPACE, payload["start"]).source(),
        resize_schedule=spec.resize_schedule,
        initial_arrays=payload["initial_arrays"],
        sub_batches=spec.sub_batches,
    )
    result = engine.run(spec.parallel_time, snapshot_every=spec.snapshot_every)
    return list(result.trial_results)


class TrialRunner:
    """Runs several independent trials of the same experiment.

    Parameters
    ----------
    trial_fn:
        Callable ``(trial_index, rng) -> (SimulationResult, data)`` that
        builds and runs one simulation.  ``data`` is a free-form dictionary
        of extracted series (e.g. the estimate min/median/max over time).
        Omit it (pass ``None``) when running in ensemble mode.
    trials:
        Number of independent repetitions.
    seed:
        Root seed of the runner's :class:`~repro.engine.rng.SeedTree`;
        looped modes derive per-trial streams from it (``tree.trial(t)``),
        the single-stack ensemble mode feeds it to the stacked engine's
        stream, and the sharded modes derive per-shard streams from the
        same tree.
    workers:
        Opt-in sharded execution (see :mod:`repro.engine.parallel`):
        ``None`` keeps the historical serial behaviour, ``1`` runs the
        sharded path serially, higher counts (or ``"auto"``) fan the
        row-shards over a process pool — ``trial_fn`` (and the data it
        returns) must then be picklable, in practice a module-level
        function.  The shard layout never depends on the worker count, so
        any two worker counts are bit-identical per trial; for looped
        trials they are additionally bit-identical to ``workers=None``.
    processes:
        Backwards-compatible alias for ``workers`` (the pre-shard
        multiprocessing knob); ignored when ``workers`` is given.
    ensemble:
        Opt-in stacked execution: an :class:`EnsembleSpec` describing the
        workload.  With ``workers=None`` all trials run in one
        :class:`repro.engine.ensemble_engine.EnsembleSimulator` pass — the
        fastest single-core mode for vectorisable protocols; with
        ``workers`` the stack is split into row-shards, one stacked engine
        per shard, seeded by shard address.  Outcomes keep the exact
        ``list[TrialOutcome]`` shape of the looped modes either way.
        Mutually exclusive with ``trial_fn``.
    """

    def __init__(
        self,
        trial_fn: Callable[[int, RandomSource], tuple[SimulationResult, dict[str, Any]]]
        | None = None,
        *,
        trials: int,
        seed: int | None = None,
        workers: int | str | None = None,
        processes: int | None = None,
        ensemble: EnsembleSpec | None = None,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be at least 1, got {trials}")
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be at least 1, got {processes}")
        if ensemble is None and trial_fn is None:
            raise ValueError("provide either trial_fn or an EnsembleSpec")
        if ensemble is not None and trial_fn is not None:
            raise ValueError(
                "trial_fn and ensemble are mutually exclusive; the ensemble "
                "spec already describes the whole workload"
            )
        if ensemble is not None and processes is not None:
            raise ValueError(
                "processes does not apply to ensemble mode (it predates "
                "sharding); pass workers=N to split the stack into row-shards"
            )
        if workers is None and processes is not None:
            workers = processes
        self._trial_fn = trial_fn
        self.trials = trials
        self.seed = seed
        self.workers = resolve_workers(workers)
        self.processes = processes
        self.ensemble = ensemble
        #: Per-shard wall-clock timings of the last sharded :meth:`run`.
        self.shard_timings: list[ShardTiming] = []

    def run(self) -> list[TrialOutcome]:
        """Execute all trials and return their outcomes in trial order."""
        self.shard_timings = []
        if self.ensemble is not None:
            if self.workers is None:
                return self._run_ensemble(self.ensemble)
            return self._run_ensemble_sharded(self.ensemble)
        tree = SeedTree.from_seed(self.seed)
        shards = plan_shards(self.trials)
        payloads = [
            {
                "trial_fn": self._trial_fn,
                "tree": tree,
                "start": shard.start,
                "stop": shard.stop,
            }
            for shard in shards
        ]
        per_shard, timings = execute_shards(
            _run_trial_fn_shard,
            payloads,
            workers=self.workers if self.workers is not None else 1,
            shards=shards,
        )
        self.shard_timings = timings
        triples = merge_shard_results(shards, per_shard)
        return [
            TrialOutcome(trial=trial, seed_stream=trial, result=result, data=data)
            for trial, result, data in triples
        ]

    def _run_ensemble(self, spec: EnsembleSpec) -> list[TrialOutcome]:
        """Run all trials as one stacked ensemble pass."""
        from repro.engine.registry import make_engine

        engine = make_engine(
            "ensemble",
            spec.protocol,
            spec.n,
            trials=self.trials,
            seed=self.seed,
            resize_schedule=spec.resize_schedule,
            initial_arrays=dict(spec.initial_arrays)
            if spec.initial_arrays is not None
            else None,
            sub_batches=spec.sub_batches,
        )
        result = engine.run(spec.parallel_time, snapshot_every=spec.snapshot_every)
        return self._ensemble_outcomes(spec, list(enumerate(result.trial_results)))

    def _run_ensemble_sharded(self, spec: EnsembleSpec) -> list[TrialOutcome]:
        """Run the stacked workload as row-shards over the worker pool.

        Each shard is its own :class:`EnsembleSimulator` stack seeded at
        the shard's seed-tree address, so the shard layout (fixed by the
        trial count) fully determines every stream — any worker count
        reproduces the same per-trial results.  ``data_fn`` is applied in
        the parent process, so only the spec itself must be picklable.
        """
        tree = SeedTree.from_seed(self.seed)
        shards = plan_shards(self.trials)
        # Ship a plain-data spec: data_fn stays in the parent (it may be a
        # lambda), and each shard receives only its rows of any per-trial
        # initial arrays.
        portable_spec = dataclasses.replace(spec, data_fn=None, initial_arrays=None)
        payloads = [
            {
                "spec": portable_spec,
                "tree": tree,
                "start": shard.start,
                "stop": shard.stop,
                "initial_arrays": _shard_initial_arrays(
                    spec.initial_arrays, self.trials, shard.start, shard.stop
                ),
            }
            for shard in shards
        ]
        per_shard, timings = execute_shards(
            _run_ensemble_spec_shard,
            payloads,
            workers=self.workers if self.workers is not None else 1,
            shards=shards,
        )
        self.shard_timings = timings
        results = merge_shard_results(shards, per_shard)
        return self._ensemble_outcomes(spec, list(enumerate(results)))

    def _ensemble_outcomes(
        self, spec: EnsembleSpec, results: list[tuple[int, RunResult]]
    ) -> list[TrialOutcome]:
        outcomes = []
        for trial, trial_result in results:
            data = (
                spec.data_fn(trial_result)
                if spec.data_fn is not None
                else trial_result.series()
            )
            outcomes.append(
                TrialOutcome(
                    trial=trial, seed_stream=trial, result=trial_result, data=data
                )
            )
        return outcomes

    def run_and_aggregate(
        self,
        series_key: str,
        index_key: str = "parallel_time",
    ) -> tuple[list[TrialOutcome], AggregatedSeries]:
        """Run all trials and aggregate ``data[series_key]`` across them.

        The index (x-axis) is taken from the first trial's ``data[index_key]``.
        """
        outcomes = self.run()
        index = outcomes[0].data.get(index_key, [])
        per_trial = [outcome.data[series_key] for outcome in outcomes]
        return outcomes, aggregate_series(series_key, index, per_trial)
