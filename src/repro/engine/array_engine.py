"""Exact sequential engine over struct-of-arrays state.

:class:`ArraySimulator` executes the *textbook* sequential scheduler — one
uniformly random ordered pair of distinct agents per interaction — but keeps
the population in the same struct-of-arrays representation the batched
engine uses, instead of a Python list of state objects.  Protocols plug in
through :meth:`repro.engine.batch_engine.VectorizedProtocol.interact_one`,
the single-pair counterpart of ``interact_batch``.

Because ``interact_one`` implementations mirror their scalar protocol's
transition *including the order of random draws*, the array engine
reproduces the sequential :class:`repro.engine.simulator.Simulator`
trajectory bit-for-bit under a shared seed (``tests/test_engine_equivalence.
py`` asserts this for the dynamic size counting protocol and the toolbox
protocols), while avoiding per-agent Python object overhead: no dataclass
allocation, no population bookkeeping, and cheap whole-population snapshots
via ``output_array``.

Use this engine when exact interleaving matters but the population is too
large for the object-based simulator's memory habits — or as the middle
rung of the equivalence ladder between the reference engine and the
approximate batched engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.api import ArrayStateEngine, EngineSnapshot, RunResult

__all__ = ["ArrayRunResult", "ArraySimulator"]


@dataclass
class ArrayRunResult(RunResult):
    """Outcome of an exact array-engine run."""


class ArraySimulator(ArrayStateEngine):
    """Exact sequential simulator over struct-of-arrays state.

    Parameters
    ----------
    protocol:
        A :class:`repro.engine.batch_engine.VectorizedProtocol` that
        implements ``interact_one``.
    n:
        Initial population size.
    rng / seed:
        Random source (or a seed to build one).
    resize_schedule:
        Optional ``(parallel_time, target_size)`` adversary events applied
        at snapshot granularity, as on the batched engine.
    initial_arrays:
        Optional pre-built state arrays for non-default initial
        configurations.

    Notes
    -----
    The scheduling loop is interaction-for-interaction identical to
    :class:`repro.engine.simulator.Simulator`: each step draws
    ``rng.ordered_pair(n)`` and applies one transition.  Only the state
    container differs, so a protocol whose ``interact_one`` mirrors its
    scalar ``interact`` yields identical trajectories under a shared seed
    (as long as no adversary reorders agents).
    """

    name = "array"

    def _advance_one_parallel_step(self) -> None:
        """Execute ``n`` interactions (one parallel time unit), exactly."""
        n = self._require_interactable()
        protocol = self.protocol
        arrays = self.arrays
        rng = self.rng
        for _ in range(n):
            i, j = rng.ordered_pair(n)
            protocol.interact_one(arrays, i, j, rng)
        self.interactions_executed += n
        self.parallel_time += 1

    def step(self) -> None:
        """Execute a single pairwise interaction (inspection/debug helper)."""
        n = self._require_interactable()
        i, j = self.rng.ordered_pair(n)
        self.protocol.interact_one(self.arrays, i, j, self.rng)
        self.interactions_executed += 1

    def _build_result(
        self, snapshots: list[EngineSnapshot], stopped_early: bool
    ) -> ArrayRunResult:
        return ArrayRunResult(
            parallel_time=self.parallel_time,
            interactions=self.interactions_executed,
            final_size=self.size,
            stopped_early=stopped_early,
            snapshots=snapshots,
            metadata={"protocol": self.protocol.describe(), "engine": self.name},
        )
