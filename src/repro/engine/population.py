"""Dynamic population container.

The population holds the per-agent states and supports the operations of the
*dynamic* population protocol model studied in the paper: an adversary may
add agents (always in the protocol's predefined initial state) and remove
arbitrary agents at any point in time.

Agents have two notions of identity:

* their *slot index* in the internal dense list (used by the scheduler,
  changes when other agents are removed), and
* a *stable id* assigned at insertion time and never reused (used by
  recorders and event logs so that traces survive removals).

Removal uses swap-with-last so that both removal and uniform sampling stay
O(1) regardless of population size.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.errors import EmptyPopulationError, UnknownAgentError
from repro.engine.rng import RandomSource

__all__ = ["Population"]


class Population:
    """A mutable collection of agent states.

    Parameters
    ----------
    states:
        Initial per-agent states.  The population takes ownership of the
        state objects (they may be mutated in place by protocols).
    """

    def __init__(self, states: Iterable[Any] = ()) -> None:
        self._states: list[Any] = list(states)
        self._stable_ids: list[int] = list(range(len(self._states)))
        self._next_id: int = len(self._states)

    @classmethod
    def restore(
        cls, states: Iterable[Any], stable_ids: Iterable[int], next_id: int
    ) -> "Population":
        """Rebuild a population from checkpointed internals.

        Inverts the ``(states(), stable_ids(), next id)`` triple captured by
        the sequential engine's checkpoint, preserving the slot order and
        the never-reuse guarantee of stable ids.
        """
        population = cls(states)
        ids = [int(i) for i in stable_ids]
        if len(ids) != len(population._states):
            raise ValueError(
                f"{len(ids)} stable ids for {len(population._states)} states"
            )
        if ids and int(next_id) <= max(ids):
            raise ValueError("next_id must exceed every restored stable id")
        population._stable_ids = ids
        population._next_id = int(next_id)
        return population

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return len(self._states)

    @property
    def size(self) -> int:
        """Current number of agents ``n``."""
        return len(self._states)

    def is_interactable(self) -> bool:
        """Whether the population has at least two agents (can make progress)."""
        return len(self._states) >= 2

    # ------------------------------------------------------------ state access

    def state(self, index: int) -> Any:
        """Return the state of the agent in slot ``index``."""
        self._check_index(index)
        return self._states[index]

    def set_state(self, index: int, state: Any) -> None:
        """Replace the state of the agent in slot ``index``."""
        self._check_index(index)
        self._states[index] = state

    def stable_id(self, index: int) -> int:
        """Return the stable id of the agent in slot ``index``."""
        self._check_index(index)
        return self._stable_ids[index]

    def states(self) -> Sequence[Any]:
        """Read-only view of the current states (do not mutate the list)."""
        return self._states

    def stable_ids(self) -> Sequence[int]:
        """Read-only view of the stable ids, aligned with :meth:`states`."""
        return self._stable_ids

    def __iter__(self) -> Iterator[Any]:
        return iter(self._states)

    def __getitem__(self, index: int) -> Any:
        return self.state(index)

    # ------------------------------------------------------------ modification

    def add(self, state: Any) -> int:
        """Add a new agent with the given state; return its stable id."""
        self._states.append(state)
        stable = self._next_id
        self._stable_ids.append(stable)
        self._next_id += 1
        return stable

    def add_many(self, states: Iterable[Any]) -> list[int]:
        """Add several agents; return their stable ids."""
        return [self.add(state) for state in states]

    def remove(self, index: int) -> Any:
        """Remove the agent in slot ``index`` (swap-with-last); return its state."""
        self._check_index(index)
        last = len(self._states) - 1
        self._states[index], self._states[last] = self._states[last], self._states[index]
        self._stable_ids[index], self._stable_ids[last] = (
            self._stable_ids[last],
            self._stable_ids[index],
        )
        self._stable_ids.pop()
        return self._states.pop()

    def remove_random(self, count: int, rng: RandomSource) -> list[Any]:
        """Remove ``count`` agents chosen uniformly at random.

        This is the paper's decimation adversary (Fig. 4 removes all but 500
        agents); the removed states are returned for inspection.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > len(self._states):
            raise EmptyPopulationError(
                f"cannot remove {count} agents from a population of {len(self._states)}"
            )
        removed = []
        for _ in range(count):
            removed.append(self.remove(rng.uniform_index(len(self._states))))
        return removed

    def downsize_to(self, target: int, rng: RandomSource) -> list[Any]:
        """Remove uniformly random agents until exactly ``target`` remain."""
        if target < 0:
            raise ValueError(f"target must be non-negative, got {target}")
        excess = len(self._states) - target
        if excess <= 0:
            return []
        return self.remove_random(excess, rng)

    # ------------------------------------------------------------- aggregates

    def map_states(self, fn: Callable[[Any], Any]) -> list[Any]:
        """Apply ``fn`` to every state and return the results."""
        return [fn(state) for state in self._states]

    def count_where(self, predicate: Callable[[Any], bool]) -> int:
        """Count agents whose state satisfies ``predicate``."""
        return sum(1 for state in self._states if predicate(state))

    # --------------------------------------------------------------- internal

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._states):
            raise UnknownAgentError(
                f"agent slot {index} out of range for population of size {len(self._states)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Population(size={len(self._states)})"
