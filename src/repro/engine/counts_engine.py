"""Counts-based multiset engine: O(|Q|^2) parallel steps independent of n.

Every other engine holds per-agent state arrays, so one parallel time step
costs O(n) no matter how simple the protocol is.  Population protocols are
anonymous, though: the population is fully described by the *multiset* of
states, i.e. a ``(|Q|,)`` vector of state counts.  This engine advances that
vector directly (Gillespie / tau-leaping style):

* the initiators of a sub-batch are a uniform random sub-multiset of the
  population, drawn **without replacement** via a multivariate
  hypergeometric marginal draw (:func:`multiset_sample`) — which is also
  what guarantees counts never go negative;
* their responders are drawn from the batch-start state distribution
  (mirroring the batched engine's responder snapshot): with replacement via
  one vectorised multinomial for one-way protocols, and without replacement
  (a second hypergeometric draw plus a random contingency-table pairing)
  for protocols that write the responder too;
* the protocol's :class:`CountsKernel` then turns the ordered
  (initiator-state, responder-state) interaction counts into transition
  deltas on the count vector, splitting cells by random outcome (GRV draws,
  coin flips) with one more multinomial per sub-batch.

Per-step cost is O(|Q| * |R|) in the number of occupied states |Q| and
responder classes |R| — *independent of n* — which unlocks populations of
10^7-10^9 agents (the numpy hypergeometric samplers cap totals at 10^9;
beyond that :func:`multiset_sample` switches to a conditional binomial
approximation whose error is O(batch/n), i.e. negligible exactly where it
is used).

The engine implements the shared :class:`repro.engine.api.Engine` contract
(snapshots, resize-schedule adversary, ``stop_when``, hooks), so experiment
code selects it like any other engine (``make_engine("counts", ...)``).
Correctness is statistical, not bit-exact: the sub-batch semantics match
the batched engine's synchronous-rounds approximation up to collision
handling (the batched engine resolves duplicate initiators
last-writer-wins; this engine applies every drawn interaction once), and
``tests/test_statistical_conformance.py`` pins the distributional agreement
for every protocol with a counts kernel.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.engine.api import Engine, EngineSnapshot, RunResult
from repro.engine.errors import CheckpointError, ConfigurationError, EmptyPopulationError
from repro.engine.rng import RandomSource

__all__ = [
    "CountsState",
    "CountsKernel",
    "PackedCountsKernel",
    "CountsSimulator",
    "multiset_sample",
    "weighted_quantiles",
    "grv_max_pmf",
    "GRV_VALUE_CAP",
]

#: Totals at or above this are rejected by numpy's ``hypergeometric`` /
#: ``multivariate_hypergeometric`` samplers; :func:`multiset_sample` switches
#: to the conditional binomial approximation there.
_NUMPY_HYPERGEOMETRIC_LIMIT = 10**9

#: Largest GRV value the count-level samplers distinguish.  The tail mass
#: above it is ``k * 2**-64`` (< 1e-18 for every preset) and is lumped into
#: the last bin; the per-agent engines' inverse-CDF sampler saturates around
#: 60 for the same float64 reason.
GRV_VALUE_CAP = 64


def multiset_sample(
    generator: np.random.Generator, counts: np.ndarray, size: int
) -> np.ndarray:
    """Draw ``size`` items without replacement from a multiset of counts.

    Returns the per-category counts of a uniformly random sub-multiset —
    the multivariate hypergeometric distribution.  For totals below numpy's
    10^9 sampler limit this is numpy's exact ``method="marginals"`` draw;
    above it, categories are drawn sequentially from the conditional
    distribution, using the exact scalar hypergeometric where its operands
    fit and a clipped binomial approximation where they do not (relative
    error O(size/total), vanishing exactly in the huge-``total`` regime
    that forces the fallback).
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if size < 0 or size > total:
        raise ValueError(f"sample size must lie in [0, {total}], got {size}")
    if size == 0:
        return np.zeros_like(counts)
    if size == total:
        return counts.copy()
    if total < _NUMPY_HYPERGEOMETRIC_LIMIT:
        drawn = generator.multivariate_hypergeometric(counts, size, method="marginals")
        return np.asarray(drawn, dtype=np.int64)
    out = np.zeros_like(counts)
    remaining_total = total
    remaining_size = size
    for index, category in enumerate(counts.tolist()):
        if remaining_size == 0:
            break
        if category == 0:
            continue
        rest = remaining_total - category
        if rest == 0:
            drawn_count = remaining_size
        elif (
            category < _NUMPY_HYPERGEOMETRIC_LIMIT
            and rest < _NUMPY_HYPERGEOMETRIC_LIMIT
        ):
            drawn_count = int(generator.hypergeometric(category, rest, remaining_size))
        else:
            drawn_count = int(
                generator.binomial(remaining_size, category / remaining_total)
            )
            low = max(0, remaining_size - rest)
            drawn_count = min(max(drawn_count, low), category, remaining_size)
        out[index] = drawn_count
        remaining_size -= drawn_count
        remaining_total = rest
    return out


def weighted_quantiles(
    values: Sequence[float] | np.ndarray, weights: Sequence[int] | np.ndarray
) -> tuple[float, float, float]:
    """(min, median, max) of a population given per-value multiplicities.

    The counts engine's counterpart of :func:`repro.engine.api.quantiles`:
    identical to ``quantiles(np.repeat(values, weights))`` — including the
    even-total median averaging the two middle items and the all-NaN answer
    when any occupied value is NaN — without materialising the ``n``
    repeats.
    """
    value_arr = np.asarray(values, dtype=float)
    weight_arr = np.asarray(weights, dtype=np.int64)
    if value_arr.shape != weight_arr.shape:
        raise ValueError(
            f"values and weights must align, got {value_arr.shape} vs {weight_arr.shape}"
        )
    if (weight_arr < 0).any():
        raise ValueError("weights must be non-negative")
    occupied = weight_arr > 0
    value_arr = value_arr[occupied]
    weight_arr = weight_arr[occupied]
    total = int(weight_arr.sum())
    if total == 0:
        raise ValueError("weighted_quantiles() requires a non-empty population")
    if np.isnan(value_arr).any():
        nan = float("nan")
        return nan, nan, nan
    order = np.argsort(value_arr, kind="stable")
    value_arr = value_arr[order]
    cumulative = np.cumsum(weight_arr[order])
    mid = total // 2
    if total % 2:
        median = float(value_arr[np.searchsorted(cumulative, mid + 1)])
    else:
        low = float(value_arr[np.searchsorted(cumulative, mid)])
        high = float(value_arr[np.searchsorted(cumulative, mid + 1)])
        median = 0.5 * (low + high)
    return float(value_arr[0]), median, float(value_arr[-1])


def grv_max_pmf(k: int, cap: int = GRV_VALUE_CAP) -> np.ndarray:
    """Pmf of the maximum of ``k`` Geom(1/2) draws on ``{1, ..., cap}``.

    ``P[G <= m] = (1 - 2^-m)^k`` in closed form; the (astronomically small)
    tail above ``cap`` is lumped into the last bin so the vector sums to
    one exactly.  This is how the counts engine regenerates the paper's
    GRVs for *groups* of resetting agents: one multinomial over this pmf
    replaces per-agent geometric draws.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if cap < 1:
        raise ValueError(f"cap must be positive, got {cap}")
    m = np.arange(cap + 1, dtype=np.float64)
    cdf = (1.0 - np.exp2(-m)) ** k
    pmf = np.diff(cdf)
    pmf[-1] += 1.0 - cdf[-1]
    return pmf


@dataclass
class CountsState:
    """Mutable multiset population state: counts over a table of states.

    Attributes
    ----------
    keys:
        Sorted, unique state identifiers (one sortable scalar per occupied
        state — packed integers for the built-in kernels).
    counts:
        int64 multiplicities aligned with ``keys``; always non-negative and
        summing to the population size.
    columns:
        Per-state attribute planes aligned with ``keys`` (the unpacked
        state fields the kernel's transition reads).
    """

    keys: np.ndarray
    counts: np.ndarray
    columns: dict[str, np.ndarray]

    @property
    def num_states(self) -> int:
        return int(self.keys.shape[0])

    def total(self) -> int:
        return int(self.counts.sum())

    def compact(self) -> None:
        """Drop zero-count rows (after resizes / transition merges)."""
        occupied = self.counts > 0
        if occupied.all():
            return
        self.keys = self.keys[occupied]
        self.counts = self.counts[occupied]
        self.columns = {name: col[occupied] for name, col in self.columns.items()}


def merge_counts(
    keys: np.ndarray,
    counts: np.ndarray,
    extra_keys: np.ndarray,
    extra_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two (keys, counts) multisets into one sorted, deduplicated pair.

    ``counts`` entries may be negative (a transition subtracts before it
    adds); rows whose merged count is zero are dropped.  Counts stay exact:
    they ride through the bincount as float64, which is lossless below
    2^53 — far above any supported population size.
    """
    all_keys = np.concatenate([keys, extra_keys])
    all_counts = np.concatenate([counts, extra_counts])
    unique_keys, inverse = np.unique(all_keys, return_inverse=True)
    merged = np.bincount(
        inverse, weights=all_counts.astype(np.float64), minlength=len(unique_keys)
    ).astype(np.int64)
    occupied = merged != 0
    return unique_keys[occupied], merged[occupied]


class CountsKernel(abc.ABC):
    """Per-protocol adapter from agent-level transitions to count vectors.

    A kernel owns the state enumeration (fixed for finite protocols, lazily
    discovered for the log-n levels of dynamic counting), the transition on
    (initiator-state, responder-state) interaction counts, and the
    per-state output values the engine's snapshots aggregate.
    """

    #: Name used in run metadata.
    name: str = "counts-kernel"

    #: Whether the transition writes the responder too.  Two-way kernels
    #: receive responders drawn *without* replacement (full state indices);
    #: one-way kernels receive responder classes drawn with replacement
    #: from the batch-start distribution.
    two_way: bool = False

    @abc.abstractmethod
    def initial_state(self, n: int, rng: RandomSource) -> CountsState:
        """Count state of ``n`` fresh agents in the protocol's initial state."""

    @abc.abstractmethod
    def output_values(self, state: CountsState) -> np.ndarray:
        """Per-state float outputs aligned with ``state.keys``."""

    @abc.abstractmethod
    def apply(
        self,
        state: CountsState,
        initiator_idx: np.ndarray,
        responder_idx: np.ndarray,
        pair_counts: np.ndarray,
        responder_columns: Mapping[str, np.ndarray] | None,
        rng: RandomSource,
    ) -> None:
        """Apply ``pair_counts[j]`` ordered interactions per (state, class) cell.

        ``initiator_idx`` indexes ``state``; ``responder_idx`` indexes the
        responder classes of :meth:`responder_view` (``responder_columns``
        carries their fields) for one-way kernels, and ``state`` itself
        (``responder_columns is None``) for two-way kernels.  Mutates
        ``state`` in place; must preserve the total count.
        """

    def responder_view(
        self, state: CountsState
    ) -> tuple[np.ndarray, dict[str, np.ndarray] | None]:
        """Coarsen states into responder-equivalence classes.

        Returns ``(class_id_per_state, class_columns)``.  The default is the
        identity (every state its own class, ``None`` columns meaning "read
        the state table").  Kernels whose transition reads only part of the
        responder state (dynamic counting reads ``(max, lastMax, time)`` but
        not the interaction counter) override this to shrink the pair table
        from |Q|^2 to |Q| x |R| cells.
        """
        return np.arange(state.num_states), None

    def grow(self, state: CountsState, count: int, rng: RandomSource) -> None:
        """Add ``count`` fresh agents in the protocol's initial state."""
        extra = self.initial_state(count, rng)
        self.merge_into(state, extra.keys, extra.counts)

    @abc.abstractmethod
    def merge_into(
        self, state: CountsState, extra_keys: np.ndarray, extra_counts: np.ndarray
    ) -> None:
        """Merge extra (keys, counts) rows into ``state`` and rebuild columns."""

    def tick_total(self) -> int | None:
        """Cumulative protocol ticks (resets) applied so far, if tracked."""
        return None

    def restore_tick_total(self, total: int | None) -> None:
        """Restore the cumulative tick counter from an engine checkpoint.

        No-op for kernels that do not track ticks (:meth:`tick_total`
        returning ``None``); tracking kernels override this so a resumed
        run reports the same total a continuous run would have.
        """

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__}


class PackedCountsKernel(CountsKernel):
    """Shared machinery for kernels whose state packs into one int64 key.

    Subclasses declare ``fields`` — ``(name, cardinality)`` pairs, where
    ``cardinality`` bounds the field's value range ``[0, cardinality)`` —
    and implement :meth:`transition`, the cell-level transition.  Packing,
    unpacking, table merging, per-agent array conversion and the
    :meth:`CountsKernel.apply` plumbing all live here.
    """

    #: ``(field name, cardinality)`` pairs; subclasses set this (usually in
    #: ``__init__`` when the bounds depend on protocol parameters).
    fields: tuple[tuple[str, int], ...] = ()

    #: Responder fields the transition reads; defaults to every field.
    responder_fields: tuple[str, ...] | None = None

    def _check_packing(self) -> None:
        """Validate that the declared field bounds fit one signed int64."""
        capacity = 1
        for name, cardinality in self.fields:
            if cardinality < 1:
                raise ConfigurationError(
                    f"field {name!r} has non-positive cardinality {cardinality}"
                )
            capacity *= cardinality
        if capacity >= 2**62:
            raise ConfigurationError(
                f"counts kernel {self.name!r} cannot pack its state space "
                f"({capacity} combinations) into one int64 key; this protocol "
                "parameterisation needs the per-agent engines"
            )

    # ------------------------------------------------------------- pack/unpack

    def pack(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Pack per-state field columns into int64 keys (mixed-radix)."""
        key = None
        for name, cardinality in self.fields:
            values = np.asarray(columns[name], dtype=np.int64)
            key = values if key is None else key * cardinality + values
        assert key is not None, "a packed kernel needs at least one field"
        return key

    def unpack(self, keys: np.ndarray) -> dict[str, np.ndarray]:
        """Invert :meth:`pack` into per-state field columns."""
        remainder = np.asarray(keys, dtype=np.int64)
        columns: dict[str, np.ndarray] = {}
        for name, cardinality in reversed(self.fields):
            columns[name] = remainder % cardinality
            remainder = remainder // cardinality
        return columns

    def state_from_columns(
        self, columns: Mapping[str, np.ndarray], counts: np.ndarray
    ) -> CountsState:
        """Build a (deduplicated) state from aligned field columns and counts."""
        keys = self.pack(columns)
        unique_keys, merged = merge_counts(
            keys, np.asarray(counts, dtype=np.int64), keys[:0], counts[:0]
        )
        return CountsState(
            keys=unique_keys, counts=merged, columns=self.unpack(unique_keys)
        )

    def state_from_arrays(self, arrays: Mapping[str, np.ndarray]) -> CountsState:
        """Convert per-agent struct-of-arrays planes into a counts state.

        Accepts the plane layout of the protocol's
        :class:`~repro.engine.batch_engine.VectorizedProtocol` (extra planes
        that are not kernel fields — tick counters and the like — are
        ignored), so initial configurations built for the array engines run
        unchanged on the counts engine.  Field values must be integral and
        inside the declared bounds.
        """
        columns: dict[str, np.ndarray] = {}
        length = None
        for name, cardinality in self.fields:
            if name not in arrays:
                raise ConfigurationError(
                    f"initial arrays are missing state plane {name!r} "
                    f"required by the {self.name!r} counts kernel"
                )
            plane = np.asarray(arrays[name])
            values = np.asarray(plane, dtype=np.int64)
            if not np.array_equal(values, np.asarray(plane, dtype=np.float64)):
                raise ConfigurationError(
                    f"state plane {name!r} holds non-integral values; the "
                    "counts engine enumerates integer state lattices only"
                )
            if values.size and (values.min() < 0 or values.max() >= cardinality):
                raise ConfigurationError(
                    f"state plane {name!r} leaves the kernel's value range "
                    f"[0, {cardinality}): min={values.min()}, max={values.max()}"
                )
            columns[name] = values
            if length is None:
                length = values.shape[0]
            elif values.shape[0] != length:
                raise ConfigurationError("initial state planes have unequal lengths")
        assert length is not None
        return self.state_from_columns(columns, np.ones(length, dtype=np.int64))

    def merge_into(
        self, state: CountsState, extra_keys: np.ndarray, extra_counts: np.ndarray
    ) -> None:
        state.keys, state.counts = merge_counts(
            state.keys, state.counts, extra_keys, extra_counts
        )
        state.columns = self.unpack(state.keys)

    # ------------------------------------------------------------- transition

    @abc.abstractmethod
    def transition(
        self,
        u: dict[str, np.ndarray],
        v: dict[str, np.ndarray],
        multiplicity: np.ndarray,
        rng: RandomSource,
    ) -> tuple[
        dict[str, np.ndarray],
        np.ndarray,
        dict[str, np.ndarray] | None,
        np.ndarray | None,
    ]:
        """Cell-level transition on gathered initiator/responder fields.

        ``u`` / ``v`` hold one entry per (initiator-state, responder-class)
        cell; ``multiplicity[j]`` is how many such ordered interactions the
        sub-batch drew.  Returns ``(u_fields, u_mult, v_fields, v_mult)``:
        the post-interaction initiator states with multiplicities (cells may
        expand — GRV and coin outcomes split a cell into sub-cells — as long
        as ``u_mult`` sums to ``multiplicity``'s total), plus the responder
        contributions for two-way kernels (``None, None`` for one-way).
        """

    def apply(
        self,
        state: CountsState,
        initiator_idx: np.ndarray,
        responder_idx: np.ndarray,
        pair_counts: np.ndarray,
        responder_columns: Mapping[str, np.ndarray] | None,
        rng: RandomSource,
    ) -> None:
        responder_fields = (
            self.responder_fields
            if self.responder_fields is not None
            else tuple(name for name, _ in self.fields)
        )
        u = {
            name: state.columns[name][initiator_idx] for name, _ in self.fields
        }
        source = state.columns if responder_columns is None else responder_columns
        v = {name: source[name][responder_idx] for name in responder_fields}
        u_new, u_mult, v_new, v_mult = self.transition(u, v, pair_counts, rng)

        np.subtract.at(state.counts, initiator_idx, pair_counts)
        extra_keys = self.pack(u_new)
        extra_counts = np.asarray(u_mult, dtype=np.int64)
        if self.two_way:
            if v_new is None or v_mult is None:
                raise ConfigurationError(
                    f"two-way kernel {self.name!r} returned no responder states"
                )
            np.subtract.at(state.counts, responder_idx, pair_counts)
            extra_keys = np.concatenate([extra_keys, self.pack(v_new)])
            extra_counts = np.concatenate(
                [extra_counts, np.asarray(v_mult, dtype=np.int64)]
            )
        self.merge_into(state, extra_keys, extra_counts)


class CountsSimulator(Engine):
    """Execution engine over the multiset (count-vector) population state.

    Parameters
    ----------
    kernel:
        The protocol's :class:`CountsKernel` (see
        :func:`repro.engine.registry.counts_kernel_for` for the scalar
        protocol lookup).
    n:
        Initial population size.
    rng / seed:
        Random source (or a seed to build one).
    resize_schedule:
        ``(parallel_time, target_size)`` adversary events applied at
        snapshot granularity: shrinking keeps a uniformly random
        sub-multiset (one hypergeometric draw on the count vector),
        growing re-injects agents in the protocol's initial state.
    sub_batches:
        Number of synchronous sub-batches per parallel time step, matching
        the batched engine's fidelity knob: responder distributions are
        re-snapshotted between sub-batches.
    initial_state:
        Optional pre-built :class:`CountsState` (consumed, not copied) for
        non-default initial configurations; must total ``n``.
    """

    name = "counts"

    #: The array-engine convention: ``stop_when(engine, snapshot)``.
    _default_stop_arity = 2

    def __init__(
        self,
        kernel: CountsKernel,
        n: int,
        *,
        rng: RandomSource | None = None,
        seed: int | None = None,
        resize_schedule: Iterable[tuple[int, int]] = (),
        sub_batches: int = 8,
        initial_state: CountsState | None = None,
    ) -> None:
        super().__init__()
        if not isinstance(kernel, CountsKernel):
            raise ConfigurationError(
                f"CountsSimulator needs a CountsKernel, got {type(kernel).__name__}"
            )
        if n < 2:
            raise ConfigurationError(f"population size must be at least 2, got {n}")
        if sub_batches < 1:
            raise ConfigurationError(f"sub_batches must be >= 1, got {sub_batches}")
        self.kernel = kernel
        self.rng = rng if rng is not None else RandomSource.from_seed(seed)
        self.sub_batches = sub_batches
        self.state = (
            kernel.initial_state(n, self.rng) if initial_state is None else initial_state
        )
        if self.state.total() != n:
            raise ConfigurationError(
                f"initial counts total {self.state.total()}, expected {n}"
            )
        if (self.state.counts < 0).any():
            raise ConfigurationError("initial counts must be non-negative")
        self._resize_events = sorted(
            ((int(t), int(size)) for t, size in resize_schedule), key=lambda e: e[0]
        )
        for time, size in self._resize_events:
            if time < 0:
                raise ConfigurationError(f"resize time must be non-negative, got {time}")
            if size < 2:
                raise ConfigurationError(f"resize target must be at least 2, got {size}")
        self._resize_cursor = 0
        #: Largest number of simultaneously occupied states seen so far —
        #: the |Q| that prices each step; reported in run metadata.
        self.peak_states = self.state.num_states

    # ------------------------------------------------------------------- size

    @property
    def size(self) -> int:
        return self.state.total()

    def outputs(self) -> np.ndarray:
        """Current per-agent outputs, materialised (O(n) memory!).

        Exists for the shared engine contract and small-n cross-checks;
        snapshot statistics never materialise this — they aggregate the
        per-state outputs with :func:`weighted_quantiles` instead.
        """
        values = np.asarray(self.kernel.output_values(self.state), dtype=float)
        return np.repeat(values, self.state.counts)

    # -------------------------------------------------------------- adversary

    def _apply_resizes(self) -> None:
        while (
            self._resize_cursor < len(self._resize_events)
            and self._resize_events[self._resize_cursor][0] <= self.parallel_time
        ):
            _, target = self._resize_events[self._resize_cursor]
            self._resize_cursor += 1
            self.resize_to(target)

    def resize_to(self, target: int) -> None:
        """Resize the population to ``target`` agents.

        Shrinking keeps a uniformly random sub-multiset (the paper's
        decimation adversary, as one hypergeometric draw on the counts);
        growing re-injects fresh agents in the protocol's initial state.
        """
        if target < 2:
            raise ConfigurationError(f"resize target must be at least 2, got {target}")
        current = self.size
        if target == current:
            return
        if target < current:
            self.state.counts = multiset_sample(
                self.rng.generator, self.state.counts, target
            )
            self.state.compact()
        else:
            self.kernel.grow(self.state, target - current, self.rng)

    # ------------------------------------------------------------------- step

    def _advance_one_parallel_step(self) -> None:
        self.step_parallel_round()

    def step_parallel_round(self) -> None:
        """Execute one parallel time step: ``n`` interactions in sub-batches."""
        n = self.size
        if n < 2:
            raise EmptyPopulationError("population has fewer than two agents")
        chunk = max(1, n // self.sub_batches)
        remaining = n
        while remaining > 0:
            batch = min(chunk, remaining)
            if self.kernel.two_way:
                batch = min(batch, n // 2)
            self._run_sub_batch(batch)
            remaining -= batch
        self.parallel_time += 1
        self.interactions_executed += n
        self.peak_states = max(self.peak_states, self.state.num_states)

    def _run_sub_batch(self, batch: int) -> None:
        state = self.state
        generator = self.rng.generator
        initiators = multiset_sample(generator, state.counts, batch)
        occupied = np.flatnonzero(initiators)
        if occupied.size == 0:
            return
        if self.kernel.two_way:
            initiator_idx, responder_idx, pair_counts = self._pair_without_replacement(
                initiators, occupied, batch
            )
            responder_columns = None
        else:
            initiator_idx, responder_idx, pair_counts, responder_columns = (
                self._pair_with_replacement(initiators, occupied)
            )
        if pair_counts.size == 0:
            return
        self.kernel.apply(
            state, initiator_idx, responder_idx, pair_counts, responder_columns, self.rng
        )
        state.compact()

    def _pair_with_replacement(
        self, initiators: np.ndarray, occupied: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray] | None]:
        """Ordered pair counts for one-way kernels: i.i.d. responders.

        Responders are drawn from the batch-start state distribution —
        exactly the batched engine's responder snapshot.  (Like that
        engine's ``ordered_pairs`` modulo the 1/n self-pairing term, which
        both treatments leave statistically indistinguishable.)  The draw
        is one vectorised multinomial over the kernel's responder classes.
        """
        state = self.state
        class_id, class_columns = self.kernel.responder_view(state)
        num_classes = int(class_id.max()) + 1 if class_id.size else 0
        class_counts = np.bincount(
            class_id, weights=state.counts.astype(np.float64), minlength=num_classes
        )
        probabilities = class_counts / class_counts.sum()
        pair_table = self.rng.generator.multinomial(
            initiators[occupied], probabilities
        )
        row, col = np.nonzero(pair_table)
        return occupied[row], col, pair_table[row, col], (
            class_columns
            if class_columns is not None
            else {name: column for name, column in state.columns.items()}
        )

    def _pair_without_replacement(
        self, initiators: np.ndarray, occupied: np.ndarray, batch: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ordered pair counts for two-way kernels: disjoint participants.

        Responders are a second without-replacement draw from the agents
        not already acting as initiators, then matched to initiator states
        by a uniformly random contingency table (sequential conditional
        hypergeometric rows) — every interaction touches two distinct
        agents and every agent at most one interaction per sub-batch, so
        both updates apply without write conflicts.
        """
        generator = self.rng.generator
        state = self.state
        responders = multiset_sample(generator, state.counts - initiators, batch)
        initiator_rows = []
        responder_rows = []
        count_rows = []
        remaining = responders
        for position, state_index in enumerate(occupied):
            if position == occupied.size - 1:
                row = remaining
            else:
                row = multiset_sample(generator, remaining, int(initiators[state_index]))
                remaining = remaining - row
            cols = np.flatnonzero(row)
            if cols.size == 0:
                continue
            initiator_rows.append(np.full(cols.size, state_index, dtype=np.int64))
            responder_rows.append(cols)
            count_rows.append(row[cols])
        if not count_rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        return (
            np.concatenate(initiator_rows),
            np.concatenate(responder_rows),
            np.concatenate(count_rows),
        )

    # ------------------------------------------------------------ checkpoints

    def _state_payload(self, *, copy: bool = True) -> dict[str, Any]:
        dup = (lambda arr: arr.copy()) if copy else (lambda arr: arr)
        return {
            "keys": dup(self.state.keys),
            "counts": dup(self.state.counts),
            "columns": {name: dup(col) for name, col in self.state.columns.items()},
            "resize_cursor": int(self._resize_cursor),
            "peak_states": int(self.peak_states),
            "kernel_ticks": self.kernel.tick_total(),
        }

    def _restore_payload(self, state: dict[str, Any]) -> None:
        columns = state.get("columns")
        if not isinstance(columns, dict) or set(columns) != set(self.state.columns):
            found = sorted(columns) if isinstance(columns, dict) else columns
            raise CheckpointError(
                f"checkpoint state columns {found!r} do not match this "
                f"kernel's columns {sorted(self.state.columns)!r}"
            )
        self.state = CountsState(
            keys=np.array(state["keys"], copy=True),
            counts=np.array(state["counts"], copy=True),
            columns={name: np.array(col, copy=True) for name, col in columns.items()},
        )
        self._resize_cursor = int(state["resize_cursor"])
        self.peak_states = int(state["peak_states"])
        self.kernel.restore_tick_total(state.get("kernel_ticks"))

    # -------------------------------------------------------------- snapshots

    def _take_snapshot(self) -> EngineSnapshot:
        self._apply_resizes()
        minimum, median, maximum = weighted_quantiles(
            self.kernel.output_values(self.state), self.state.counts
        )
        return EngineSnapshot(
            parallel_time=self.parallel_time,
            population_size=self.size,
            minimum=minimum,
            median=median,
            maximum=maximum,
        )

    def _build_result(
        self, snapshots: list[EngineSnapshot], stopped_early: bool
    ) -> RunResult:
        metadata: dict[str, Any] = {
            "protocol": self.kernel.describe(),
            "engine": self.name,
            "sub_batches": self.sub_batches,
            "occupied_states": self.state.num_states,
            "peak_states": self.peak_states,
        }
        ticks = self.kernel.tick_total()
        if ticks is not None:
            metadata["total_ticks"] = ticks
        return RunResult(
            parallel_time=self.parallel_time,
            interactions=self.interactions_executed,
            final_size=self.size,
            stopped_early=stopped_early,
            snapshots=snapshots,
            metadata=metadata,
        )
