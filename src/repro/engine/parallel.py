"""Sharded parallel execution with a deterministic seed tree.

The trial/sweep hot paths fan one experiment out into many independent
units of work: the trials behind a data point, and the grid points of a
parameter sweep.  This module supplies the three pieces every sharded
execution path shares:

* **shard planning** — :func:`plan_shards` splits a trial range into
  contiguous row-shards whose layout depends *only* on the trial count
  (never on the worker count), so the work decomposition is a pure
  function of the workload;
* **worker resolution** — :func:`resolve_workers` turns the user-facing
  ``workers`` knob (``None`` / ``"auto"`` / a positive int) into a
  concrete process count, capping ``"auto"`` at
  :data:`MAX_AUTO_WORKERS`;
* **execution** — :func:`execute_shards` runs one picklable shard
  function over a list of payloads, either serially in-process
  (``workers=1``) or across a :class:`concurrent.futures.
  ProcessPoolExecutor`, returning results in shard order together with
  per-shard wall-clock timings.

Determinism contract
--------------------
Every random stream consumed inside a shard is derived from a
:class:`repro.engine.rng.SeedTree` *address* — ``(point seed, trial)``
for looped engines, ``(point seed, "shard", start)`` for stacked
ensemble shards — never from the shard's position in an execution
schedule.  Because shard layout is worker-independent and every stream
is address-derived, ``workers=1`` and ``workers=8`` produce bit-identical
per-trial results; the only thing the worker count changes is wall-clock
time.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine.errors import ConfigurationError

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "MAX_AUTO_WORKERS",
    "TrialShard",
    "ShardTiming",
    "plan_shards",
    "resolve_workers",
    "execute_shards",
    "merge_shard_results",
]

#: Maximum trials per row-shard.  Chosen so that realistic points split
#: into enough shards to feed several cores (a paper-scale 96-trial point
#: becomes 12 shards, a 16-trial figure point 2) while each shard's
#: ensemble stack stays wide enough to amortise NumPy call overhead.
#: Part of the determinism contract: the shard layout — and therefore
#: every derived random stream — depends on this constant and the trial
#: count only, never on the worker count.
DEFAULT_SHARD_SIZE = 8

#: Cap for ``workers="auto"``: beyond this, process startup and result
#: pickling dominate the shard runtimes of laptop-scale presets.
MAX_AUTO_WORKERS = 8


@dataclass(frozen=True)
class TrialShard:
    """One contiguous row-shard of a trial range: trials ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ConfigurationError(
                f"invalid shard range [{self.start}, {self.stop})"
            )

    @property
    def trials(self) -> int:
        """Number of trials in this shard."""
        return self.stop - self.start

    def trial_indices(self) -> range:
        """The global trial indices this shard covers."""
        return range(self.start, self.stop)


@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock record of one executed shard."""

    shard: int
    start: int
    stop: int
    seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "start": self.start,
            "stop": self.stop,
            "trials": self.stop - self.start,
            "seconds": self.seconds,
        }


def plan_shards(
    trials: int, shard_size: int | None = None
) -> tuple[TrialShard, ...]:
    """Split ``trials`` into contiguous row-shards of ``<= shard_size`` trials.

    The layout is a pure function of ``(trials, shard_size)`` — it never
    depends on the worker count — and balances shard sizes (the sizes of
    any two shards differ by at most one trial) so no single straggler
    shard dominates the critical path.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be at least 1, got {trials}")
    size = DEFAULT_SHARD_SIZE if shard_size is None else shard_size
    if size < 1:
        raise ConfigurationError(f"shard_size must be at least 1, got {size}")
    count = -(-trials // size)  # ceil division
    base, remainder = divmod(trials, count)
    shards = []
    start = 0
    for index in range(count):
        width = base + (1 if index < remainder else 0)
        shards.append(TrialShard(index=index, start=start, stop=start + width))
        start += width
    return tuple(shards)


def resolve_workers(workers: int | str | None) -> int | None:
    """Normalise the user-facing ``workers`` knob to a process count.

    ``None`` keeps the legacy serial path (returns ``None``); ``"auto"``
    uses ``os.cpu_count()`` capped at :data:`MAX_AUTO_WORKERS`; a positive
    integer is used as-is (``1`` means the sharded path executed
    serially in-process — bit-identical to any higher worker count).
    """
    if workers is None:
        return None
    if isinstance(workers, str):
        if workers == "auto":
            return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))
        raise ConfigurationError(
            f"workers must be a positive integer, 'auto' or None, got {workers!r}"
        )
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be a positive integer, 'auto' or None, got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    return workers


def _timed_shard(job: tuple[Callable[[Any], Any], Any]) -> tuple[Any, float]:
    """Run one shard job and measure it; module-level so workers can unpickle."""
    fn, payload = job
    started = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - started


def execute_shards(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
    shards: Sequence[TrialShard] | None = None,
) -> tuple[list[Any], list[ShardTiming]]:
    """Run ``fn(payload)`` for every payload; return results in input order.

    ``workers=1`` (or a single payload) executes serially in the current
    process; higher counts fan the jobs out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`, in which case ``fn``
    and every payload must be picklable (module-level function, plain-data
    payloads).  Results come back in payload order regardless of worker
    scheduling, and each job's wall-clock time (measured inside the worker)
    is reported as a :class:`ShardTiming` — aligned with ``shards`` when
    given, otherwise numbered by payload position.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    if shards is not None and len(shards) != len(payloads):
        raise ConfigurationError(
            f"got {len(shards)} shards for {len(payloads)} payloads"
        )
    jobs = [(fn, payload) for payload in payloads]
    if workers == 1 or len(jobs) <= 1:
        outcomes = [_timed_shard(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            outcomes = list(pool.map(_timed_shard, jobs))
    results = [result for result, _ in outcomes]
    timings = []
    for position, (_, seconds) in enumerate(outcomes):
        if shards is not None:
            shard = shards[position]
            index, start, stop = shard.index, shard.start, shard.stop
        else:
            index, start, stop = position, position, position + 1
        timings.append(
            ShardTiming(shard=index, start=start, stop=stop, seconds=seconds)
        )
    return results, timings


def merge_shard_results(
    shards: Sequence[TrialShard], per_shard: Sequence[Sequence[Any]]
) -> list[Any]:
    """Reassemble per-shard result lists into one list in trial order.

    Accepts the shards (and their result lists) in *any* order — merging
    sorts by shard start, so the merge is order-invariant — and verifies
    that every shard delivered exactly one result per trial and that the
    shards tile the trial range without gaps or overlaps.
    """
    if len(shards) != len(per_shard):
        raise ConfigurationError(
            f"got {len(per_shard)} result lists for {len(shards)} shards"
        )
    paired = sorted(zip(shards, per_shard), key=lambda pair: pair[0].start)
    merged: list[Any] = []
    expected_start = paired[0][0].start if paired else 0
    if expected_start != 0:
        raise ConfigurationError(
            f"shards do not start at trial 0 (first start: {expected_start})"
        )
    for shard, results in paired:
        if shard.start != len(merged):
            raise ConfigurationError(
                f"shard {shard.index} starts at trial {shard.start}, expected "
                f"{len(merged)}: shards overlap or leave a gap"
            )
        if len(results) != shard.trials:
            raise ConfigurationError(
                f"shard {shard.index} returned {len(results)} results for "
                f"{shard.trials} trials"
            )
        merged.extend(results)
    return merged
