"""Protocol registries, the engine table, and engine selection by name.

Three pieces of plumbing that make the unified engine layer usable from
experiment code:

* a **vectorized registry** mapping scalar protocol classes (subclasses of
  :class:`repro.engine.protocol.Protocol`) to factories for their
  vectorised counterparts, so that the array/batched engines can be asked
  to run a scalar protocol and look up the struct-of-arrays implementation
  themselves;
* a **counts-kernel registry** doing the same for the multiset engine's
  :class:`repro.engine.counts_engine.CountsKernel` adapters; and
* an **engine table** (:class:`EngineInfo`) mapping engine names to
  builders plus capability flags, consumed by :func:`make_engine` — new
  backends (the ROADMAP's Numba/CuPy candidates) are
  :func:`register_engine` calls, not edits to an if-chain.

The five built-in engines — ``"sequential"`` / ``"array"`` / ``"batched"``
/ ``"ensemble"`` / ``"counts"`` — register when this module is imported;
the default protocol registrations (dynamic size counting, the uniform
phase clock, epidemics, junta election, approximate majority) are loaded
lazily on first lookup, so importing this module stays cheap and free of
circular imports.

Example
-------
>>> from repro.core.dynamic_counting import DynamicSizeCounting
>>> from repro.engine.registry import make_engine
>>> engine = make_engine("batched", DynamicSizeCounting(), 10_000, seed=1)
>>> result = engine.run(100)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.engine.adversary import ResizeSchedule, SizeAdversary
from repro.engine.api import Engine
from repro.engine.array_engine import ArraySimulator
from repro.engine.batch_engine import BatchedSimulator, VectorizedProtocol
from repro.engine.counts_engine import CountsKernel, CountsSimulator
from repro.engine.ensemble_engine import EnsembleSimulator
from repro.engine.errors import ConfigurationError
from repro.engine.population import Population
from repro.engine.recorder import Recorder
from repro.engine.rng import RandomSource
from repro.engine.simulator import Simulator

__all__ = [
    "ENGINE_NAMES",
    "SMALL_POPULATION_THRESHOLD",
    "LARGE_POPULATION_THRESHOLD",
    "EngineInfo",
    "register_engine",
    "engine_names",
    "engine_info",
    "engine_capabilities",
    "register_vectorized",
    "has_vectorized",
    "vectorized_for",
    "registered_protocols",
    "register_counts_kernel",
    "has_counts_kernel",
    "counts_kernel_for",
    "registered_counts_protocols",
    "choose_engine",
    "make_engine",
]

#: Below this population size the exact array engine is already cheap, so
#: :func:`choose_engine` prefers exactness over the approximate batched path.
SMALL_POPULATION_THRESHOLD = 128

#: At and above this population size the per-agent engines pay O(n) per
#: parallel step while the counts engine stays O(|Q|^2), so
#: :func:`choose_engine` switches to ``"counts"`` whenever the protocol has
#: a counts kernel.  The crossover is far lower in practice (~10^4), but
#: below this bound the per-agent engines are still comfortably fast and
#: keep their stronger fidelity class.
LARGE_POPULATION_THRESHOLD = 1_000_000

#: Scalar protocol class -> factory building its vectorised counterpart.
_REGISTRY: dict[type, Callable[[Any], VectorizedProtocol]] = {}
#: Protocol class -> factory building its counts kernel.
_COUNTS_REGISTRY: dict[type, Callable[[Any], CountsKernel]] = {}
_defaults_loaded = False


# --------------------------------------------------------------- engine table


@dataclass(frozen=True)
class EngineInfo:
    """One engine registration: a builder plus its capability flags.

    The flags drive :func:`make_engine`'s shared argument validation, so a
    registered backend only implements what it genuinely supports and the
    rejection messages stay uniform.

    Attributes
    ----------
    name:
        Name accepted by :func:`make_engine` / ``--engine``.
    builder:
        Callable with :func:`make_engine`'s full signature building the
        engine instance (called after the shared validation).
    description:
        One-line summary for listings and docs.
    exact:
        Whether the engine reproduces the sequential scheduler exactly
        (as opposed to a synchronous-rounds / count-level approximation).
    supports_trials:
        Accepts ``trials=`` (stacked multi-trial execution).
    supports_recorders:
        Accepts :class:`repro.engine.recorder.Recorder` observers.
    supports_adversary:
        Accepts a :class:`repro.engine.adversary.SizeAdversary` object
        (every engine accepts plain ``resize_schedule`` pairs).
    supports_initial_arrays:
        Accepts ``initial_arrays`` struct-of-arrays initial configurations.
    requires_int_population:
        Only accepts an integer population size (no ``Population`` object).
    supports_jit:
        Accepts ``jit=True`` (the compiled kernel backend of
        :mod:`repro.kernels`); only meaningful for engines that execute
        vectorised per-interaction kernels.
    supports_checkpoint:
        Implements :meth:`repro.engine.api.Engine.checkpoint_payload` /
        ``apply_checkpoint_payload`` (and therefore ``save_checkpoint`` /
        ``restore_checkpoint``), so long-horizon runs can be interrupted
        and resumed bit-identically.  All five built-in engines do; a
        registered backend that cannot serialize its state must say so
        here so the checkpointing executor rejects it up front.
    """

    name: str
    builder: Callable[..., Engine]
    description: str = ""
    exact: bool = False
    supports_trials: bool = False
    supports_recorders: bool = False
    supports_adversary: bool = False
    supports_initial_arrays: bool = False
    requires_int_population: bool = True
    supports_jit: bool = False
    supports_checkpoint: bool = False


_ENGINE_TABLE: dict[str, EngineInfo] = {}

#: Names accepted by :func:`make_engine` (and the experiments' ``engine=``).
#: Rebuilt by :func:`register_engine`; prefer :func:`engine_names` in code
#: that must see late registrations.
ENGINE_NAMES: tuple[str, ...] = ()


def register_engine(info: EngineInfo) -> None:
    """Register (or replace) an engine in the table used by :func:`make_engine`."""
    global ENGINE_NAMES
    _ENGINE_TABLE[info.name] = info
    ENGINE_NAMES = tuple(_ENGINE_TABLE)


def engine_names() -> tuple[str, ...]:
    """Currently registered engine names, in registration order."""
    return tuple(_ENGINE_TABLE)


def engine_info(name: str) -> EngineInfo:
    """The registration record for an engine name."""
    try:
        return _ENGINE_TABLE[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; available engines: {', '.join(_ENGINE_TABLE)}"
        ) from None


def engine_capabilities() -> list[dict[str, Any]]:
    """Every registered engine's capability flags as plain JSON-encodable data.

    One dict per :class:`EngineInfo`, in registration order, with the
    ``builder`` callable dropped — the machine-readable counterpart of the
    engine table, consumed by ``repro.serve``'s ``/healthz`` endpoint and by
    anything else that needs to introspect what a deployment can execute
    without touching engine classes.
    """
    capabilities = []
    for info in _ENGINE_TABLE.values():
        record = dataclasses.asdict(info)
        del record["builder"]
        capabilities.append(record)
    return capabilities


# ------------------------------------------------------- vectorized registry


def register_vectorized(
    protocol_cls: type, factory: Callable[[Any], VectorizedProtocol]
) -> None:
    """Register ``factory(protocol) -> VectorizedProtocol`` for a protocol class.

    The factory receives the scalar protocol instance so that it can carry
    over parameters (protocol constants, one-way flags, level caps, ...).
    Registering a class again replaces the previous factory.
    """
    _REGISTRY[protocol_cls] = factory


def register_counts_kernel(
    protocol_cls: type, factory: Callable[[Any], CountsKernel]
) -> None:
    """Register ``factory(protocol) -> CountsKernel`` for a protocol class.

    Mirrors :func:`register_vectorized` for the counts engine.  Registering
    both the scalar protocol class and its vectorised counterpart lets
    callers holding either representation run on ``"counts"``.
    """
    _COUNTS_REGISTRY[protocol_cls] = factory


def _ensure_default_registrations() -> None:
    """Load the built-in registrations (deferred to avoid import cycles)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.core.counts import DynamicCountingCountsKernel
    from repro.core.dynamic_counting import DynamicSizeCounting
    from repro.core.phase_clock import UniformPhaseClock
    from repro.core.vectorized import VectorizedDynamicCounting
    from repro.protocols.counts import (
        ApproximateMajorityCountsKernel,
        InfectionEpidemicCountsKernel,
        JuntaElectionCountsKernel,
        MaxEpidemicCountsKernel,
    )
    from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
    from repro.protocols.junta import JuntaElection
    from repro.protocols.majority import ApproximateMajority
    from repro.protocols.vectorized import (
        VectorizedApproximateMajority,
        VectorizedInfectionEpidemic,
        VectorizedJuntaElection,
        VectorizedMaxEpidemic,
    )

    register_vectorized(
        DynamicSizeCounting, lambda p: VectorizedDynamicCounting(p.params)
    )
    # The uniform phase clock *is* the counting protocol (its ticks are the
    # resets), so its vectorised counterpart is the counting kernel, whose
    # ``resets`` array doubles as the cumulative tick count.
    register_vectorized(
        UniformPhaseClock, lambda p: VectorizedDynamicCounting(p.params)
    )
    register_vectorized(
        MaxEpidemic, lambda p: VectorizedMaxEpidemic(p.initial_value, p.one_way)
    )
    register_vectorized(
        InfectionEpidemic, lambda p: VectorizedInfectionEpidemic(p.one_way)
    )
    register_vectorized(JuntaElection, lambda p: VectorizedJuntaElection(p.max_level))
    register_vectorized(
        ApproximateMajority, lambda p: VectorizedApproximateMajority(p.initial_opinion)
    )

    # Counts kernels: registered for the scalar protocols *and* their
    # vectorised counterparts, so code paths that already resolved a
    # VectorizedProtocol (the generic trace builder, scenario executors)
    # can switch to the counts engine without re-plumbing.
    for cls in (DynamicSizeCounting, UniformPhaseClock, VectorizedDynamicCounting):
        register_counts_kernel(cls, lambda p: DynamicCountingCountsKernel(p.params))
    for cls in (MaxEpidemic, VectorizedMaxEpidemic):
        register_counts_kernel(
            cls, lambda p: MaxEpidemicCountsKernel(p.initial_value, p.one_way)
        )
    for cls in (InfectionEpidemic, VectorizedInfectionEpidemic):
        register_counts_kernel(cls, lambda p: InfectionEpidemicCountsKernel(p.one_way))
    for cls in (JuntaElection, VectorizedJuntaElection):
        register_counts_kernel(cls, lambda p: JuntaElectionCountsKernel(p.max_level))
    for cls in (ApproximateMajority, VectorizedApproximateMajority):
        register_counts_kernel(
            cls, lambda p: ApproximateMajorityCountsKernel(p.initial_opinion)
        )


def has_vectorized(protocol: Any) -> bool:
    """Whether a vectorised counterpart is known for ``protocol``."""
    if isinstance(protocol, VectorizedProtocol):
        return True
    _ensure_default_registrations()
    return any(isinstance(protocol, cls) for cls in _REGISTRY)


def vectorized_for(protocol: Any) -> VectorizedProtocol:
    """Return the vectorised counterpart of a scalar protocol instance.

    A :class:`VectorizedProtocol` passed in is returned unchanged.  Lookup
    walks the protocol's exact class first and then its MRO, so registering
    a base class covers subclasses too.
    """
    if isinstance(protocol, VectorizedProtocol):
        return protocol
    _ensure_default_registrations()
    for cls in type(protocol).__mro__:
        factory = _REGISTRY.get(cls)
        if factory is not None:
            return factory(protocol)
    raise ConfigurationError(
        f"no vectorized counterpart registered for {type(protocol).__name__}; "
        f"registered protocols: {', '.join(registered_protocols()) or '(none)'}. "
        "Use register_vectorized() or run on the sequential engine."
    )


def registered_protocols() -> list[str]:
    """Sorted names of the scalar protocol classes with registrations."""
    _ensure_default_registrations()
    return sorted(cls.__name__ for cls in _REGISTRY)


def counts_kernel_for(protocol: Any) -> CountsKernel:
    """Build the counts kernel for a protocol instance.

    A :class:`~repro.engine.counts_engine.CountsKernel` passed in is
    returned unchanged; otherwise the lookup walks the protocol's MRO like
    :func:`vectorized_for`.  Raises :class:`ConfigurationError` when no
    kernel is registered *or* when the registered kernel rejects the
    protocol's parameterisation (e.g. the theory presets of dynamic
    counting overflow the packed state key).
    """
    if isinstance(protocol, CountsKernel):
        return protocol
    _ensure_default_registrations()
    for cls in type(protocol).__mro__:
        factory = _COUNTS_REGISTRY.get(cls)
        if factory is not None:
            return factory(protocol)
    raise ConfigurationError(
        f"no counts kernel registered for {type(protocol).__name__}; "
        f"registered protocols: {', '.join(registered_counts_protocols()) or '(none)'}. "
        "Use register_counts_kernel() or run on a per-agent engine."
    )


def has_counts_kernel(protocol: Any) -> bool:
    """Whether ``protocol`` can run on the counts engine *as parameterised*.

    False both when no kernel is registered and when kernel construction
    rejects the parameters, so :func:`choose_engine` never selects
    ``"counts"`` for a workload :func:`make_engine` would refuse.
    """
    try:
        counts_kernel_for(protocol)
    except ConfigurationError:
        return False
    return True


def registered_counts_protocols() -> list[str]:
    """Sorted names of the protocol classes with counts-kernel registrations."""
    _ensure_default_registrations()
    return sorted(cls.__name__ for cls in _COUNTS_REGISTRY)


def choose_engine(
    protocol: Any,
    trials: int,
    n: int,
    *,
    workers: int | None = None,
    jit: bool = False,
) -> str:
    """Pick the best engine name for a workload.

    The policy mirrors the measured trade-offs of the engine benchmarks,
    tiered by population size and trial count:

    * a protocol without a vectorised counterpart can only run on the
      ``"sequential"`` engine;
    * small populations (``n <=`` :data:`SMALL_POPULATION_THRESHOLD`) run on
      the exact ``"array"`` engine — at that scale exactness is free;
    * huge populations (``n >=`` :data:`LARGE_POPULATION_THRESHOLD`) of
      protocols with a counts kernel run on the ``"counts"`` engine, whose
      per-step cost is independent of ``n`` (a multi-trial point loops or
      shards counts instances — still far cheaper than any per-agent
      stacking at this scale);
    * multi-trial workloads of vectorisable protocols run fastest on the
      ``"ensemble"`` engine (trials in stacked passes);
    * a single large trial runs on the ``"batched"`` engine.

    ``workers`` declares that the workload will run on the sharded
    execution layer (:mod:`repro.engine.parallel`), where the unit that
    actually executes is a row-shard of
    :func:`~repro.engine.parallel.plan_shards` rather than the whole
    point.  The stacked-vs-batched decision is then a *per-shard* one —
    and because the balanced layout guarantees every shard of a
    multi-trial point holds at least two trials (a single-trial shard
    exists only when ``trials == 1``), the per-shard choice provably
    coincides with the per-point choice for every workload.  The counts
    tier keeps that equivalence trivially: its trigger depends only on the
    protocol and ``n``, which every shard of a point shares.  The
    equivalence is pinned by the registry tests.  The parameter is
    validated and kept so callers state their execution context
    explicitly and alternative shard layouts can change the policy
    without touching call sites.

    ``jit`` declares that the caller will pass ``jit=True`` to
    :func:`make_engine`.  It does not change the tiering: the compiled
    kernels accelerate exactly the engines this policy already prefers for
    large per-agent workloads (``"batched"`` / ``"ensemble"``), and the
    tiers where they don't apply (``"sequential"``, ``"array"``,
    ``"counts"``) are chosen for exactness or asymptotics that compilation
    cannot buy back.  Like ``workers``, the parameter keeps call sites
    explicit so a future backend with different crossovers can shift the
    policy centrally.

    Experiments that pin an engine for reproducibility of published outputs
    bypass this helper; everything else (new scenarios, ``--engine auto``)
    routes through it.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be at least 1, got {trials}")
    if n < 2:
        raise ConfigurationError(f"population size must be at least 2, got {n}")
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    if not has_vectorized(protocol):
        return "sequential"
    if n <= SMALL_POPULATION_THRESHOLD:
        return "array"
    if n >= LARGE_POPULATION_THRESHOLD and has_counts_kernel(protocol):
        return "counts"
    if trials > 1:
        return "ensemble"
    return "batched"


# ------------------------------------------------------------------ builders


def _build_sequential(
    protocol: Any,
    population: int | Population,
    *,
    rng: RandomSource | None,
    seed: int | None,
    resize_schedule: tuple[tuple[int, int], ...],
    adversary: SizeAdversary | None,
    recorders: Iterable[Recorder],
    snapshot_stats: bool,
    initial_arrays: dict[str, np.ndarray] | None,
    sub_batches: int,
    trials: int | None,
    jit: bool,
) -> Engine:
    if isinstance(protocol, VectorizedProtocol):
        raise ConfigurationError(
            "the sequential engine needs a scalar Protocol, got the "
            f"vectorized {type(protocol).__name__}"
        )
    if adversary is not None and resize_schedule:
        raise ConfigurationError("pass either adversary or resize_schedule, not both")
    if adversary is None and resize_schedule:
        adversary = ResizeSchedule.from_pairs(resize_schedule)
    return Simulator(
        protocol,
        population,
        rng=rng,
        seed=seed,
        adversary=adversary,
        recorders=recorders,
        snapshot_stats=snapshot_stats,
    )


def _build_array(protocol, population, *, rng, seed, resize_schedule, initial_arrays, **_):
    return ArraySimulator(
        vectorized_for(protocol),
        population,
        rng=rng,
        seed=seed,
        resize_schedule=resize_schedule,
        initial_arrays=initial_arrays,
    )


def _jit_wrapped(protocol: Any, jit: bool) -> VectorizedProtocol:
    """Resolve the vectorised kernel, upgrading to the compiled one on request."""
    vectorized = vectorized_for(protocol)
    if not jit:
        return vectorized
    from repro.kernels import jit_wrap

    return jit_wrap(vectorized)


def _build_batched(
    protocol,
    population,
    *,
    rng,
    seed,
    resize_schedule,
    initial_arrays,
    sub_batches,
    jit,
    **_,
):
    return BatchedSimulator(
        _jit_wrapped(protocol, jit),
        population,
        rng=rng,
        seed=seed,
        resize_schedule=resize_schedule,
        initial_arrays=initial_arrays,
        sub_batches=sub_batches,
    )


def _build_ensemble(
    protocol,
    population,
    *,
    rng,
    seed,
    resize_schedule,
    initial_arrays,
    sub_batches,
    trials,
    jit,
    **_,
):
    return EnsembleSimulator(
        _jit_wrapped(protocol, jit),
        population,
        trials=1 if trials is None else trials,
        rng=rng,
        seed=seed,
        resize_schedule=resize_schedule,
        initial_arrays=initial_arrays,
        sub_batches=sub_batches,
    )


def _build_counts(
    protocol, population, *, rng, seed, resize_schedule, initial_arrays, sub_batches, **_
):
    kernel = counts_kernel_for(protocol)
    initial_state = None
    if initial_arrays is not None:
        initial_state = kernel.state_from_arrays(initial_arrays)
    return CountsSimulator(
        kernel,
        population,
        rng=rng,
        seed=seed,
        resize_schedule=resize_schedule,
        sub_batches=sub_batches,
        initial_state=initial_state,
    )


register_engine(
    EngineInfo(
        name="sequential",
        builder=_build_sequential,
        description="exact interleaving over object state (recorders, adversaries)",
        exact=True,
        supports_recorders=True,
        supports_adversary=True,
        requires_int_population=False,
        supports_checkpoint=True,
    )
)
register_engine(
    EngineInfo(
        name="array",
        builder=_build_array,
        description="exact interleaving over struct-of-arrays state",
        exact=True,
        supports_initial_arrays=True,
        supports_checkpoint=True,
    )
)
register_engine(
    EngineInfo(
        name="batched",
        builder=_build_batched,
        description="approximate synchronous-rounds batching, one trial",
        supports_initial_arrays=True,
        supports_jit=True,
        supports_checkpoint=True,
    )
)
register_engine(
    EngineInfo(
        name="ensemble",
        builder=_build_ensemble,
        description="approximate batching stacked across all trials at once",
        supports_trials=True,
        supports_initial_arrays=True,
        supports_jit=True,
        supports_checkpoint=True,
    )
)
register_engine(
    EngineInfo(
        name="counts",
        builder=_build_counts,
        description="count-vector multiset dynamics; per-step cost independent of n",
        supports_initial_arrays=True,
        supports_checkpoint=True,
    )
)


def make_engine(
    engine: str,
    protocol: Any,
    population: int | Population,
    *,
    rng: RandomSource | None = None,
    seed: int | None = None,
    resize_schedule: Iterable[tuple[int, int]] = (),
    adversary: SizeAdversary | None = None,
    recorders: Iterable[Recorder] = (),
    snapshot_stats: bool = True,
    initial_arrays: dict[str, np.ndarray] | None = None,
    sub_batches: int = 8,
    trials: int | None = None,
    jit: bool = False,
) -> Engine:
    """Build an engine by name for the given protocol and population.

    Parameters
    ----------
    engine:
        A registered engine name (see :func:`engine_names`):
        ``"sequential"`` (exact, object state), ``"array"`` (exact,
        struct-of-arrays state), ``"batched"`` (approximate, vectorised),
        ``"ensemble"`` (approximate, vectorised across all trials of an
        experiment at once) or ``"counts"`` (count-vector multiset
        dynamics, per-step cost independent of ``n``).
    protocol:
        A scalar :class:`repro.engine.protocol.Protocol` (looked up in the
        registries for the array/batched/counts engines) or a
        :class:`VectorizedProtocol` (used directly by the array engines and
        mapped to its counts kernel by the counts engine; rejected by the
        sequential engine).
    population:
        Initial population size; the sequential engine also accepts a
        pre-built :class:`Population`.
    resize_schedule:
        ``(parallel_time, target_size)`` adversary events, translated into
        a :class:`repro.engine.adversary.ResizeSchedule` for the sequential
        engine and passed through natively to the array/counts engines
        (the counts engine applies them as hypergeometric subsampling /
        initial-state re-injection on the count vector).
    adversary / recorders / snapshot_stats:
        Sequential-engine extras (richer than the shared snapshot hooks);
        ``snapshot_stats=False`` skips the per-snapshot output statistics
        for callers that only consume recorders.  ``adversary`` and
        ``recorders`` are rejected for engines whose capability flags do
        not list them.
    initial_arrays / sub_batches:
        Array-engine extras; rejected for the sequential engine.  The
        counts engine converts ``initial_arrays`` into its count state
        (integer-valued planes only).
    trials:
        Number of stacked trials for the ensemble engine (defaults to 1);
        rejected for every engine without ``supports_trials`` — they run
        one trial per instance and are looped by
        :class:`repro.engine.runner.TrialRunner`.
    jit:
        Upgrade the vectorised kernels to the compiled backend of
        :mod:`repro.kernels` (best effort: when numba is unavailable or
        ``REPRO_DISABLE_JIT`` is set, the engine silently runs the NumPy
        reference kernels — see :func:`repro.kernels.availability`).
        Rejected for engines without ``supports_jit``.
    """
    resize_schedule = tuple(resize_schedule)
    info = _ENGINE_TABLE.get(engine)
    if info is None:
        raise ConfigurationError(
            f"unknown engine {engine!r}; available engines: {', '.join(_ENGINE_TABLE)}"
        )
    if trials is not None and not info.supports_trials:
        raise ConfigurationError(
            "trials is only supported by the ensemble engine; the "
            f"{engine!r} engine runs one trial per instance"
        )
    if adversary is not None and not info.supports_adversary:
        raise ConfigurationError(
            f"the {engine} engine takes resize_schedule pairs, not a "
            f"SizeAdversary; got {type(adversary).__name__}"
        )
    recorders = list(recorders)
    if recorders and not info.supports_recorders:
        raise ConfigurationError(
            f"the {engine} engine does not support Recorder observers; "
            "use Engine.add_snapshot_hook() instead"
        )
    if jit and not info.supports_jit:
        raise ConfigurationError(
            f"the {engine} engine does not support the compiled kernel "
            "backend (jit=True); use the batched or ensemble engine"
        )
    if initial_arrays is not None and not info.supports_initial_arrays:
        raise ConfigurationError(
            "initial_arrays is only supported by the array/batched engines; "
            "pass a pre-built Population to the sequential engine instead"
        )
    if info.requires_int_population and not isinstance(population, int):
        raise ConfigurationError(
            f"the {engine} engine needs an integer population size, got "
            f"{type(population).__name__}; use initial_arrays for custom "
            "initial configurations"
        )
    return info.builder(
        protocol,
        population,
        rng=rng,
        seed=seed,
        resize_schedule=resize_schedule,
        adversary=adversary,
        recorders=recorders,
        snapshot_stats=snapshot_stats,
        initial_arrays=initial_arrays,
        sub_batches=sub_batches,
        trials=trials,
        jit=jit,
    )
