"""Protocol-to-vectorized registry and engine selection by name.

Two pieces of plumbing that make the unified engine layer usable from
experiment code:

* a **registry** mapping scalar protocol classes (subclasses of
  :class:`repro.engine.protocol.Protocol`) to factories for their
  vectorised counterparts, so that the array/batched engines can be asked
  to run a scalar protocol and look up the struct-of-arrays implementation
  themselves; and
* :func:`make_engine`, which builds any of the four engines —
  ``"sequential"`` / ``"array"`` / ``"batched"`` / ``"ensemble"`` — from a
  protocol and a population size, converting a ``resize_schedule`` into the
  right adversary representation for each engine.

The default registrations (dynamic size counting, the uniform phase clock,
epidemics, junta election, approximate majority) are loaded lazily on first
lookup, so importing this module stays cheap and free of circular imports.

Example
-------
>>> from repro.core.dynamic_counting import DynamicSizeCounting
>>> from repro.engine.registry import make_engine
>>> engine = make_engine("batched", DynamicSizeCounting(), 10_000, seed=1)
>>> result = engine.run(100)
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from repro.engine.adversary import ResizeSchedule, SizeAdversary
from repro.engine.api import Engine
from repro.engine.array_engine import ArraySimulator
from repro.engine.batch_engine import BatchedSimulator, VectorizedProtocol
from repro.engine.ensemble_engine import EnsembleSimulator
from repro.engine.errors import ConfigurationError
from repro.engine.population import Population
from repro.engine.recorder import Recorder
from repro.engine.rng import RandomSource
from repro.engine.simulator import Simulator

__all__ = [
    "ENGINE_NAMES",
    "SMALL_POPULATION_THRESHOLD",
    "register_vectorized",
    "has_vectorized",
    "vectorized_for",
    "registered_protocols",
    "choose_engine",
    "make_engine",
]

#: Names accepted by :func:`make_engine` (and the experiments' ``engine=``).
ENGINE_NAMES = ("sequential", "array", "batched", "ensemble")

#: Below this population size the exact array engine is already cheap, so
#: :func:`choose_engine` prefers exactness over the approximate batched path.
SMALL_POPULATION_THRESHOLD = 128

#: Scalar protocol class -> factory building its vectorised counterpart.
_REGISTRY: dict[type, Callable[[Any], VectorizedProtocol]] = {}
_defaults_loaded = False


def register_vectorized(
    protocol_cls: type, factory: Callable[[Any], VectorizedProtocol]
) -> None:
    """Register ``factory(protocol) -> VectorizedProtocol`` for a protocol class.

    The factory receives the scalar protocol instance so that it can carry
    over parameters (protocol constants, one-way flags, level caps, ...).
    Registering a class again replaces the previous factory.
    """
    _REGISTRY[protocol_cls] = factory


def _ensure_default_registrations() -> None:
    """Load the built-in registrations (deferred to avoid import cycles)."""
    global _defaults_loaded
    if _defaults_loaded:
        return
    _defaults_loaded = True
    from repro.core.dynamic_counting import DynamicSizeCounting
    from repro.core.phase_clock import UniformPhaseClock
    from repro.core.vectorized import VectorizedDynamicCounting
    from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
    from repro.protocols.junta import JuntaElection
    from repro.protocols.majority import ApproximateMajority
    from repro.protocols.vectorized import (
        VectorizedApproximateMajority,
        VectorizedInfectionEpidemic,
        VectorizedJuntaElection,
        VectorizedMaxEpidemic,
    )

    register_vectorized(
        DynamicSizeCounting, lambda p: VectorizedDynamicCounting(p.params)
    )
    # The uniform phase clock *is* the counting protocol (its ticks are the
    # resets), so its vectorised counterpart is the counting kernel, whose
    # ``resets`` array doubles as the cumulative tick count.
    register_vectorized(
        UniformPhaseClock, lambda p: VectorizedDynamicCounting(p.params)
    )
    register_vectorized(
        MaxEpidemic, lambda p: VectorizedMaxEpidemic(p.initial_value, p.one_way)
    )
    register_vectorized(
        InfectionEpidemic, lambda p: VectorizedInfectionEpidemic(p.one_way)
    )
    register_vectorized(JuntaElection, lambda p: VectorizedJuntaElection(p.max_level))
    register_vectorized(
        ApproximateMajority, lambda p: VectorizedApproximateMajority(p.initial_opinion)
    )


def has_vectorized(protocol: Any) -> bool:
    """Whether a vectorised counterpart is known for ``protocol``."""
    if isinstance(protocol, VectorizedProtocol):
        return True
    _ensure_default_registrations()
    return any(isinstance(protocol, cls) for cls in _REGISTRY)


def vectorized_for(protocol: Any) -> VectorizedProtocol:
    """Return the vectorised counterpart of a scalar protocol instance.

    A :class:`VectorizedProtocol` passed in is returned unchanged.  Lookup
    walks the protocol's exact class first and then its MRO, so registering
    a base class covers subclasses too.
    """
    if isinstance(protocol, VectorizedProtocol):
        return protocol
    _ensure_default_registrations()
    for cls in type(protocol).__mro__:
        factory = _REGISTRY.get(cls)
        if factory is not None:
            return factory(protocol)
    raise ConfigurationError(
        f"no vectorized counterpart registered for {type(protocol).__name__}; "
        f"registered protocols: {', '.join(registered_protocols()) or '(none)'}. "
        "Use register_vectorized() or run on the sequential engine."
    )


def registered_protocols() -> list[str]:
    """Sorted names of the scalar protocol classes with registrations."""
    _ensure_default_registrations()
    return sorted(cls.__name__ for cls in _REGISTRY)


def choose_engine(
    protocol: Any, trials: int, n: int, *, workers: int | None = None
) -> str:
    """Pick the best engine name for a workload.

    The policy mirrors the measured trade-offs of the engine benchmarks:

    * a protocol without a vectorised counterpart can only run on the
      ``"sequential"`` engine;
    * small populations (``n <=`` :data:`SMALL_POPULATION_THRESHOLD`) run on
      the exact ``"array"`` engine — at that scale exactness is free;
    * multi-trial workloads of vectorisable protocols run fastest on the
      ``"ensemble"`` engine (trials in stacked passes);
    * a single large trial runs on the ``"batched"`` engine.

    ``workers`` declares that the workload will run on the sharded
    execution layer (:mod:`repro.engine.parallel`), where the unit that
    actually executes is a row-shard of
    :func:`~repro.engine.parallel.plan_shards` rather than the whole
    point.  The stacked-vs-batched decision is then a *per-shard* one —
    and because the balanced layout guarantees every shard of a
    multi-trial point holds at least two trials (a single-trial shard
    exists only when ``trials == 1``), the per-shard choice provably
    coincides with the per-point choice for every workload; the
    equivalence is pinned by the registry tests.  The parameter is
    validated and kept so callers state their execution context
    explicitly and alternative shard layouts can change the policy
    without touching call sites.

    Experiments that pin an engine for reproducibility of published outputs
    bypass this helper; everything else (new scenarios, ``--engine auto``)
    routes through it.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be at least 1, got {trials}")
    if n < 2:
        raise ConfigurationError(f"population size must be at least 2, got {n}")
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    if not has_vectorized(protocol):
        return "sequential"
    if n <= SMALL_POPULATION_THRESHOLD:
        return "array"
    if trials > 1:
        return "ensemble"
    return "batched"


def make_engine(
    engine: str,
    protocol: Any,
    population: int | Population,
    *,
    rng: RandomSource | None = None,
    seed: int | None = None,
    resize_schedule: Iterable[tuple[int, int]] = (),
    adversary: SizeAdversary | None = None,
    recorders: Iterable[Recorder] = (),
    snapshot_stats: bool = True,
    initial_arrays: dict[str, np.ndarray] | None = None,
    sub_batches: int = 8,
    trials: int | None = None,
) -> Engine:
    """Build an engine by name for the given protocol and population.

    Parameters
    ----------
    engine:
        One of :data:`ENGINE_NAMES`: ``"sequential"`` (exact, object
        state), ``"array"`` (exact, struct-of-arrays state), ``"batched"``
        (approximate, vectorised) or ``"ensemble"`` (approximate,
        vectorised across all trials of an experiment at once).
    protocol:
        A scalar :class:`repro.engine.protocol.Protocol` (looked up in the
        registry for the array/batched engines) or a
        :class:`VectorizedProtocol` (used directly; rejected by the
        sequential engine).
    population:
        Initial population size; the sequential engine also accepts a
        pre-built :class:`Population`.
    resize_schedule:
        ``(parallel_time, target_size)`` adversary events, translated into
        a :class:`repro.engine.adversary.ResizeSchedule` for the sequential
        engine and passed through natively to the array engines.
    adversary / recorders / snapshot_stats:
        Sequential-engine extras (richer than the shared snapshot hooks);
        ``snapshot_stats=False`` skips the per-snapshot output statistics
        for callers that only consume recorders.  ``adversary`` and
        ``recorders`` are rejected for the array/batched engines.
    initial_arrays / sub_batches:
        Array-engine extras; rejected for the sequential engine.
    trials:
        Number of stacked trials for the ensemble engine (defaults to 1);
        rejected for every other engine — they run one trial per instance
        and are looped by :class:`repro.engine.runner.TrialRunner`.
    """
    resize_schedule = tuple(resize_schedule)
    if engine != "ensemble" and trials is not None:
        raise ConfigurationError(
            "trials is only supported by the ensemble engine; the "
            f"{engine!r} engine runs one trial per instance"
        )
    if engine == "sequential":
        if isinstance(protocol, VectorizedProtocol):
            raise ConfigurationError(
                "the sequential engine needs a scalar Protocol, got the "
                f"vectorized {type(protocol).__name__}"
            )
        if initial_arrays is not None:
            raise ConfigurationError(
                "initial_arrays is only supported by the array/batched engines; "
                "pass a pre-built Population to the sequential engine instead"
            )
        if adversary is not None and resize_schedule:
            raise ConfigurationError("pass either adversary or resize_schedule, not both")
        if adversary is None and resize_schedule:
            adversary = ResizeSchedule.from_pairs(resize_schedule)
        return Simulator(
            protocol,
            population,
            rng=rng,
            seed=seed,
            adversary=adversary,
            recorders=recorders,
            snapshot_stats=snapshot_stats,
        )
    if engine in ("array", "batched", "ensemble"):
        if adversary is not None:
            raise ConfigurationError(
                f"the {engine} engine takes resize_schedule pairs, not a "
                f"SizeAdversary; got {type(adversary).__name__}"
            )
        if list(recorders):
            raise ConfigurationError(
                f"the {engine} engine does not support Recorder observers; "
                "use Engine.add_snapshot_hook() instead"
            )
        if not isinstance(population, int):
            raise ConfigurationError(
                f"the {engine} engine needs an integer population size, got "
                f"{type(population).__name__}; use initial_arrays for custom "
                "initial configurations"
            )
        vectorized = vectorized_for(protocol)
        if engine == "array":
            return ArraySimulator(
                vectorized,
                population,
                rng=rng,
                seed=seed,
                resize_schedule=resize_schedule,
                initial_arrays=initial_arrays,
            )
        if engine == "ensemble":
            return EnsembleSimulator(
                vectorized,
                population,
                trials=1 if trials is None else trials,
                rng=rng,
                seed=seed,
                resize_schedule=resize_schedule,
                initial_arrays=initial_arrays,
                sub_batches=sub_batches,
            )
        return BatchedSimulator(
            vectorized,
            population,
            rng=rng,
            seed=seed,
            resize_schedule=resize_schedule,
            initial_arrays=initial_arrays,
            sub_batches=sub_batches,
        )
    raise ConfigurationError(
        f"unknown engine {engine!r}; available engines: {', '.join(ENGINE_NAMES)}"
    )
