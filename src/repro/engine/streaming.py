"""Constant-memory metric reduction for long-horizon runs.

Every stock recorder accumulates one row per snapshot, so a 10^6-snapshot
run holds 10^6 rows in memory per recorder — O(T) growth that caps the
horizons the convergence and holding-time experiments can reach.  This
module provides the streaming counterparts:

* :class:`RunningExtrema` / :class:`RunningColumnStats` — exact running
  count/min/max plus Welford mean/variance, O(1) memory;
* :class:`P2Quantile` — the P² (Jain & Chlamtac, 1985) running quantile
  estimator: five markers per probed quantile, parabolic interpolation,
  no stored samples;
* :class:`ReservoirBuffer` — a uniform sample of a stream (Vitter's
  algorithm R) on a private RNG, so sampling never perturbs engine
  streams;
* :class:`BoundedRowBuffer` — a stride-doubling decimating row buffer:
  keeps every ``stride``-th row, doubling the stride whenever the buffer
  would exceed its capacity, so retained rows stay evenly spaced over the
  whole horizon and memory stays ≤ capacity forever;
* :class:`StreamingEstimateRecorder` — the constant-memory drop-in for
  :class:`repro.engine.recorder.EstimateRecorder`: same row type, same
  ``series()`` columns (decimated), plus exact extrema and P² quantile
  summaries over the *full* undecimated stream.  It implements both
  observation channels — the sequential engine's
  :class:`~repro.engine.recorder.Recorder` interface and the
  engine-agnostic snapshot-hook signature (the instance is callable as
  ``hook(engine, snapshot)``), so one recorder serves all five engines.

Accuracy contract: extrema, counts, and means are exact.  P² quantile
estimates are approximate; on smooth unimodal streams of ``T`` samples the
error is typically well under 1% of the interquartile range (the regression
tests pin < 2.5% of the value range on a 200k-sample mixture stream).  For
exact quantiles of a bounded-size subsample, use :class:`ReservoirBuffer`.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.api import EngineSnapshot
from repro.engine.errors import ConfigurationError
from repro.engine.recorder import Recorder, SnapshotStats, quantiles

__all__ = [
    "RunningExtrema",
    "P2Quantile",
    "RunningColumnStats",
    "ReservoirBuffer",
    "BoundedRowBuffer",
    "StreamingEstimateRecorder",
]


class RunningExtrema:
    """Exact running count / minimum / maximum of a stream of floats.

    NaN observations are counted separately and never contaminate the
    extrema, matching how a momentarily-empty population reports NaN
    statistics without erasing the rest of the series.
    """

    def __init__(self) -> None:
        self.count = 0
        self.nan_count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        if value != value:
            self.nan_count += 1
            return
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def summary(self) -> dict[str, float]:
        nan = float("nan")
        return {
            "count": float(self.count),
            "nan_count": float(self.nan_count),
            "minimum": self.minimum if self.count else nan,
            "maximum": self.maximum if self.count else nan,
        }


class P2Quantile:
    """Running estimate of one quantile via the P² algorithm.

    Five markers track the quantile of everything observed so far with O(1)
    memory and O(1) work per observation (Jain & Chlamtac, CACM 1985).
    Until five finite values have arrived the exact small-sample quantile is
    returned; NaN observations are skipped.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"quantile probability must be in (0, 1), got {p}")
        self.p = float(p)
        self._initial: list[float] = []
        self._q: list[float] | None = None  # marker heights
        self._n: list[float] | None = None  # marker positions
        self._ns: list[float] | None = None  # desired positions

    def update(self, value: float) -> None:
        x = float(value)
        if x != x:
            return
        if self._q is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                p = self.p
                self._q = list(self._initial)
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._ns = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]
            return
        q, n, ns = self._q, self._n, self._ns
        assert q is not None and n is not None and ns is not None
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        increments = (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)
        for i in range(5):
            ns[i] += increments[i]
        for i in (1, 2, 3):
            d = ns[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                sign = 1.0 if d >= 0 else -1.0
                candidate = q[i] + sign / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
                )
                if not q[i - 1] < candidate < q[i + 1]:
                    # Parabolic prediction left the bracket; fall back to
                    # the linear step in the sign's direction.
                    j = i + int(sign)
                    candidate = q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])
                q[i] = candidate
                n[i] += sign

    def value(self) -> float:
        if self._q is not None:
            return float(self._q[2])
        if not self._initial:
            return float("nan")
        ordered = sorted(self._initial)
        # Exact linear-interpolation quantile while the sample is tiny.
        position = self.p * (len(ordered) - 1)
        low = int(math.floor(position))
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return (1.0 - weight) * ordered[low] + weight * ordered[high]


class RunningColumnStats:
    """Exact extrema/mean plus P² quantile probes for one series column."""

    def __init__(self, probes: Sequence[float] = (0.25, 0.5, 0.75)) -> None:
        self.extrema = RunningExtrema()
        self._mean = 0.0
        self._m2 = 0.0
        self.quantiles = {float(p): P2Quantile(p) for p in probes}

    def update(self, value: float) -> None:
        value = float(value)
        self.extrema.update(value)
        if value == value:
            # Welford's running mean/variance over the finite observations.
            count = self.extrema.count
            delta = value - self._mean
            self._mean += delta / count
            self._m2 += delta * (value - self._mean)
        for probe in self.quantiles.values():
            probe.update(value)

    def summary(self) -> dict[str, float]:
        nan = float("nan")
        count = self.extrema.count
        result = self.extrema.summary()
        result["mean"] = self._mean if count else nan
        result["variance"] = self._m2 / (count - 1) if count > 1 else nan
        for p, probe in sorted(self.quantiles.items()):
            result[f"q{p:g}"] = probe.value()
        return result


class ReservoirBuffer:
    """Uniform random sample of a stream (algorithm R), bounded capacity.

    Sampling randomness comes from a private :func:`numpy.random.default_rng`
    generator seeded at construction — never from an engine's stream — so
    attaching or detaching a reservoir cannot change simulation results.
    """

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.seen = 0
        self._items: list[Any] = []
        self._rng = np.random.default_rng(seed)

    def push(self, item: Any) -> None:
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = int(self._rng.integers(0, self.seen))
        if slot < self.capacity:
            self._items[slot] = item

    @property
    def items(self) -> list[Any]:
        """The current sample (arbitrary order)."""
        return list(self._items)


class BoundedRowBuffer:
    """Decimating row buffer: at most ``capacity`` rows over any horizon.

    Keeps every ``stride``-th appended row; when the retained rows would
    exceed the capacity, every other retained row is dropped and the stride
    doubles.  Retained rows are therefore always evenly spaced from the
    first row to (within one stride of) the latest, and memory is bounded
    by ``capacity`` regardless of how many rows are appended.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 2:
            raise ConfigurationError(f"row buffer capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self.stride = 1
        self.appended = 0
        self._rows: list[Any] = []

    def append(self, row: Any) -> None:
        if self.appended % self.stride == 0:
            self._rows.append(row)
            if len(self._rows) > self.capacity:
                self._rows = self._rows[::2]
                self.stride *= 2
        self.appended += 1

    @property
    def rows(self) -> list[Any]:
        """The retained rows, oldest first."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class StreamingEstimateRecorder(Recorder):
    """Constant-memory :class:`~repro.engine.recorder.EstimateRecorder`.

    Rows are the same :class:`~repro.engine.recorder.SnapshotStats` /
    :class:`~repro.engine.api.EngineSnapshot` objects and :meth:`series`
    returns the same five columns, but :attr:`rows` is a
    :class:`BoundedRowBuffer` view — at most ``capacity`` evenly spaced
    rows survive no matter how many snapshots arrive — while
    :meth:`summary` reports exact extrema/means and P² quantiles over the
    *full* undecimated stream.

    Works on every engine: attach as a sequential-engine recorder
    (``recorders=[rec]``) or as an engine-agnostic snapshot hook
    (``engine.add_snapshot_hook(rec)`` — the instance is callable with the
    hook's ``(engine, snapshot)`` signature).

    Parameters
    ----------
    capacity:
        Bound on retained rows (the decimated series length).
    probes:
        Quantile probabilities tracked per column by the P² estimators.
    reservoir:
        Optional reservoir size; when positive, a uniform sample of the
        per-snapshot ``median`` values is kept for exact post-hoc
        quantiles of a bounded subsample.
    reservoir_seed:
        Seed of the reservoir's private RNG.
    output_fn:
        Sequential-engine only: custom per-agent output (defaults to the
        protocol's own output), mirroring ``EstimateRecorder``.
    """

    #: Columns fed into the per-column running statistics.
    _STAT_COLUMNS = ("population_size", "minimum", "median", "maximum")

    def __init__(
        self,
        capacity: int = 4096,
        *,
        probes: Sequence[float] = (0.25, 0.5, 0.75),
        reservoir: int = 0,
        reservoir_seed: int = 0,
        output_fn: Callable[[Any], float] | None = None,
    ) -> None:
        self._buffer = BoundedRowBuffer(capacity)
        self._output_fn = output_fn
        self.stats = {name: RunningColumnStats(probes) for name in self._STAT_COLUMNS}
        self.reservoir = (
            ReservoirBuffer(reservoir, seed=reservoir_seed) if reservoir > 0 else None
        )

    # ------------------------------------------------------------ observation

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        """Sequential-engine :class:`Recorder` channel."""
        fn = self._output_fn or protocol.output
        values = [float(fn(state)) for state in population.states()]
        if values:
            lo, med, hi = quantiles(values)
        else:
            lo = med = hi = float("nan")
        self.observe(
            SnapshotStats(
                parallel_time=parallel_time,
                population_size=population.size,
                minimum=lo,
                median=med,
                maximum=hi,
            )
        )

    def __call__(self, engine: Any, snapshot: EngineSnapshot) -> None:
        """Engine-agnostic snapshot-hook channel (all five engines)."""
        self.observe(snapshot)

    def observe(self, snapshot: EngineSnapshot) -> None:
        """Fold one snapshot into the buffer, statistics, and reservoir."""
        self._buffer.append(snapshot)
        for name in self._STAT_COLUMNS:
            self.stats[name].update(getattr(snapshot, name))
        if self.reservoir is not None:
            self.reservoir.push(snapshot.median)

    # ------------------------------------------------------------------ views

    @property
    def rows(self) -> list[SnapshotStats]:
        """The retained (decimated) rows, oldest first."""
        return self._buffer.rows

    @property
    def snapshot_count(self) -> int:
        """Total snapshots observed (before decimation)."""
        return self._buffer.appended

    @property
    def decimation_stride(self) -> int:
        """Current spacing between retained rows, in snapshots."""
        return self._buffer.stride

    def series(self) -> dict[str, list[float]]:
        """Decimated column-oriented series (EstimateRecorder-shaped)."""
        rows = self._buffer.rows
        return {
            "parallel_time": [float(r.parallel_time) for r in rows],
            "population_size": [float(r.population_size) for r in rows],
            "minimum": [r.minimum for r in rows],
            "median": [r.median for r in rows],
            "maximum": [r.maximum for r in rows],
        }

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-column exact extrema/mean and P² quantiles of the full stream."""
        return {name: stats.summary() for name, stats in self.stats.items()}
