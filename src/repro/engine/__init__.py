"""Simulation substrate for population protocols.

The engine package is independent of the paper's specific protocol: it
provides the random scheduler, the dynamic population, size-change
adversaries, recorders, multi-trial orchestration, and two execution
engines (exact sequential and batched/vectorised).
"""

from repro.engine.adversary import (
    AddAgentsAt,
    CompositeAdversary,
    NullAdversary,
    RemoveAgentsAt,
    RemoveAllButAt,
    ResizeEvent,
    ResizeSchedule,
    SizeAdversary,
)
from repro.engine.batch_engine import BatchedSimulator, BatchSnapshot, VectorizedProtocol
from repro.engine.errors import (
    ConfigurationError,
    EmptyPopulationError,
    EngineError,
    InvalidScheduleError,
    ProtocolContractError,
    UnknownAgentError,
)
from repro.engine.population import Population
from repro.engine.protocol import InteractionContext, OneWayProtocol, Protocol, ProtocolEvent
from repro.engine.recorder import (
    CallbackRecorder,
    EstimateRecorder,
    EventRecorder,
    MemoryRecorder,
    PhaseOccupancyRecorder,
    PopulationSizeRecorder,
    Recorder,
    SnapshotStats,
)
from repro.engine.rng import RandomSource, make_rng, spawn_streams
from repro.engine.runner import AggregatedSeries, TrialOutcome, TrialRunner, aggregate_series
from repro.engine.simulator import SimulationResult, Simulator

__all__ = [
    "AddAgentsAt",
    "AggregatedSeries",
    "BatchSnapshot",
    "BatchedSimulator",
    "CallbackRecorder",
    "CompositeAdversary",
    "ConfigurationError",
    "EmptyPopulationError",
    "EngineError",
    "EstimateRecorder",
    "EventRecorder",
    "InteractionContext",
    "InvalidScheduleError",
    "MemoryRecorder",
    "NullAdversary",
    "OneWayProtocol",
    "PhaseOccupancyRecorder",
    "Population",
    "PopulationSizeRecorder",
    "Protocol",
    "ProtocolContractError",
    "ProtocolEvent",
    "RandomSource",
    "Recorder",
    "RemoveAgentsAt",
    "RemoveAllButAt",
    "ResizeEvent",
    "ResizeSchedule",
    "SimulationResult",
    "Simulator",
    "SizeAdversary",
    "SnapshotStats",
    "TrialOutcome",
    "TrialRunner",
    "UnknownAgentError",
    "VectorizedProtocol",
    "aggregate_series",
    "make_rng",
    "spawn_streams",
]
