"""Simulation substrate for population protocols.

The engine package is independent of the paper's specific protocol: it
provides the random scheduler, the dynamic population, size-change
adversaries, recorders, multi-trial orchestration, and five execution
engines behind one :class:`repro.engine.api.Engine` contract — exact
sequential (:class:`Simulator`), exact struct-of-arrays
(:class:`ArraySimulator`), batched/vectorised (:class:`BatchedSimulator`),
whole-ensemble stacked (:class:`EnsembleSimulator`), and count-vector
multiset (:class:`CountsSimulator`, per-step cost independent of the
population size) — selectable by name through
:func:`repro.engine.registry.make_engine`.
"""

from repro.engine.adversary import (
    AddAgentsAt,
    CompositeAdversary,
    NullAdversary,
    RemoveAgentsAt,
    RemoveAllButAt,
    ResizeEvent,
    ResizeSchedule,
    SizeAdversary,
)
from repro.engine.api import Engine, EngineSnapshot, RunResult
from repro.engine.array_engine import ArrayRunResult, ArraySimulator
from repro.engine.batch_engine import (
    BatchedRunResult,
    BatchedSimulator,
    BatchSnapshot,
    VectorizedProtocol,
)
from repro.engine.counts_engine import (
    CountsKernel,
    CountsSimulator,
    CountsState,
    PackedCountsKernel,
    multiset_sample,
    weighted_quantiles,
)
from repro.engine.checkpoint import (
    CheckpointInterrupted,
    read_checkpoint,
    write_checkpoint,
)
from repro.engine.ensemble_engine import EnsembleRunResult, EnsembleSimulator
from repro.engine.errors import (
    CheckpointError,
    ConfigurationError,
    EmptyPopulationError,
    EngineError,
    InvalidScheduleError,
    ProtocolContractError,
    UnknownAgentError,
)
from repro.engine.options import ExecutionOptions, execution_metadata, jit_status
from repro.engine.parallel import (
    DEFAULT_SHARD_SIZE,
    MAX_AUTO_WORKERS,
    ShardTiming,
    TrialShard,
    execute_shards,
    merge_shard_results,
    plan_shards,
    resolve_workers,
)
from repro.engine.population import Population
from repro.engine.protocol import InteractionContext, OneWayProtocol, Protocol, ProtocolEvent
from repro.engine.recorder import (
    CallbackRecorder,
    EstimateRecorder,
    EventRecorder,
    MemoryRecorder,
    PhaseOccupancyRecorder,
    PopulationSizeRecorder,
    Recorder,
    SnapshotStats,
)
from repro.engine.registry import (
    ENGINE_NAMES,
    LARGE_POPULATION_THRESHOLD,
    SMALL_POPULATION_THRESHOLD,
    EngineInfo,
    choose_engine,
    counts_kernel_for,
    engine_info,
    engine_names,
    has_counts_kernel,
    has_vectorized,
    make_engine,
    register_counts_kernel,
    register_engine,
    register_vectorized,
    registered_counts_protocols,
    registered_protocols,
    vectorized_for,
)
from repro.engine.rng import RandomSource, SeedTree, make_rng, spawn_streams
from repro.engine.runner import (
    AggregatedSeries,
    EnsembleSpec,
    TrialOutcome,
    TrialRunner,
    aggregate_series,
    run_engine_trials,
)
from repro.engine.simulator import SimulationResult, Simulator
from repro.engine.streaming import (
    BoundedRowBuffer,
    P2Quantile,
    ReservoirBuffer,
    RunningColumnStats,
    RunningExtrema,
    StreamingEstimateRecorder,
)

__all__ = [
    "AddAgentsAt",
    "AggregatedSeries",
    "ArrayRunResult",
    "ArraySimulator",
    "BatchSnapshot",
    "BoundedRowBuffer",
    "BatchedRunResult",
    "BatchedSimulator",
    "CallbackRecorder",
    "CheckpointError",
    "CheckpointInterrupted",
    "CountsKernel",
    "CountsSimulator",
    "CountsState",
    "DEFAULT_SHARD_SIZE",
    "ENGINE_NAMES",
    "Engine",
    "EngineInfo",
    "EngineSnapshot",
    "CompositeAdversary",
    "ConfigurationError",
    "LARGE_POPULATION_THRESHOLD",
    "MAX_AUTO_WORKERS",
    "SMALL_POPULATION_THRESHOLD",
    "PackedCountsKernel",
    "EmptyPopulationError",
    "EngineError",
    "EnsembleRunResult",
    "EnsembleSimulator",
    "EnsembleSpec",
    "EstimateRecorder",
    "EventRecorder",
    "ExecutionOptions",
    "InteractionContext",
    "InvalidScheduleError",
    "MemoryRecorder",
    "NullAdversary",
    "OneWayProtocol",
    "PhaseOccupancyRecorder",
    "P2Quantile",
    "Population",
    "PopulationSizeRecorder",
    "Protocol",
    "ProtocolContractError",
    "ProtocolEvent",
    "RandomSource",
    "Recorder",
    "ReservoirBuffer",
    "RemoveAgentsAt",
    "RemoveAllButAt",
    "ResizeEvent",
    "ResizeSchedule",
    "RunResult",
    "RunningColumnStats",
    "RunningExtrema",
    "SeedTree",
    "ShardTiming",
    "SimulationResult",
    "Simulator",
    "SizeAdversary",
    "SnapshotStats",
    "StreamingEstimateRecorder",
    "TrialOutcome",
    "TrialRunner",
    "TrialShard",
    "UnknownAgentError",
    "VectorizedProtocol",
    "aggregate_series",
    "choose_engine",
    "counts_kernel_for",
    "engine_info",
    "engine_names",
    "execute_shards",
    "execution_metadata",
    "has_counts_kernel",
    "has_vectorized",
    "jit_status",
    "make_engine",
    "make_rng",
    "merge_shard_results",
    "multiset_sample",
    "plan_shards",
    "read_checkpoint",
    "register_counts_kernel",
    "register_engine",
    "register_vectorized",
    "registered_counts_protocols",
    "registered_protocols",
    "resolve_workers",
    "run_engine_trials",
    "spawn_streams",
    "vectorized_for",
    "weighted_quantiles",
    "write_checkpoint",
]
