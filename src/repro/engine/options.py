"""A single frozen bundle for the execution knobs shared by every runner.

The same eight keyword arguments — effort/preset, engine, workers, jit and
the four checkpoint fields — had accreted independently on
:func:`repro.scenarios.runner.run_scenario`,
:func:`repro.scenarios.runner.run_sweep`,
:func:`repro.engine.runner.run_engine_trials`, the CLI and
:class:`repro.serve.service.SimulationService`.  :class:`ExecutionOptions`
is the one canonical place they are declared, validated and stamped into
``metadata["execution"]``.

Every entry point keeps accepting the legacy keyword arguments (they build
an ``ExecutionOptions`` internally via :meth:`ExecutionOptions.merge`);
passing *both* an options object and a conflicting legacy keyword raises a
:class:`~repro.engine.errors.ConfigurationError` instead of silently
preferring one.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from repro.engine.errors import ConfigurationError

__all__ = ["ExecutionOptions", "execution_metadata", "jit_status"]


@dataclasses.dataclass(frozen=True)
class ExecutionOptions:
    """How to execute a workload — everything except *what* to run.

    Parameters
    ----------
    effort:
        Preset effort level (``"quick"`` / ``"default"`` / ``"paper"``).
        Ignored by layers that take no presets (``run_engine_trials``) and
        whenever an explicit ``preset`` is given.
    preset:
        An explicit :class:`~repro.experiments.base.ExperimentPreset`,
        overriding the effort lookup.  Scenario layer only.
    engine:
        Engine name to force, ``"auto"`` to auto-select, or ``None`` to
        defer to the spec's pinned engine / auto policy.
    workers:
        ``None`` (serial), ``"auto"`` (capped CPU count) or an integer
        worker-process count for sharded execution.
    jit:
        Request the compiled kernel backend (best effort; the availability
        outcome is recorded in the result metadata).
    checkpoint_every / checkpoint_dir / resume_from / interrupt_after:
        Crash-recovery knobs, as documented on
        :func:`repro.engine.runner.run_engine_trials`.
    """

    effort: str = "quick"
    preset: Any = None
    engine: str | None = None
    workers: int | str | None = None
    jit: bool = False
    checkpoint_every: int | None = None
    checkpoint_dir: Any = None
    resume_from: Any = None
    interrupt_after: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.effort, str) or not self.effort:
            raise ConfigurationError(
                f"effort must be a non-empty string, got {self.effort!r}"
            )
        if self.engine is not None and self.engine != "auto":
            from repro.engine.registry import engine_names

            if self.engine not in engine_names():
                raise ConfigurationError(
                    f"unknown engine {self.engine!r}; available engines: "
                    f"{', '.join(engine_names())} (or 'auto')"
                )
        if self.workers is not None and self.workers != "auto":
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise ConfigurationError(
                    f"workers must be a positive integer, 'auto' or None, "
                    f"got {self.workers!r}"
                )
            if self.workers < 1:
                raise ConfigurationError(
                    f"workers must be >= 1, got {self.workers}"
                )
        if not isinstance(self.jit, bool):
            raise ConfigurationError(f"jit must be a bool, got {self.jit!r}")
        for name in ("checkpoint_every", "interrupt_after"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigurationError(
                    f"{name} must be a positive integer or None, got {value!r}"
                )
        if self.interrupt_after is not None and not (
            self.checkpoint_every is not None
            or self.checkpoint_dir is not None
            or self.resume_from is not None
        ):
            raise ConfigurationError(
                "interrupt_after requires checkpointing "
                "(checkpoint_every/checkpoint_dir/resume_from)"
            )

    @property
    def checkpointing(self) -> bool:
        """Whether any crash-recovery knob is active."""
        return (
            self.checkpoint_every is not None
            or self.checkpoint_dir is not None
            or self.resume_from is not None
        )

    def replace(self, **changes: Any) -> "ExecutionOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def merge(
        cls, options: "ExecutionOptions | None", **legacy: Any
    ) -> "ExecutionOptions":
        """Combine an explicit options object with legacy keyword arguments.

        With ``options=None`` the legacy keywords simply build a new
        ``ExecutionOptions``.  With an options object, every legacy keyword
        must still sit at its default — passing both is ambiguous and
        raises a :class:`ConfigurationError` naming the offenders.
        """
        unknown = [name for name in legacy if name not in _FIELD_DEFAULTS]
        if unknown:
            raise ConfigurationError(
                f"unknown execution option(s): {', '.join(sorted(unknown))}"
            )
        if options is None:
            return cls(**legacy)
        if not isinstance(options, cls):
            raise ConfigurationError(
                f"options must be an ExecutionOptions, got {type(options).__name__}"
            )
        conflicts = sorted(
            name
            for name, value in legacy.items()
            if value != _FIELD_DEFAULTS[name]
        )
        if conflicts:
            raise ConfigurationError(
                "pass execution settings either via options=ExecutionOptions(...) "
                "or as keyword arguments, not both; conflicting keyword(s): "
                + ", ".join(conflicts)
            )
        return options


_FIELD_DEFAULTS: Mapping[str, Any] = {
    field.name: field.default for field in dataclasses.fields(ExecutionOptions)
}


def jit_status(jit: bool) -> str:
    """Resolved jit mode: ``"off"``, ``"compiled"`` or ``"fallback: <why>"``."""
    if not jit:
        return "off"
    from repro.kernels import availability

    status = availability()
    return "compiled" if status.enabled else f"fallback: {status.reason}"


def execution_metadata(
    *,
    requested_engine: str | None,
    engines_used: Sequence[str],
    workers: int | None,
    jit: bool,
) -> dict[str, Any]:
    """The fully resolved execution config stamped on every result.

    Auto-resolved knobs (``engine=None``/``"auto"``, ``workers="auto"``)
    are recorded *after* resolution so cached artifacts are self-describing:
    the block alone reproduces the run without re-deriving the auto policy.
    """
    engines = list(dict.fromkeys(engines_used))
    return {
        "requested_engine": requested_engine,
        "engine": engines[0] if len(engines) == 1 else "mixed",
        "engines": engines,
        "workers": workers,
        "jit_requested": jit,
        "jit": jit_status(jit),
    }
