"""Recorders — observers that extract time series from a running simulation.

The paper's simulator snapshots the configuration once every ``n``
interactions (one parallel time step) instead of after every interaction.
The engine follows the same design: a :class:`Recorder` receives a callback
at every snapshot with the current population, and may additionally receive
protocol events (such as clock ticks) as they happen.

Recorders never mutate the population.  Each recorder accumulates rows in
memory and exposes them as plain Python structures so that experiment code
and tests can post-process them without the engine in the loop.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.engine.api import EngineSnapshot, quantiles
from repro.engine.population import Population
from repro.engine.protocol import Protocol, ProtocolEvent

__all__ = [
    "Recorder",
    "SnapshotStats",
    "quantiles",
    "EstimateRecorder",
    "PopulationSizeRecorder",
    "PhaseOccupancyRecorder",
    "EventRecorder",
    "MemoryRecorder",
    "CallbackRecorder",
]


class Recorder(abc.ABC):
    """Base class for simulation observers."""

    def on_start(self, population: Population, protocol: Protocol) -> None:
        """Called once before the first interaction."""

    @abc.abstractmethod
    def on_snapshot(
        self, parallel_time: int, population: Population, protocol: Protocol
    ) -> None:
        """Called once per parallel time step, after the adversary has acted."""

    def on_event(self, event: ProtocolEvent) -> None:
        """Called for every protocol event (clock ticks, resets, ...)."""

    def on_finish(self, population: Population, protocol: Protocol) -> None:
        """Called once after the last interaction."""


#: Min / median / max of a per-agent quantity at one parallel time step —
#: the shared :class:`repro.engine.api.EngineSnapshot` under its historical
#: recorder-layer name.
SnapshotStats = EngineSnapshot


class EstimateRecorder(Recorder):
    """Records min/median/max of the protocol output across agents per snapshot.

    For the dynamic size counting protocol the output is the agent's reported
    estimate of log n (``max{max, lastMax}`` without overestimation, exactly
    as in Section 5 of the paper), so this recorder produces the series shown
    in Figs. 2, 4, and 5.
    """

    def __init__(self, output_fn: Callable[[Any], float] | None = None) -> None:
        self._output_fn = output_fn
        self.rows: list[SnapshotStats] = []

    @property
    def uses_protocol_output(self) -> bool:
        """Whether rows report the protocol's own output (no custom ``output_fn``).

        When true, a row is interchangeable with the engine's own snapshot
        statistics, which lets the simulator reuse it instead of computing
        the same triple twice.
        """
        return self._output_fn is None

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        fn = self._output_fn or protocol.output
        values = [float(fn(state)) for state in population.states()]
        if values:
            lo, med, hi = quantiles(values)
        else:
            # A momentarily empty population still gets a row: skipping it
            # would desynchronize this series from the engine's snapshot
            # timeline (rows and snapshots must stay 1:1).
            lo = med = hi = float("nan")
        self.rows.append(
            SnapshotStats(
                parallel_time=parallel_time,
                population_size=population.size,
                minimum=lo,
                median=med,
                maximum=hi,
            )
        )

    def series(self) -> dict[str, list[float]]:
        """Return the recorded series as plain column lists."""
        return {
            "parallel_time": [float(r.parallel_time) for r in self.rows],
            "population_size": [float(r.population_size) for r in self.rows],
            "minimum": [r.minimum for r in self.rows],
            "median": [r.median for r in self.rows],
            "maximum": [r.maximum for r in self.rows],
        }


class PopulationSizeRecorder(Recorder):
    """Records the population size per snapshot (useful under adversaries)."""

    def __init__(self) -> None:
        self.rows: list[tuple[int, int]] = []

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        self.rows.append((parallel_time, population.size))

    def sizes(self) -> list[int]:
        return [size for _, size in self.rows]


class PhaseOccupancyRecorder(Recorder):
    """Records how many agents are in each clock phase per snapshot.

    The phase classifier is supplied by the caller (for the dynamic size
    counting protocol it is :func:`repro.core.state.classify_phase`), keeping
    the engine independent of the core package.
    """

    def __init__(self, phase_fn: Callable[[Any], str]) -> None:
        self._phase_fn = phase_fn
        self.rows: list[dict[str, Any]] = []

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        counts: dict[str, int] = {}
        for state in population.states():
            phase = self._phase_fn(state)
            counts[phase] = counts.get(phase, 0) + 1
        row: dict[str, Any] = {"parallel_time": parallel_time, "population_size": population.size}
        row.update(counts)
        self.rows.append(row)


class EventRecorder(Recorder):
    """Collects protocol events, optionally filtered by kind.

    Clock ticks (reset events) of the phase clock are gathered with
    ``EventRecorder(kinds={"reset"})`` and post-processed by
    :mod:`repro.analysis.synchronization` into burst/overlap intervals.
    """

    def __init__(self, kinds: set[str] | None = None) -> None:
        self._kinds = kinds
        self.events: list[ProtocolEvent] = []

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        return None

    def on_event(self, event: ProtocolEvent) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self.events.append(event)

    def events_of_kind(self, kind: str) -> list[ProtocolEvent]:
        return [e for e in self.events if e.kind == kind]


class MemoryRecorder(Recorder):
    """Records the maximum and mean per-agent memory footprint in bits.

    Uses :meth:`repro.engine.protocol.Protocol.memory_bits`, which each
    protocol implements for its own state representation.  This backs the
    space-complexity comparison against the Doty–Eftekhari baseline.
    """

    def __init__(self) -> None:
        self.rows: list[dict[str, float]] = []

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        bits = [protocol.memory_bits(state) for state in population.states()]
        nan = float("nan")
        # NaN statistics (not a skipped row) when the population is
        # momentarily empty, keeping the series dense on the snapshot
        # timeline.
        self.rows.append(
            {
                "parallel_time": float(parallel_time),
                "population_size": float(population.size),
                "max_bits": float(max(bits)) if bits else nan,
                "mean_bits": float(sum(bits) / len(bits)) if bits else nan,
            }
        )

    def peak_bits(self) -> float:
        """Largest per-agent footprint observed over the whole run."""
        peaks = [
            row["max_bits"] for row in self.rows if row["max_bits"] == row["max_bits"]
        ]
        return max(peaks) if peaks else 0.0


class CallbackRecorder(Recorder):
    """Adapter turning a plain callable into a recorder (used in tests)."""

    def __init__(self, on_snapshot: Callable[[int, Population, Protocol], None]) -> None:
        self._callback = on_snapshot

    def on_snapshot(self, parallel_time, population, protocol) -> None:
        self._callback(parallel_time, population, protocol)
