"""Versioned, checksummed on-disk checkpoints for long-horizon runs.

A checkpoint file carries one pickled payload behind a small self-describing
header, so that a resumed run can prove it is reading the artifact it thinks
it is reading before trusting a single byte of state:

``line 1``
    Magic string ``repro-checkpoint`` — rejects arbitrary files early.
``line 2``
    A JSON header with the schema version, a free-form ``kind`` tag
    (``"engine"``, ``"shard"``, ...), the payload length in bytes, and the
    payload's SHA-256 digest.
``rest``
    The pickled payload itself.

Reads verify magic, schema version, length, and digest and raise
:class:`~repro.engine.errors.CheckpointError` on any mismatch — a truncated
or bit-flipped checkpoint fails loudly instead of resuming from wrong
state.  Writes go through a temporary file in the target directory followed
by :func:`os.replace`, so a crash mid-write leaves either the previous
checkpoint or none, never a half-written one.

The payload is pickle rather than JSON because sequential-engine state
includes arbitrary protocol state objects and adversary dataclasses; the
checksum (not the codec) is what guards integrity.  Checkpoints are a
same-machine, same-codebase recovery mechanism — like any pickle, they are
not an interchange format and must only be loaded from trusted paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.engine.errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointInterrupted",
    "write_checkpoint",
    "read_checkpoint",
]

CHECKPOINT_MAGIC = b"repro-checkpoint"
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointInterrupted(RuntimeError):
    """Deterministic fault injection: raised after N checkpoint writes.

    Tests and the CI kill-and-resume smoke leg need a run to die at an
    exactly reproducible point.  Passing ``interrupt_after=N`` to the
    checkpointing executor raises this *after* the N-th checkpoint write
    completes — the on-disk state is exactly what a hard kill at that
    moment would have left behind, without the nondeterminism of signals.

    Deliberately **not** a :class:`~repro.engine.errors.CheckpointError`:
    it models the interruption being recovered from, not a damaged
    checkpoint.
    """


def write_checkpoint(path: str | Path, payload: Any, *, kind: str) -> Path:
    """Atomically write ``payload`` as a checkpoint file at ``path``.

    The payload is pickled, wrapped in the magic/header envelope described
    in the module docstring, and moved into place with :func:`os.replace`
    so readers never observe a partial file.  Returns the path written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    try:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable engine state is a caller bug
        raise CheckpointError(f"checkpoint payload is not picklable: {exc}") from exc
    header = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "kind": str(kind),
        "payload_bytes": len(body),
        "sha256": hashlib.sha256(body).hexdigest(),
    }
    blob = b"%s\n%s\n%s" % (
        CHECKPOINT_MAGIC,
        json.dumps(header, sort_keys=True).encode("ascii"),
        body,
    )
    handle, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(blob)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def read_checkpoint(path: str | Path, *, kind: str | None = None) -> Any:
    """Read and verify a checkpoint written by :func:`write_checkpoint`.

    Verifies the magic string, schema version, declared payload length and
    SHA-256 digest (and, when ``kind`` is given, the kind tag) before
    unpickling, raising :class:`CheckpointError` on any mismatch.
    """
    target = Path(path)
    try:
        raw = target.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc

    magic, sep, rest = raw.partition(b"\n")
    if not sep or magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{target} is not a repro checkpoint (bad magic)")
    header_line, sep, body = rest.partition(b"\n")
    if not sep:
        raise CheckpointError(f"{target} is truncated (missing header)")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise CheckpointError(f"{target} has a corrupt header: {exc}") from exc
    version = header.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{target} has checkpoint schema version {version!r}; "
            f"this build reads version {CHECKPOINT_SCHEMA_VERSION}"
        )
    if kind is not None and header.get("kind") != kind:
        raise CheckpointError(
            f"{target} is a {header.get('kind')!r} checkpoint, expected {kind!r}"
        )
    declared = header.get("payload_bytes")
    if declared != len(body):
        raise CheckpointError(
            f"{target} is truncated or padded: header declares {declared} "
            f"payload bytes, found {len(body)}"
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(f"{target} failed its checksum; refusing to resume")
    try:
        return pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(f"{target} payload failed to unpickle: {exc}") from exc
