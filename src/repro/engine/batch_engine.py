"""Batched (vectorised) simulation engine for large populations.

The paper simulates populations of up to 10^6 agents.  Executing 5000
parallel time steps at that size means 5 * 10^9 sequential interactions —
out of reach for a pure-Python loop.  The authors solved this with a custom
C++ simulator; we solve it with a *batched* NumPy engine.

Approximation
-------------
The batched engine processes one parallel time step (``n`` interactions) at
a time.  Within a batch it draws ``n`` ordered pairs of distinct agents and
applies the protocol's vectorised transition with the *responder state taken
from the beginning of the batch*, while initiator updates are applied
last-writer-wins.  This is the standard "synchronous rounds" approximation
of the sequential scheduler: information spreads at the same asymptotic rate
(an epidemic still needs Theta(log n) rounds), but the exact interleaving
within one parallel time unit is not preserved.

All figure-scale experiments that use this engine are cross-validated at
small n against the exact :class:`repro.engine.simulator.Simulator` and the
exact struct-of-arrays :class:`repro.engine.array_engine.ArraySimulator`
(see ``tests/test_engine_equivalence.py``); the qualitative shapes of
Figs. 2–5 are insensitive to the within-round interleaving.

Protocols opt in by implementing the :class:`VectorizedProtocol` interface,
which represents the whole population as a struct-of-arrays dictionary of
NumPy vectors.  The registry in :mod:`repro.engine.registry` maps scalar
protocol classes to their vectorised counterparts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.engine.api import ArrayStateEngine, EngineSnapshot, RunResult
from repro.engine.errors import ConfigurationError
from repro.engine.rng import RandomSource

__all__ = [
    "VectorizedProtocol",
    "BatchSnapshot",
    "BatchedRunResult",
    "BatchedSimulator",
    "flat_state_view",
]


def flat_state_view(arr: np.ndarray) -> np.ndarray:
    """Flat *view* of a stacked ``(trials, n)`` state array.

    The ensemble fast paths index the stacked state through flat
    coordinates (``trial * n + slot``), which is substantially faster than
    broadcast 2-D fancy indexing — but only safe on a view: a silent copy
    would discard every write.  The ensemble engine always keeps its state
    C-contiguous; this guard turns any violation into a loud error.
    """
    if not arr.flags.c_contiguous:
        raise ConfigurationError(
            "ensemble state arrays must be C-contiguous for flat indexing; "
            "got a non-contiguous array (pass np.ascontiguousarray data)"
        )
    return arr.reshape(-1)


class VectorizedProtocol(abc.ABC):
    """Interface for protocols that support the struct-of-arrays engines.

    The population state is a dictionary mapping variable names to NumPy
    arrays of equal length ``n`` ("struct of arrays").  The protocol defines
    how to create initial arrays, how to apply one batch of interactions,
    and how to compute the reported output per agent.

    Protocols that additionally implement :meth:`interact_one` — the same
    transition applied to a single ``(initiator, responder)`` slot pair —
    can also run on the exact :class:`repro.engine.array_engine.
    ArraySimulator`, which preserves sequential semantics over the array
    state.
    """

    #: Human-readable name used in experiment metadata.
    name: str = "vectorized-protocol"

    #: Optional per-variable dtype overrides applied by the ensemble engine
    #: when stacking state (e.g. ``{"time": np.float32}``).  Protocols whose
    #: state values are exactly representable in narrower types can halve
    #: the memory traffic of the stacked hot loop; ``None`` keeps the
    #: dtypes of :meth:`initial_arrays`.  Only the ensemble engine applies
    #: these — the 1-D array/batched engines are unaffected.
    ensemble_state_dtypes: dict[str, np.dtype] | None = None

    @abc.abstractmethod
    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        """Create the state arrays for a fresh population of ``n`` agents."""

    @abc.abstractmethod
    def interact_batch(
        self,
        arrays: dict[str, np.ndarray],
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: RandomSource,
    ) -> None:
        """Apply one batch of interactions in place.

        ``initiators`` and ``responders`` are index arrays of equal length;
        element ``i`` describes the ``i``-th interaction of the batch.
        Responder states are read from the arrays as they are at call time
        (start of the batch); initiator writes may overlap, in which case
        later interactions of the batch win.
        """

    def interact_one(
        self,
        arrays: dict[str, np.ndarray],
        initiator: int,
        responder: int,
        rng: RandomSource,
    ) -> None:
        """Apply a single interaction to slots ``initiator`` / ``responder``.

        Optional: only needed for the exact :class:`repro.engine.
        array_engine.ArraySimulator`.  Implementations must mirror the
        scalar protocol's transition *including its random-draw order* so
        that the array engine reproduces the sequential engine's trajectory
        under a shared seed.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement interact_one(); it can "
            "run on the batched engine but not on the exact array engine"
        )

    def interact_ensemble(
        self,
        arrays: dict[str, np.ndarray],
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: RandomSource,
    ) -> None:
        """Apply one batch of interactions to every trial of a stacked ensemble.

        ``arrays`` holds 2-D state of shape ``(trials, n)`` and
        ``initiators`` / ``responders`` are ``(trials, batch)`` index
        matrices: row ``t`` describes the batch of trial ``t``, with the
        same within-batch semantics as :meth:`interact_batch`.

        The default implementation applies :meth:`interact_batch` row by
        row over views of the stacked arrays, so every existing vectorised
        protocol runs on the :class:`repro.engine.ensemble_engine.
        EnsembleSimulator` unchanged.  Protocols override this with a fully
        2-D transition to remove the per-trial Python loop (see
        :class:`repro.core.vectorized.VectorizedDynamicCounting`).
        """
        for row in range(initiators.shape[0]):
            row_arrays = {key: arr[row] for key, arr in arrays.items()}
            self.interact_batch(row_arrays, initiators[row], responders[row], rng)

    @abc.abstractmethod
    def output_array(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Per-agent reported output (e.g. the estimate of log n)."""

    def tick_count_array(self, arrays: dict[str, np.ndarray]) -> np.ndarray | None:
        """Optional per-agent cumulative tick (reset) counts for clock analysis."""
        return None

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__}


#: Shared snapshot type under its historical batched-engine name.
BatchSnapshot = EngineSnapshot


@dataclass
class BatchedRunResult(RunResult):
    """Outcome of a batched run: per-snapshot statistics plus metadata.

    A :class:`repro.engine.api.RunResult` under its historical name; the
    ``stopped_early`` flag records whether a ``stop_when`` condition fired
    before the horizon, exactly as on the sequential engine.
    """


class BatchedSimulator(ArrayStateEngine):
    """Vectorised engine executing one parallel time step per batch.

    Parameters
    ----------
    protocol:
        A :class:`VectorizedProtocol`.
    n:
        Initial population size.
    rng / seed:
        Random source (or a seed to build one).
    resize_schedule:
        Optional list of ``(parallel_time, target_size)`` pairs applied at
        snapshot granularity; shrinking keeps a uniformly random subset,
        growing appends agents in the protocol's initial state.  This mirrors
        :class:`repro.engine.adversary.ResizeSchedule` for the array world.
    sub_batches:
        Number of sub-batches one parallel time step is split into.  Larger
        values refresh the responder snapshot more often and bring the
        dynamics closer to the exact sequential scheduler at a modest cost;
        the default of 8 keeps the round length of the dynamic size counting
        protocol within a few percent of the exact engine (see
        ``tests/test_engine_equivalence.py``).
    """

    name = "batched"

    def __init__(
        self,
        protocol: VectorizedProtocol,
        n: int,
        *,
        rng: RandomSource | None = None,
        seed: int | None = None,
        resize_schedule: Iterable[tuple[int, int]] = (),
        initial_arrays: dict[str, np.ndarray] | None = None,
        sub_batches: int = 8,
    ) -> None:
        if sub_batches < 1:
            raise ConfigurationError(f"sub_batches must be at least 1, got {sub_batches}")
        self.sub_batches = int(sub_batches)
        super().__init__(
            protocol,
            n,
            rng=rng,
            seed=seed,
            resize_schedule=resize_schedule,
            initial_arrays=initial_arrays,
        )

    # ------------------------------------------------------------------- run

    def run(
        self,
        parallel_time: int,
        *,
        snapshot_every: int = 1,
        stop_when: Callable[..., bool] | None = None,
    ) -> BatchedRunResult:
        """Run for ``parallel_time`` steps, recording a snapshot every ``snapshot_every``."""
        result = super().run(
            parallel_time, stop_when=stop_when, snapshot_every=snapshot_every
        )
        assert isinstance(result, BatchedRunResult)
        return result

    def _advance_one_parallel_step(self) -> None:
        self.step_parallel_round()

    def step_parallel_round(self) -> None:
        """Execute one parallel time step (``n`` interactions, in sub-batches)."""
        n = self._require_interactable()
        remaining = n
        chunk = max(1, n // self.sub_batches)
        while remaining > 0:
            batch = min(chunk, remaining)
            initiators, responders = self.rng.ordered_pairs(n, batch)
            self.protocol.interact_batch(self.arrays, initiators, responders, self.rng)
            remaining -= batch
        self.interactions_executed += n
        self.parallel_time += 1

    def _build_result(
        self, snapshots: list[EngineSnapshot], stopped_early: bool
    ) -> BatchedRunResult:
        return BatchedRunResult(
            parallel_time=self.parallel_time,
            interactions=self.interactions_executed,
            final_size=self.size,
            stopped_early=stopped_early,
            snapshots=snapshots,
            metadata={"protocol": self.protocol.describe(), "engine": self.name},
        )
