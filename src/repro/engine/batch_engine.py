"""Batched (vectorised) simulation engine for large populations.

The paper simulates populations of up to 10^6 agents.  Executing 5000
parallel time steps at that size means 5 * 10^9 sequential interactions —
out of reach for a pure-Python loop.  The authors solved this with a custom
C++ simulator; we solve it with a *batched* NumPy engine.

Approximation
-------------
The batched engine processes one parallel time step (``n`` interactions) at
a time.  Within a batch it draws ``n`` ordered pairs of distinct agents and
applies the protocol's vectorised transition with the *responder state taken
from the beginning of the batch*, while initiator updates are applied
last-writer-wins.  This is the standard "synchronous rounds" approximation
of the sequential scheduler: information spreads at the same asymptotic rate
(an epidemic still needs Theta(log n) rounds), but the exact interleaving
within one parallel time unit is not preserved.

All figure-scale experiments that use this engine are cross-validated at
small n against the exact :class:`repro.engine.simulator.Simulator` (see
``tests/test_engine_equivalence.py``); the qualitative shapes of Figs. 2–5
are insensitive to the within-round interleaving.

Protocols opt in by implementing the :class:`VectorizedProtocol` interface,
which represents the whole population as a struct-of-arrays dictionary of
NumPy vectors.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.engine.errors import ConfigurationError, EmptyPopulationError
from repro.engine.rng import RandomSource

__all__ = ["VectorizedProtocol", "BatchSnapshot", "BatchedSimulator"]


class VectorizedProtocol(abc.ABC):
    """Interface for protocols that support the batched engine.

    The population state is a dictionary mapping variable names to NumPy
    arrays of equal length ``n`` ("struct of arrays").  The protocol defines
    how to create initial arrays, how to apply one batch of interactions,
    and how to compute the reported output per agent.
    """

    #: Human-readable name used in experiment metadata.
    name: str = "vectorized-protocol"

    @abc.abstractmethod
    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        """Create the state arrays for a fresh population of ``n`` agents."""

    @abc.abstractmethod
    def interact_batch(
        self,
        arrays: dict[str, np.ndarray],
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: RandomSource,
    ) -> None:
        """Apply one batch of interactions in place.

        ``initiators`` and ``responders`` are index arrays of equal length;
        element ``i`` describes the ``i``-th interaction of the batch.
        Responder states are read from the arrays as they are at call time
        (start of the batch); initiator writes may overlap, in which case
        later interactions of the batch win.
        """

    @abc.abstractmethod
    def output_array(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Per-agent reported output (e.g. the estimate of log n)."""

    def tick_count_array(self, arrays: dict[str, np.ndarray]) -> np.ndarray | None:
        """Optional per-agent cumulative tick (reset) counts for clock analysis."""
        return None

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__}


@dataclass
class BatchSnapshot:
    """Aggregate statistics of one snapshot of the batched engine."""

    parallel_time: int
    population_size: int
    minimum: float
    median: float
    maximum: float


@dataclass
class BatchedRunResult:
    """Outcome of a batched run: per-snapshot statistics plus metadata."""

    snapshots: list[BatchSnapshot]
    parallel_time: int
    final_size: int
    metadata: dict[str, Any] = field(default_factory=dict)

    def series(self) -> dict[str, list[float]]:
        return {
            "parallel_time": [float(s.parallel_time) for s in self.snapshots],
            "population_size": [float(s.population_size) for s in self.snapshots],
            "minimum": [s.minimum for s in self.snapshots],
            "median": [s.median for s in self.snapshots],
            "maximum": [s.maximum for s in self.snapshots],
        }


class BatchedSimulator:
    """Vectorised engine executing one parallel time step per batch.

    Parameters
    ----------
    protocol:
        A :class:`VectorizedProtocol`.
    n:
        Initial population size.
    rng / seed:
        Random source (or a seed to build one).
    resize_schedule:
        Optional list of ``(parallel_time, target_size)`` pairs applied at
        snapshot granularity; shrinking keeps a uniformly random subset,
        growing appends agents in the protocol's initial state.  This mirrors
        :class:`repro.engine.adversary.ResizeSchedule` for the array world.
    sub_batches:
        Number of sub-batches one parallel time step is split into.  Larger
        values refresh the responder snapshot more often and bring the
        dynamics closer to the exact sequential scheduler at a modest cost;
        the default of 8 keeps the round length of the dynamic size counting
        protocol within a few percent of the exact engine (see
        ``tests/test_engine_equivalence.py``).
    """

    def __init__(
        self,
        protocol: VectorizedProtocol,
        n: int,
        *,
        rng: RandomSource | None = None,
        seed: int | None = None,
        resize_schedule: Iterable[tuple[int, int]] = (),
        initial_arrays: dict[str, np.ndarray] | None = None,
        sub_batches: int = 8,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"population size must be at least 2, got {n}")
        if sub_batches < 1:
            raise ConfigurationError(f"sub_batches must be at least 1, got {sub_batches}")
        self.sub_batches = int(sub_batches)
        self.protocol = protocol
        self.rng = rng if rng is not None else RandomSource.from_seed(seed)
        if initial_arrays is None:
            self.arrays = protocol.initial_arrays(n, self.rng)
        else:
            self.arrays = {key: np.array(val, copy=True) for key, val in initial_arrays.items()}
        self._validate_arrays(n)
        self.parallel_time = 0
        self._resize_events = sorted(
            ((int(t), int(size)) for t, size in resize_schedule), key=lambda e: e[0]
        )
        for time, size in self._resize_events:
            if time < 0:
                raise ConfigurationError(f"resize time must be non-negative, got {time}")
            if size < 2:
                raise ConfigurationError(f"resize target must be at least 2, got {size}")
        self._resize_cursor = 0

    def _validate_arrays(self, n: int) -> None:
        lengths = {key: len(arr) for key, arr in self.arrays.items()}
        if not lengths:
            raise ConfigurationError("protocol returned no state arrays")
        if len(set(lengths.values())) != 1:
            raise ConfigurationError(f"state arrays have inconsistent lengths: {lengths}")
        actual = next(iter(lengths.values()))
        if actual != n:
            raise ConfigurationError(f"state arrays have length {actual}, expected {n}")

    # ------------------------------------------------------------------ size

    @property
    def size(self) -> int:
        """Current population size."""
        return len(next(iter(self.arrays.values())))

    # ------------------------------------------------------------------- run

    def run(
        self,
        parallel_time: int,
        *,
        snapshot_every: int = 1,
        stop_when: Callable[["BatchedSimulator", BatchSnapshot], bool] | None = None,
    ) -> BatchedRunResult:
        """Run for ``parallel_time`` steps, recording a snapshot every ``snapshot_every``."""
        if parallel_time < 0:
            raise ConfigurationError(f"parallel_time must be non-negative, got {parallel_time}")
        if snapshot_every < 1:
            raise ConfigurationError(f"snapshot_every must be >= 1, got {snapshot_every}")
        snapshots: list[BatchSnapshot] = []
        target = self.parallel_time + parallel_time
        while self.parallel_time < target:
            steps = min(snapshot_every, target - self.parallel_time)
            for _ in range(steps):
                self.step_parallel_round()
            self._apply_resizes()
            snapshot = self._snapshot()
            snapshots.append(snapshot)
            if stop_when is not None and stop_when(self, snapshot):
                break
        return BatchedRunResult(
            snapshots=snapshots,
            parallel_time=self.parallel_time,
            final_size=self.size,
            metadata={"protocol": self.protocol.describe(), "engine": "batched"},
        )

    def step_parallel_round(self) -> None:
        """Execute one parallel time step (``n`` interactions, in sub-batches)."""
        n = self.size
        if n < 2:
            raise EmptyPopulationError("population has fewer than two agents")
        remaining = n
        chunk = max(1, n // self.sub_batches)
        while remaining > 0:
            batch = min(chunk, remaining)
            initiators, responders = self.rng.ordered_pairs(n, batch)
            self.protocol.interact_batch(self.arrays, initiators, responders, self.rng)
            remaining -= batch
        self.parallel_time += 1

    # -------------------------------------------------------------- adversary

    def _apply_resizes(self) -> None:
        while (
            self._resize_cursor < len(self._resize_events)
            and self._resize_events[self._resize_cursor][0] <= self.parallel_time
        ):
            _, target = self._resize_events[self._resize_cursor]
            self._resize_cursor += 1
            self.resize_to(target)

    def resize_to(self, target: int) -> None:
        """Resize the population to ``target`` agents.

        Shrinking keeps a uniformly random subset of the current agents
        (the paper's decimation adversary); growing appends fresh agents in
        the protocol's initial state.
        """
        if target < 2:
            raise ConfigurationError(f"resize target must be at least 2, got {target}")
        current = self.size
        if target == current:
            return
        if target < current:
            keep = self.rng.generator.choice(current, size=target, replace=False)
            keep.sort()
            for key in self.arrays:
                self.arrays[key] = self.arrays[key][keep]
        else:
            extra = self.protocol.initial_arrays(target - current, self.rng)
            for key in self.arrays:
                if key not in extra:
                    raise ConfigurationError(
                        f"initial_arrays is missing state variable {key!r} when growing"
                    )
                self.arrays[key] = np.concatenate([self.arrays[key], extra[key]])

    # -------------------------------------------------------------- snapshots

    def _snapshot(self) -> BatchSnapshot:
        outputs = np.asarray(self.protocol.output_array(self.arrays), dtype=float)
        return BatchSnapshot(
            parallel_time=self.parallel_time,
            population_size=self.size,
            minimum=float(outputs.min()),
            median=float(np.median(outputs)),
            maximum=float(outputs.max()),
        )

    def outputs(self) -> np.ndarray:
        """Current per-agent outputs."""
        return np.asarray(self.protocol.output_array(self.arrays), dtype=float)
