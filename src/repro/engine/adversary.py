"""Adversaries that change the population size during a simulation.

The dynamic population protocol model (Doty & Eftekhari 2022, adopted by the
paper) lets an adversary add agents — always in the protocol's predefined
initial state — and remove arbitrary agents at arbitrary points in time.

Adversaries in this module operate at *parallel-time granularity*: the
simulator consults the active adversary once per parallel time step (every
``n`` interactions), mirroring how the paper applies its decimation event at
parallel time 1350.  Each adversary exposes
:meth:`SizeAdversary.apply`, which may mutate the population in place.

The workloads used by the paper's evaluation are provided directly:

* :class:`RemoveAllButAt` — Fig. 4: remove all but 500 agents at time 1350.
* :class:`AddAgentsAt` / :class:`RemoveAgentsAt` — single add/remove events.
* :class:`ResizeSchedule` — an arbitrary sequence of resize events, used by
  the integration tests and the "flock under attack" example.
* :class:`CompositeAdversary` — composition of several adversaries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.errors import InvalidScheduleError
from repro.engine.population import Population
from repro.engine.rng import RandomSource

__all__ = [
    "SizeAdversary",
    "NullAdversary",
    "RemoveAgentsAt",
    "RemoveAllButAt",
    "AddAgentsAt",
    "ResizeEvent",
    "ResizeSchedule",
    "CompositeAdversary",
]


class SizeAdversary(abc.ABC):
    """Interface for population-size adversaries."""

    @abc.abstractmethod
    def apply(
        self,
        population: Population,
        parallel_time: int,
        rng: RandomSource,
        new_state: Callable[[], Any],
    ) -> None:
        """Possibly modify the population at the given parallel time.

        ``new_state`` produces a fresh initial state for agents the
        adversary adds; removal targets are chosen by the adversary itself
        (uniformly at random unless documented otherwise).
        """

    def describe(self) -> dict[str, Any]:
        """Serialisable description used in experiment metadata."""
        return {"class": type(self).__name__}


class NullAdversary(SizeAdversary):
    """Adversary that never changes the population (the static setting)."""

    def apply(
        self,
        population: Population,
        parallel_time: int,
        rng: RandomSource,
        new_state: Callable[[], Any],
    ) -> None:
        return None


@dataclass
class RemoveAgentsAt(SizeAdversary):
    """Remove ``count`` uniformly random agents at parallel time ``time``."""

    time: int
    count: int
    _done: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise InvalidScheduleError(f"event time must be non-negative, got {self.time}")
        if self.count < 0:
            raise InvalidScheduleError(f"count must be non-negative, got {self.count}")

    def apply(self, population, parallel_time, rng, new_state) -> None:
        if self._done or parallel_time < self.time:
            return
        keep = population.size - self.count
        if keep < 2:
            raise InvalidScheduleError(
                f"removing {self.count} agents at time {self.time} would leave "
                f"{keep} agents; at least 2 are required"
            )
        population.remove_random(self.count, rng)
        self._done = True

    def describe(self) -> dict[str, Any]:
        return {"class": type(self).__name__, "time": self.time, "count": self.count}


@dataclass
class RemoveAllButAt(SizeAdversary):
    """Remove all but ``keep`` agents at parallel time ``time``.

    This is the exact workload of Fig. 4 of the paper: "All but 500 agents
    are removed after 1350 parallel time."
    """

    time: int
    keep: int
    _done: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise InvalidScheduleError(f"event time must be non-negative, got {self.time}")
        if self.keep < 2:
            raise InvalidScheduleError(f"keep must be at least 2, got {self.keep}")

    def apply(self, population, parallel_time, rng, new_state) -> None:
        if self._done or parallel_time < self.time:
            return
        population.downsize_to(self.keep, rng)
        self._done = True

    def describe(self) -> dict[str, Any]:
        return {"class": type(self).__name__, "time": self.time, "keep": self.keep}


@dataclass
class AddAgentsAt(SizeAdversary):
    """Add ``count`` fresh agents (in the protocol's initial state) at ``time``."""

    time: int
    count: int
    _done: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise InvalidScheduleError(f"event time must be non-negative, got {self.time}")
        if self.count < 0:
            raise InvalidScheduleError(f"count must be non-negative, got {self.count}")

    def apply(self, population, parallel_time, rng, new_state) -> None:
        if self._done or parallel_time < self.time:
            return
        for _ in range(self.count):
            population.add(new_state())
        self._done = True

    def describe(self) -> dict[str, Any]:
        return {"class": type(self).__name__, "time": self.time, "count": self.count}


@dataclass(frozen=True)
class ResizeEvent:
    """A single "resize the population to ``target`` agents" event.

    If the population is larger than ``target``, uniformly random agents are
    removed; if smaller, fresh agents in the initial state are added.
    """

    time: int
    target: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise InvalidScheduleError(f"event time must be non-negative, got {self.time}")
        if self.target < 2:
            raise InvalidScheduleError(f"target size must be at least 2, got {self.target}")


class ResizeSchedule(SizeAdversary):
    """A sequence of :class:`ResizeEvent` applied in time order.

    Events are applied at the first parallel time step greater than or equal
    to their scheduled time, which matches the snapshot granularity of the
    simulator.
    """

    def __init__(self, events: Iterable[ResizeEvent]) -> None:
        ordered = sorted(events, key=lambda e: e.time)
        times = [e.time for e in ordered]
        if len(set(times)) != len(times):
            raise InvalidScheduleError("resize events must have distinct times")
        self._events: list[ResizeEvent] = ordered
        self._cursor = 0

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[int, int]]) -> "ResizeSchedule":
        """Build a schedule from ``(time, target_size)`` pairs."""
        return cls(ResizeEvent(time=t, target=s) for t, s in pairs)

    @property
    def events(self) -> Sequence[ResizeEvent]:
        return tuple(self._events)

    def apply(self, population, parallel_time, rng, new_state) -> None:
        while self._cursor < len(self._events) and self._events[self._cursor].time <= parallel_time:
            event = self._events[self._cursor]
            self._cursor += 1
            current = population.size
            if event.target < current:
                population.downsize_to(event.target, rng)
            elif event.target > current:
                for _ in range(event.target - current):
                    population.add(new_state())

    def describe(self) -> dict[str, Any]:
        return {
            "class": type(self).__name__,
            "events": [{"time": e.time, "target": e.target} for e in self._events],
        }


class CompositeAdversary(SizeAdversary):
    """Apply several adversaries in order at every parallel time step."""

    def __init__(self, adversaries: Iterable[SizeAdversary]) -> None:
        self._adversaries = list(adversaries)

    def apply(self, population, parallel_time, rng, new_state) -> None:
        for adversary in self._adversaries:
            adversary.apply(population, parallel_time, rng, new_state)

    def describe(self) -> dict[str, Any]:
        return {
            "class": type(self).__name__,
            "parts": [a.describe() for a in self._adversaries],
        }
