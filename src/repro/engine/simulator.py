"""Exact sequential simulator for population protocols.

This is the semantic reference engine of the reproduction: it executes the
textbook population protocol scheduler — in each step an ordered pair of
distinct agents is chosen uniformly at random and the protocol's transition
function is applied — with no batching or approximation.

Configuration snapshots are taken once per *parallel time* step (``n``
interactions for the current population size ``n``), exactly as in the
paper's C++ simulator, which reports a snapshot every ``n`` interactions
"to ensure quick simulation times".  The adversary is consulted at the same
granularity.

For figure-scale populations (n >= 10^5) use
:class:`repro.engine.batch_engine.BatchedSimulator`, which trades exactness
of the interleaving for vectorised speed, or
:class:`repro.engine.array_engine.ArraySimulator`, which keeps exact
sequential semantics with a lower-overhead struct-of-arrays state
representation.  All engines implement the shared
:class:`repro.engine.api.Engine` contract and return
:class:`repro.engine.api.RunResult`-compatible results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.engine.adversary import NullAdversary, SizeAdversary
from repro.engine.api import Engine, EngineSnapshot, RunResult, quantiles
from repro.engine.errors import (
    ConfigurationError,
    EmptyPopulationError,
    ProtocolContractError,
)
from repro.engine.population import Population
from repro.engine.protocol import InteractionContext, Protocol, ProtocolEvent
from repro.engine.recorder import EstimateRecorder, Recorder
from repro.engine.rng import RandomSource

# Module-level alias: _state_payload's keyword-only ``copy`` flag shadows
# the module name inside that method.
_deepcopy = copy.deepcopy

__all__ = ["SimulationResult", "Simulator"]


@dataclass
class SimulationResult(RunResult):
    """Summary of one sequential simulation run.

    A :class:`repro.engine.api.RunResult` under its historical name; kept as
    a distinct type so that call sites can continue to spell out which
    engine produced the result.
    """


class Simulator(Engine):
    """Exact sequential population protocol simulator.

    Parameters
    ----------
    protocol:
        The protocol to execute.
    population:
        Either an integer (that many agents are created in the protocol's
        initial state) or a pre-built :class:`Population` for arbitrary
        initial configurations (needed for loose-stabilization experiments
        that start from adversarial configurations).
    rng:
        Random source; a fresh one is created from ``seed`` if omitted.
    seed:
        Convenience seed used when ``rng`` is not given.
    adversary:
        Population-size adversary, consulted once per parallel time step.
    recorders:
        Observers notified at every snapshot and for protocol events.
    snapshot_stats:
        Whether to compute the per-snapshot output statistics that populate
        ``RunResult.snapshots`` (the unified engine API).  Costs one pass
        over all agent outputs per snapshot; callers that only consume
        recorders can turn it off.
    """

    name = "sequential"
    _default_stop_arity = 1

    def __init__(
        self,
        protocol: Protocol,
        population: int | Population,
        *,
        rng: RandomSource | None = None,
        seed: int | None = None,
        adversary: SizeAdversary | None = None,
        recorders: Iterable[Recorder] = (),
        snapshot_stats: bool = True,
    ) -> None:
        super().__init__()
        self.protocol = protocol
        self.rng = rng if rng is not None else RandomSource.from_seed(seed)
        if isinstance(population, Population):
            self.population = population
        elif isinstance(population, int):
            if population < 2:
                raise ConfigurationError(
                    f"population size must be at least 2, got {population}"
                )
            self.population = Population(
                self.protocol.initial_state(self.rng) for _ in range(population)
            )
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"population must be an int or Population, got {type(population).__name__}"
            )
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.recorders: list[Recorder] = list(recorders)
        self._context = InteractionContext(self.rng, sink=self._dispatch_event)
        self._outputs_numeric = bool(snapshot_stats)

    # ----------------------------------------------------------------- events

    def _dispatch_event(self, event: ProtocolEvent) -> None:
        for recorder in self.recorders:
            recorder.on_event(event)

    # --------------------------------------------------------- run-loop hooks

    def _on_run_start(self) -> None:
        for recorder in self.recorders:
            recorder.on_start(self.population, self.protocol)

    def _on_run_finish(self) -> None:
        for recorder in self.recorders:
            recorder.on_finish(self.population, self.protocol)

    def _advance_one_parallel_step(self) -> None:
        """Execute ``n`` interactions (one parallel time unit)."""
        population = self.population
        if not population.is_interactable():
            raise EmptyPopulationError(
                "population has fewer than two agents; cannot schedule interactions"
            )
        n = population.size
        for _ in range(n):
            self.step()
        self.parallel_time += 1

    def step(self) -> None:
        """Execute a single pairwise interaction."""
        population = self.population
        n = population.size
        if n < 2:
            raise EmptyPopulationError(
                "population has fewer than two agents; cannot schedule interactions"
            )
        i, j = self.rng.ordered_pair(n)
        ctx = self._context
        ctx.reset(
            interaction=self.interactions_executed,
            initiator_id=population.stable_id(i),
            responder_id=population.stable_id(j),
        )
        result = self.protocol.interact(population.state(i), population.state(j), ctx)
        try:
            new_u, new_v = result
        except (TypeError, ValueError) as exc:
            raise ProtocolContractError(
                f"{type(self.protocol).__name__}.interact must return a pair of "
                f"states, got {result!r}"
            ) from exc
        population.set_state(i, new_u)
        population.set_state(j, new_v)
        self.interactions_executed += 1

    def _take_snapshot(self) -> EngineSnapshot:
        self.adversary.apply(
            self.population,
            self.parallel_time,
            self.rng,
            lambda: self.protocol.initial_state(self.rng),
        )
        for recorder in self.recorders:
            recorder.on_snapshot(self.parallel_time, self.population, self.protocol)
        # A default EstimateRecorder already computed exactly this triple —
        # its row type *is* EngineSnapshot, so reuse it instead of making a
        # second pass over all agent outputs.
        for recorder in self.recorders:
            if (
                isinstance(recorder, EstimateRecorder)
                and recorder.uses_protocol_output
                and recorder.rows
                and recorder.rows[-1].parallel_time == self.parallel_time
            ):
                return recorder.rows[-1]
        return self._numeric_snapshot()

    def _numeric_snapshot(self) -> EngineSnapshot:
        """Min/median/max of the numeric outputs (``nan`` if non-numeric).

        Protocols with non-numeric outputs (e.g. the three-state majority's
        ``"A"``/``"B"``/``"U"``) disable the statistics after the first
        failed conversion, keeping the snapshot timeline intact.
        """
        nan = float("nan")
        minimum = median = maximum = nan
        if self._outputs_numeric:
            try:
                values = [
                    float(self.protocol.output(state))
                    for state in self.population.states()
                ]
            except (TypeError, ValueError):
                self._outputs_numeric = False
            else:
                if values:
                    minimum, median, maximum = quantiles(values)
        return EngineSnapshot(
            parallel_time=self.parallel_time,
            population_size=self.population.size,
            minimum=minimum,
            median=median,
            maximum=maximum,
        )

    def _build_result(
        self, snapshots: list[EngineSnapshot], stopped_early: bool
    ) -> SimulationResult:
        return SimulationResult(
            parallel_time=self.parallel_time,
            interactions=self.interactions_executed,
            final_size=self.population.size,
            stopped_early=stopped_early,
            snapshots=snapshots,
            metadata={"protocol": self.protocol.describe(), "engine": self.name},
        )

    # ------------------------------------------------------------ checkpoints

    def _state_payload(self, *, copy: bool = True) -> dict[str, Any]:
        # States may be mutable objects the protocol updates in place, and
        # the adversary carries mutable one-shot/cursor positions — deep
        # copies decouple the payload from the live run (skipped when the
        # caller serializes the payload before the run advances).
        deep = _deepcopy if copy else (lambda obj: obj)
        return {
            "states": deep(list(self.population.states())),
            "stable_ids": list(self.population.stable_ids()),
            "next_id": self.population._next_id,
            "adversary": deep(self.adversary),
            "outputs_numeric": self._outputs_numeric,
        }

    def _restore_payload(self, state: dict[str, Any]) -> None:
        self.population = Population.restore(
            copy.deepcopy(state["states"]), state["stable_ids"], state["next_id"]
        )
        self.adversary = copy.deepcopy(state["adversary"])
        self._outputs_numeric = bool(state["outputs_numeric"])

    # ------------------------------------------------------------- inspection

    @property
    def size(self) -> int:
        """Current population size."""
        return self.population.size

    def outputs(self) -> list[Any]:
        """Current protocol outputs of all agents."""
        return [self.protocol.output(state) for state in self.population.states()]

    def states(self) -> Sequence[Any]:
        """Current states of all agents (read-only view)."""
        return self.population.states()
