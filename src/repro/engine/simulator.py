"""Exact sequential simulator for population protocols.

This is the semantic reference engine of the reproduction: it executes the
textbook population protocol scheduler — in each step an ordered pair of
distinct agents is chosen uniformly at random and the protocol's transition
function is applied — with no batching or approximation.

Configuration snapshots are taken once per *parallel time* step (``n``
interactions for the current population size ``n``), exactly as in the
paper's C++ simulator, which reports a snapshot every ``n`` interactions
"to ensure quick simulation times".  The adversary is consulted at the same
granularity.

For figure-scale populations (n >= 10^5) use
:class:`repro.engine.batch_engine.BatchedSimulator`, which trades exactness
of the interleaving for vectorised speed, or
:class:`repro.engine.array_engine.ArraySimulator`, which keeps exact
semantics with a lower-overhead state representation specialised to the
dynamic size counting protocol family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.adversary import NullAdversary, SizeAdversary
from repro.engine.errors import (
    ConfigurationError,
    EmptyPopulationError,
    ProtocolContractError,
)
from repro.engine.population import Population
from repro.engine.protocol import InteractionContext, Protocol, ProtocolEvent
from repro.engine.recorder import Recorder
from repro.engine.rng import RandomSource

__all__ = ["SimulationResult", "Simulator"]


@dataclass
class SimulationResult:
    """Summary of one simulation run.

    Attributes
    ----------
    parallel_time:
        Number of parallel time steps executed.
    interactions:
        Total number of pairwise interactions executed.
    final_size:
        Population size at the end of the run.
    stopped_early:
        Whether a stop condition fired before the configured horizon.
    metadata:
        Free-form dictionary (protocol description, seed, ...).
    """

    parallel_time: int
    interactions: int
    final_size: int
    stopped_early: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)


class Simulator:
    """Exact sequential population protocol simulator.

    Parameters
    ----------
    protocol:
        The protocol to execute.
    population:
        Either an integer (that many agents are created in the protocol's
        initial state) or a pre-built :class:`Population` for arbitrary
        initial configurations (needed for loose-stabilization experiments
        that start from adversarial configurations).
    rng:
        Random source; a fresh one is created from ``seed`` if omitted.
    seed:
        Convenience seed used when ``rng`` is not given.
    adversary:
        Population-size adversary, consulted once per parallel time step.
    recorders:
        Observers notified at every snapshot and for protocol events.
    """

    def __init__(
        self,
        protocol: Protocol,
        population: int | Population,
        *,
        rng: RandomSource | None = None,
        seed: int | None = None,
        adversary: SizeAdversary | None = None,
        recorders: Iterable[Recorder] = (),
    ) -> None:
        self.protocol = protocol
        self.rng = rng if rng is not None else RandomSource.from_seed(seed)
        if isinstance(population, Population):
            self.population = population
        elif isinstance(population, int):
            if population < 2:
                raise ConfigurationError(
                    f"population size must be at least 2, got {population}"
                )
            self.population = Population(
                self.protocol.initial_state(self.rng) for _ in range(population)
            )
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"population must be an int or Population, got {type(population).__name__}"
            )
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.recorders: list[Recorder] = list(recorders)
        self._context = InteractionContext(self.rng, sink=self._dispatch_event)
        self.interactions_executed = 0
        self.parallel_time = 0

    # ----------------------------------------------------------------- events

    def _dispatch_event(self, event: ProtocolEvent) -> None:
        for recorder in self.recorders:
            recorder.on_event(event)

    # ------------------------------------------------------------------- run

    def run(
        self,
        parallel_time: int,
        *,
        stop_when: Callable[["Simulator"], bool] | None = None,
        snapshot_every: int = 1,
    ) -> SimulationResult:
        """Run the simulation for ``parallel_time`` parallel time steps.

        Parameters
        ----------
        parallel_time:
            Horizon in parallel time units (each unit is ``n`` interactions
            at the *current* population size ``n``).
        stop_when:
            Optional predicate evaluated after every snapshot; returning
            ``True`` stops the run early.  Used by convergence-time
            experiments.
        snapshot_every:
            Take a snapshot (and consult the adversary / recorders) every
            this many parallel time steps.  The default of 1 matches the
            paper.
        """
        if parallel_time < 0:
            raise ConfigurationError(f"parallel_time must be non-negative, got {parallel_time}")
        if snapshot_every < 1:
            raise ConfigurationError(f"snapshot_every must be >= 1, got {snapshot_every}")

        for recorder in self.recorders:
            recorder.on_start(self.population, self.protocol)

        stopped_early = False
        target_time = self.parallel_time + parallel_time
        while self.parallel_time < target_time:
            steps = min(snapshot_every, target_time - self.parallel_time)
            for _ in range(steps):
                self._run_one_parallel_step()
            self._snapshot()
            if stop_when is not None and stop_when(self):
                stopped_early = True
                break

        for recorder in self.recorders:
            recorder.on_finish(self.population, self.protocol)

        return SimulationResult(
            parallel_time=self.parallel_time,
            interactions=self.interactions_executed,
            final_size=self.population.size,
            stopped_early=stopped_early,
            metadata={"protocol": self.protocol.describe(), "engine": "sequential"},
        )

    def _run_one_parallel_step(self) -> None:
        """Execute ``n`` interactions (one parallel time unit)."""
        population = self.population
        if not population.is_interactable():
            raise EmptyPopulationError(
                "population has fewer than two agents; cannot schedule interactions"
            )
        n = population.size
        for _ in range(n):
            self.step()
        self.parallel_time += 1

    def step(self) -> None:
        """Execute a single pairwise interaction."""
        population = self.population
        n = population.size
        if n < 2:
            raise EmptyPopulationError(
                "population has fewer than two agents; cannot schedule interactions"
            )
        i, j = self.rng.ordered_pair(n)
        ctx = self._context
        ctx.reset(
            interaction=self.interactions_executed,
            initiator_id=population.stable_id(i),
            responder_id=population.stable_id(j),
        )
        result = self.protocol.interact(population.state(i), population.state(j), ctx)
        try:
            new_u, new_v = result
        except (TypeError, ValueError) as exc:
            raise ProtocolContractError(
                f"{type(self.protocol).__name__}.interact must return a pair of "
                f"states, got {result!r}"
            ) from exc
        population.set_state(i, new_u)
        population.set_state(j, new_v)
        self.interactions_executed += 1

    def _snapshot(self) -> None:
        self.adversary.apply(
            self.population,
            self.parallel_time,
            self.rng,
            lambda: self.protocol.initial_state(self.rng),
        )
        for recorder in self.recorders:
            recorder.on_snapshot(self.parallel_time, self.population, self.protocol)

    # ------------------------------------------------------------- inspection

    def outputs(self) -> list[Any]:
        """Current protocol outputs of all agents."""
        return [self.protocol.output(state) for state in self.population.states()]

    def states(self) -> Sequence[Any]:
        """Current states of all agents (read-only view)."""
        return self.population.states()
