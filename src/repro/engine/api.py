"""Unified engine API shared by all execution engines.

Every engine in this package — the exact sequential
:class:`repro.engine.simulator.Simulator`, the exact struct-of-arrays
:class:`repro.engine.array_engine.ArraySimulator`, and the approximate
vectorised :class:`repro.engine.batch_engine.BatchedSimulator` — implements
the same contract:

``run(parallel_time, stop_when=..., snapshot_every=...) -> RunResult``

with a shared :class:`RunResult`/:class:`EngineSnapshot` vocabulary,
snapshot hooks for observers, and adversary consultation (population
resizes) at snapshot granularity.  Experiment code can therefore select an
engine by name (see :mod:`repro.engine.registry`) and post-process the
result without knowing which engine produced it.

The run loop itself lives here as a template method: subclasses provide
``_advance_one_parallel_step`` / ``_take_snapshot`` / ``_build_result`` and
inherit the horizon bookkeeping, early stopping, and hook dispatch.
"""

from __future__ import annotations

import abc
import inspect
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.engine.errors import CheckpointError, ConfigurationError, EmptyPopulationError
from repro.engine.rng import RandomSource

__all__ = [
    "EngineSnapshot",
    "RunResult",
    "Engine",
    "ArrayStateEngine",
    "quantiles",
    "matrix_quantiles",
]


def quantiles(values: Sequence[float] | np.ndarray) -> tuple[float, float, float]:
    """Return (min, median, max) of a non-empty sequence.

    The single definition behind every reported (minimum, median, maximum)
    triple — engine snapshots and recorder rows alike — so the statistics
    agree across engines down to NaN propagation.

    This runs on every snapshot of every engine, so it avoids the full sort
    behind ``np.median``: one ``np.partition`` call with the extreme and
    middle ranks as pivots yields all three statistics in linear expected
    time.  The results are identical to ``(arr.min(), np.median(arr),
    arr.max())``, including the all-NaN answer when any element is NaN.
    """
    arr = np.asarray(values, dtype=float).ravel()
    size = arr.size
    if size == 0:
        raise ValueError("quantiles() requires a non-empty sequence")
    if np.isnan(arr).any():
        # min/max/median all propagate NaN under NumPy semantics.
        nan = float("nan")
        return nan, nan, nan
    mid = size // 2
    if size % 2:
        part = np.partition(arr, (0, mid, size - 1))
        median = float(part[mid])
    else:
        part = np.partition(arr, (0, mid - 1, mid, size - 1))
        median = 0.5 * (float(part[mid - 1]) + float(part[mid]))
    return float(part[0]), median, float(part[size - 1])


def matrix_quantiles(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise (min, median, max) of a 2-D ``(trials, n)`` matrix.

    The ensemble engine's counterpart of :func:`quantiles`: one partition
    pass over the stacked outputs yields the per-trial statistics of every
    row at once.  Rows containing NaN report NaN for all three statistics,
    matching ``np.min`` / ``np.median`` / ``np.max`` along the row axis.
    The input dtype is preserved through the partition (a float32 stack is
    partitioned as float32), so narrow ensemble states never pay a
    full-width upcast per snapshot.
    """
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[1] == 0:
        raise ValueError(f"matrix_quantiles() needs a non-empty 2-D matrix, got shape {m.shape}")
    n = m.shape[1]
    mid = n // 2
    if n % 2:
        part = np.partition(m, (0, mid, n - 1), axis=1)
        medians = part[:, mid].copy()
    else:
        part = np.partition(m, (0, mid - 1, mid, n - 1), axis=1)
        medians = 0.5 * (part[:, mid - 1] + part[:, mid])
    minima = part[:, 0].copy()
    maxima = part[:, n - 1].copy()
    has_nan = np.isnan(m).any(axis=1)
    if has_nan.any():
        minima[has_nan] = np.nan
        medians[has_nan] = np.nan
        maxima[has_nan] = np.nan
    return minima, medians, maxima


@dataclass(frozen=True)
class EngineSnapshot:
    """Aggregate statistics of the per-agent outputs at one snapshot.

    ``minimum`` / ``median`` / ``maximum`` are taken over the numeric
    outputs of all agents; engines whose protocol reports non-numeric
    outputs record ``nan`` for the three statistics while keeping the
    ``parallel_time`` / ``population_size`` columns intact.

    This is also the row type of :class:`repro.engine.recorder.
    EstimateRecorder` (under its historical name ``SnapshotStats``), so a
    recorder row and an engine snapshot are the same object shape.
    """

    parallel_time: int
    population_size: int
    minimum: float
    median: float
    maximum: float

    @property
    def true_log_n(self) -> float:
        """log2 of the population size at this snapshot."""
        return math.log2(self.population_size) if self.population_size > 0 else float("nan")


@dataclass
class RunResult:
    """Outcome of one engine run, shared by all engines.

    Attributes
    ----------
    parallel_time:
        Parallel time reached at the end of the run.
    interactions:
        Total number of pairwise interactions executed.
    final_size:
        Population size at the end of the run.
    stopped_early:
        Whether a ``stop_when`` condition fired before the horizon.
    snapshots:
        Per-snapshot output statistics (one row per snapshot taken).
    metadata:
        Free-form dictionary (protocol description, engine name, ...).
    """

    parallel_time: int = 0
    interactions: int = 0
    final_size: int = 0
    stopped_early: bool = False
    snapshots: list[EngineSnapshot] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def series(self) -> dict[str, list[float]]:
        """Column-oriented view of :attr:`snapshots`."""
        return {
            "parallel_time": [float(s.parallel_time) for s in self.snapshots],
            "population_size": [float(s.population_size) for s in self.snapshots],
            "minimum": [s.minimum for s in self.snapshots],
            "median": [s.median for s in self.snapshots],
            "maximum": [s.maximum for s in self.snapshots],
        }


def _stop_condition_arity(stop_when: Callable[..., bool], default: int) -> int:
    """Number of positional arguments to call a ``stop_when`` callable with.

    Engines historically used two conventions — ``stop_when(engine)`` on the
    sequential engine and ``stop_when(engine, snapshot)`` on the batched one
    — and both remain supported everywhere.  Unambiguous signatures decide
    for themselves (exactly one acceptable positional argument → one, two or
    more *required* → two); ambiguous ones — optional extra parameters like
    ``def stop(sim, threshold=8.0)`` or ``lambda sim, snap=None``, ``*args``,
    C callables — fall back to ``default``, each engine's historical
    convention, so predicates written against either old engine keep
    receiving exactly the arguments they used to.
    """
    try:
        signature = inspect.signature(stop_when)
    except (TypeError, ValueError):  # builtins / C callables
        return default
    required = 0
    acceptable = 0
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            acceptable = 2
            continue
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            acceptable += 1
            if parameter.default is inspect.Parameter.empty:
                required += 1
    if required >= 2:
        return 2
    if acceptable <= 1:
        return 1
    return default


class Engine(abc.ABC):
    """Abstract base class for all execution engines.

    Subclasses drive the simulation through three hooks — advance one
    parallel time step, take one snapshot (which is also where adversaries
    act), and build the final result — while :meth:`run` owns the horizon
    bookkeeping, early stopping, and snapshot-hook dispatch shared by every
    engine.
    """

    #: Engine name used in run metadata (``"sequential"`` / ``"array"`` / ...).
    name: str = "engine"

    #: Historical ``stop_when`` calling convention, used for signatures that
    #: could accept either one or two arguments.  The sequential engine
    #: always called ``stop_when(engine)``; the array engines always called
    #: ``stop_when(engine, snapshot)``.
    _default_stop_arity: int = 2

    def __init__(self) -> None:
        self.parallel_time: int = 0
        self.interactions_executed: int = 0
        self._snapshot_hooks: list[Callable[["Engine", EngineSnapshot], None]] = []

    # ------------------------------------------------------------------ hooks

    def add_snapshot_hook(self, hook: Callable[["Engine", EngineSnapshot], None]) -> None:
        """Register an observer called as ``hook(engine, snapshot)`` per snapshot.

        This is the engine-agnostic observation channel; the sequential
        engine additionally supports the richer
        :class:`repro.engine.recorder.Recorder` interface, which sees the
        full population.
        """
        self._snapshot_hooks.append(hook)

    # ------------------------------------------------------------------- size

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Current population size."""

    @abc.abstractmethod
    def outputs(self) -> Sequence[Any]:
        """Current per-agent protocol outputs."""

    # -------------------------------------------------------------------- run

    def run(
        self,
        parallel_time: int,
        *,
        stop_when: Callable[..., bool] | None = None,
        snapshot_every: int = 1,
    ) -> RunResult:
        """Run for ``parallel_time`` parallel time steps.

        Parameters
        ----------
        parallel_time:
            Horizon in parallel time units (each unit is ``n`` interactions
            at the current population size ``n``).
        stop_when:
            Optional early-stop predicate evaluated after every snapshot.
            Both ``stop_when(engine)`` and ``stop_when(engine, snapshot)``
            signatures are accepted.
        snapshot_every:
            Take a snapshot (and consult the adversary / observers) every
            this many parallel time steps.
        """
        if parallel_time < 0:
            raise ConfigurationError(
                f"parallel_time must be non-negative, got {parallel_time}"
            )
        if snapshot_every < 1:
            raise ConfigurationError(f"snapshot_every must be >= 1, got {snapshot_every}")

        wants_snapshot = stop_when is not None and (
            _stop_condition_arity(stop_when, self._default_stop_arity) >= 2
        )

        self._on_run_start()
        snapshots: list[EngineSnapshot] = []
        stopped_early = False
        target = self.parallel_time + parallel_time
        while self.parallel_time < target:
            steps = min(snapshot_every, target - self.parallel_time)
            for _ in range(steps):
                self._advance_one_parallel_step()
            snapshot = self._take_snapshot()
            snapshots.append(snapshot)
            for hook in self._snapshot_hooks:
                hook(self, snapshot)
            if stop_when is not None:
                fired = stop_when(self, snapshot) if wants_snapshot else stop_when(self)
                if fired:
                    stopped_early = True
                    break
        self._on_run_finish()
        return self._build_result(snapshots, stopped_early)

    # ------------------------------------------------------------ checkpoints

    def checkpoint_payload(self, *, copy: bool = True) -> dict[str, Any]:
        """In-memory checkpoint of the engine's complete mutable state.

        The payload captures everything a freshly constructed, identically
        configured engine needs to continue the run bit-identically: the
        run-loop counters, the RNG bit-generator state, and the
        engine-specific state from :meth:`_state_payload` (population /
        state planes, adversary position, ...).  Persist it with
        :meth:`save_checkpoint`, or embed it in a larger artifact (the
        sharded executor stores one per shard).

        With ``copy=False`` the payload *aliases* live engine state instead
        of snapshotting it — it is only valid until the engine advances
        again, so it must be serialized (or discarded) first.  The sharded
        executor uses this to keep checkpoint cadence cheap: the payload is
        pickled to disk immediately, and pickling makes its own copy.
        """
        return {
            "engine": self.name,
            "parallel_time": int(self.parallel_time),
            "interactions_executed": int(self.interactions_executed),
            "rng_state": self._rng_checkpoint_state(),
            "state": self._state_payload(copy=copy),
        }

    def apply_checkpoint_payload(self, payload: dict[str, Any]) -> None:
        """Restore the state captured by :meth:`checkpoint_payload`.

        ``self`` must be a freshly built engine with the *same
        configuration* (protocol, population size, schedule, trial count)
        as the one that produced the payload; the checkpoint replaces the
        mutable state, not the configuration.  Raises
        :class:`~repro.engine.errors.CheckpointError` when the payload
        belongs to a different engine kind or fails shape validation.
        """
        if not isinstance(payload, dict) or "state" not in payload:
            raise CheckpointError("malformed engine checkpoint payload")
        if payload.get("engine") != self.name:
            raise CheckpointError(
                f"checkpoint was taken on engine {payload.get('engine')!r}, "
                f"cannot restore into {self.name!r}"
            )
        self._restore_payload(payload["state"])
        self._restore_rng_checkpoint_state(payload.get("rng_state"))
        self.parallel_time = int(payload["parallel_time"])
        self.interactions_executed = int(payload["interactions_executed"])

    def save_checkpoint(self, path: Any) -> Any:
        """Write :meth:`checkpoint_payload` to ``path`` (atomic, checksummed)."""
        from repro.engine.checkpoint import write_checkpoint

        return write_checkpoint(path, self.checkpoint_payload(), kind="engine")

    def restore_checkpoint(self, path: Any) -> None:
        """Restore from a file written by :meth:`save_checkpoint`."""
        from repro.engine.checkpoint import read_checkpoint

        self.apply_checkpoint_payload(read_checkpoint(path, kind="engine"))

    def _rng_checkpoint_state(self) -> Any:
        rng = getattr(self, "rng", None)
        return None if rng is None else rng.generator.bit_generator.state

    def _restore_rng_checkpoint_state(self, state: Any) -> None:
        if state is None:
            return
        rng = getattr(self, "rng", None)
        if rng is None:
            raise CheckpointError(
                f"checkpoint carries RNG state but engine {self.name!r} has no rng"
            )
        rng.generator.bit_generator.state = state

    def _state_payload(self, *, copy: bool = True) -> dict[str, Any]:
        """Engine-specific mutable state; overridden by every checkpointable engine.

        ``copy=False`` may return views of live state (see
        :meth:`checkpoint_payload`); implementations that cannot avoid the
        copy are free to ignore the flag.
        """
        raise CheckpointError(f"engine {self.name!r} does not support checkpoints")

    def _restore_payload(self, state: dict[str, Any]) -> None:
        """Inverse of :meth:`_state_payload`."""
        raise CheckpointError(f"engine {self.name!r} does not support checkpoints")

    # ------------------------------------------------------- subclass contract

    def _on_run_start(self) -> None:
        """Called once at the start of every :meth:`run` call."""

    @abc.abstractmethod
    def _advance_one_parallel_step(self) -> None:
        """Execute one parallel time step (``n`` interactions)."""

    @abc.abstractmethod
    def _take_snapshot(self) -> EngineSnapshot:
        """Apply the adversary (if any) and return the snapshot statistics."""

    def _on_run_finish(self) -> None:
        """Called once at the end of every :meth:`run` call."""

    @abc.abstractmethod
    def _build_result(
        self, snapshots: list[EngineSnapshot], stopped_early: bool
    ) -> RunResult:
        """Package the run outcome (subclasses may return a subclass)."""


class ArrayStateEngine(Engine):
    """Shared base for engines over struct-of-arrays population state.

    The population is a dictionary of equal-length NumPy arrays produced by
    a :class:`repro.engine.batch_engine.VectorizedProtocol`.  This base owns
    the array lifecycle — creation, validation, snapshot statistics, and the
    resize-schedule adversary — while subclasses decide how interactions are
    executed (exact scalar loop vs vectorised batches).

    Parameters
    ----------
    protocol:
        A vectorised protocol (must implement ``initial_arrays`` and
        ``output_array``; see the subclass for the interaction contract).
    n:
        Initial population size.
    rng / seed:
        Random source (or a seed to build one).
    resize_schedule:
        Optional list of ``(parallel_time, target_size)`` pairs applied at
        snapshot granularity; shrinking keeps a uniformly random subset,
        growing appends agents in the protocol's initial state.  This
        mirrors :class:`repro.engine.adversary.ResizeSchedule` for the
        array world.
    initial_arrays:
        Optional pre-built state arrays (copied) for non-default initial
        configurations.
    """

    def __init__(
        self,
        protocol: Any,
        n: int,
        *,
        rng: RandomSource | None = None,
        seed: int | None = None,
        resize_schedule: Iterable[tuple[int, int]] = (),
        initial_arrays: dict[str, np.ndarray] | None = None,
    ) -> None:
        super().__init__()
        if n < 2:
            raise ConfigurationError(f"population size must be at least 2, got {n}")
        self.protocol = protocol
        self.rng = rng if rng is not None else RandomSource.from_seed(seed)
        self.arrays = self._build_initial_arrays(n, initial_arrays)
        self._validate_arrays(n)
        self._resize_events = sorted(
            ((int(t), int(size)) for t, size in resize_schedule), key=lambda e: e[0]
        )
        for time, size in self._resize_events:
            if time < 0:
                raise ConfigurationError(f"resize time must be non-negative, got {time}")
            if size < 2:
                raise ConfigurationError(f"resize target must be at least 2, got {size}")
        self._resize_cursor = 0

    def _build_initial_arrays(
        self, n: int, initial_arrays: dict[str, np.ndarray] | None
    ) -> dict[str, np.ndarray]:
        """Build the state arrays; overridden by the ensemble engine to stack trials."""
        if initial_arrays is None:
            return self.protocol.initial_arrays(n, self.rng)
        return {key: np.array(val, copy=True) for key, val in initial_arrays.items()}

    def _validate_arrays(self, n: int) -> None:
        lengths = {key: len(arr) for key, arr in self.arrays.items()}
        if not lengths:
            raise ConfigurationError("protocol returned no state arrays")
        if len(set(lengths.values())) != 1:
            raise ConfigurationError(f"state arrays have inconsistent lengths: {lengths}")
        actual = next(iter(lengths.values()))
        if actual != n:
            raise ConfigurationError(f"state arrays have length {actual}, expected {n}")

    # ------------------------------------------------------------------- size

    @property
    def size(self) -> int:
        """Current population size."""
        return len(next(iter(self.arrays.values())))

    def _require_interactable(self) -> int:
        n = self.size
        if n < 2:
            raise EmptyPopulationError("population has fewer than two agents")
        return n

    # -------------------------------------------------------------- adversary

    def _apply_resizes(self) -> None:
        while (
            self._resize_cursor < len(self._resize_events)
            and self._resize_events[self._resize_cursor][0] <= self.parallel_time
        ):
            _, target = self._resize_events[self._resize_cursor]
            self._resize_cursor += 1
            self.resize_to(target)

    def resize_to(self, target: int) -> None:
        """Resize the population to ``target`` agents.

        Shrinking keeps a uniformly random subset of the current agents
        (the paper's decimation adversary); growing appends fresh agents in
        the protocol's initial state.
        """
        if target < 2:
            raise ConfigurationError(f"resize target must be at least 2, got {target}")
        current = self.size
        if target == current:
            return
        if target < current:
            keep = self.rng.generator.choice(current, size=target, replace=False)
            keep.sort()
            for key in self.arrays:
                self.arrays[key] = self.arrays[key][keep]
        else:
            extra = self.protocol.initial_arrays(target - current, self.rng)
            missing = [key for key in self.arrays if key not in extra]
            if missing:
                raise ConfigurationError(
                    "initial_arrays is missing state variable(s) "
                    f"{', '.join(repr(k) for k in missing)} when growing"
                )
            for key in self.arrays:
                self.arrays[key] = np.concatenate([self.arrays[key], extra[key]])

    # ------------------------------------------------------------ checkpoints

    def _state_payload(self, *, copy: bool = True) -> dict[str, Any]:
        return {
            "arrays": {key: np.array(val, copy=copy) for key, val in self.arrays.items()},
            "resize_cursor": int(self._resize_cursor),
        }

    def _restore_payload(self, state: dict[str, Any]) -> None:
        arrays = state.get("arrays")
        if not isinstance(arrays, dict) or set(arrays) != set(self.arrays):
            found = sorted(arrays) if isinstance(arrays, dict) else arrays
            raise CheckpointError(
                f"checkpoint state planes {found!r} do not match this "
                f"engine's planes {sorted(self.arrays)!r}"
            )
        self.arrays = {key: np.array(val, copy=True) for key, val in arrays.items()}
        self._resize_cursor = int(state["resize_cursor"])

    # -------------------------------------------------------------- snapshots

    def _take_snapshot(self) -> EngineSnapshot:
        self._apply_resizes()
        minimum, median, maximum = quantiles(self.protocol.output_array(self.arrays))
        return EngineSnapshot(
            parallel_time=self.parallel_time,
            population_size=self.size,
            minimum=minimum,
            median=median,
            maximum=maximum,
        )

    def outputs(self) -> np.ndarray:
        """Current per-agent outputs."""
        return np.asarray(self.protocol.output_array(self.arrays), dtype=float)
