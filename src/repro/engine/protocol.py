"""Protocol abstraction for the population protocol model.

A *population protocol* is specified by a state space, an initial state for
newly added agents, a pairwise transition function, and an output function
mapping states to the protocol's output domain.  The scheduler repeatedly
picks an ordered pair of distinct agents (*initiator*, *responder*) uniformly
at random and applies the transition function.

The engine is deliberately agnostic about the state representation: states
may be plain integers (epidemic, CHVP), tuples, or mutable dataclass
instances (the dynamic size counting protocol).  The only contract is that
:meth:`Protocol.interact` returns the pair of post-interaction states.

Protocols can *emit events* through the :class:`InteractionContext`, which is
how clock ticks (resets) reach the recording layer without the protocol
having to know anything about the simulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, TypeVar

from repro.engine.rng import RandomSource

__all__ = [
    "InteractionContext",
    "ProtocolEvent",
    "Protocol",
    "OneWayProtocol",
]

StateT = TypeVar("StateT")


@dataclass
class ProtocolEvent:
    """An event emitted by a protocol during an interaction.

    Attributes
    ----------
    kind:
        Short event name, e.g. ``"reset"`` for a phase clock tick.
    agent_id:
        Stable identifier of the agent the event refers to.
    interaction:
        Global interaction index at which the event occurred.
    data:
        Optional protocol-specific payload.
    """

    kind: str
    agent_id: int
    interaction: int
    data: dict[str, Any] = field(default_factory=dict)


class InteractionContext:
    """Per-interaction context handed to :meth:`Protocol.interact`.

    The simulator owns a single context object and refreshes its fields
    before every interaction, so protocols must not hold on to it between
    interactions.  The context carries

    * the global interaction index,
    * the stable ids of the two participating agents,
    * the random source, and
    * an event sink used to report protocol events (e.g. clock ticks).
    """

    __slots__ = ("interaction", "initiator_id", "responder_id", "rng", "_sink")

    def __init__(
        self,
        rng: RandomSource,
        sink: Callable[[ProtocolEvent], None] | None = None,
    ) -> None:
        self.interaction: int = 0
        self.initiator_id: int = -1
        self.responder_id: int = -1
        self.rng = rng
        self._sink = sink

    def reset(self, interaction: int, initiator_id: int, responder_id: int) -> None:
        """Refresh the per-interaction fields (called by the simulator)."""
        self.interaction = interaction
        self.initiator_id = initiator_id
        self.responder_id = responder_id

    def emit(self, kind: str, agent_id: int | None = None, **data: Any) -> None:
        """Emit a :class:`ProtocolEvent`.

        ``agent_id`` defaults to the initiator, which is the agent whose
        state change usually triggers the event (e.g. the resetting agent of
        the dynamic size counting protocol).
        """
        if self._sink is None:
            return
        self._sink(
            ProtocolEvent(
                kind=kind,
                agent_id=self.initiator_id if agent_id is None else agent_id,
                interaction=self.interaction,
                data=data,
            )
        )

    @property
    def has_sink(self) -> bool:
        """Whether events are being collected (lets protocols skip work)."""
        return self._sink is not None


class Protocol(abc.ABC, Generic[StateT]):
    """Abstract base class for population protocols.

    Subclasses implement the three components of a protocol definition.
    A protocol object may hold *parameters* (e.g. the constants tau_1..tau_3
    of the dynamic size counting protocol) but must not hold per-agent
    state — all per-agent state lives in the population.
    """

    #: Human-readable protocol name used in logs and experiment output.
    name: str = "protocol"

    @abc.abstractmethod
    def initial_state(self, rng: RandomSource) -> StateT:
        """Return the state assigned to a newly added agent.

        The dynamic model of the paper adds agents "in some predefined
        state"; randomised initial states are allowed for protocols that
        need them (the random source is the caller's).
        """

    @abc.abstractmethod
    def interact(
        self, u: StateT, v: StateT, ctx: InteractionContext
    ) -> tuple[StateT, StateT]:
        """Apply the transition function to initiator state ``u`` and responder ``v``.

        Must return the pair of post-interaction states ``(u', v')``.
        Implementations are free to mutate mutable states in place and
        return the same objects.
        """

    def output(self, state: StateT) -> Any:
        """Map a state to the protocol's output. Defaults to the state itself."""
        return state

    def memory_bits(self, state: StateT) -> int:
        """Number of bits needed to store ``state``.

        Used by the space-complexity experiments.  The default assumes an
        integer state and counts its binary representation; protocols with
        structured states override this.
        """
        if isinstance(state, bool):
            return 1
        if isinstance(state, int):
            return max(1, int(state).bit_length())
        raise NotImplementedError(
            f"{type(self).__name__} must override memory_bits() for state "
            f"type {type(state).__name__}"
        )

    def describe(self) -> dict[str, Any]:
        """Return a serialisable description of the protocol and its parameters."""
        return {"name": self.name, "class": type(self).__name__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class OneWayProtocol(Protocol[StateT]):
    """Convenience base class for one-way protocols.

    In a *one-way* protocol only the initiator updates its state; the
    responder is read-only.  Several of the paper's building blocks are
    one-way (the one-sided CHVP rule, the one-way epidemic used in the
    analysis), so this base class removes the boilerplate.
    """

    @abc.abstractmethod
    def update_initiator(self, u: StateT, v: StateT, ctx: InteractionContext) -> StateT:
        """Return the initiator's new state given both current states."""

    def interact(
        self, u: StateT, v: StateT, ctx: InteractionContext
    ) -> tuple[StateT, StateT]:
        return self.update_initiator(u, v, ctx), v
