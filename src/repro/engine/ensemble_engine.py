"""Whole-ensemble engine: every trial of an experiment in one stacked pass.

Every data point in the paper aggregates 96 independent runs.  The batched
engine vectorises *within* one population, but a figure experiment still
loops those trials one at a time in Python — at quick/default preset sizes
the per-call NumPy overhead of many small batches dominates the wall clock.

:class:`EnsembleSimulator` removes that loop.  It holds the state of ``T``
independent trials as stacked 2-D arrays of shape ``(trials, n)`` ("struct
of 2-D arrays") and advances *all* trials per parallel step with a single
batched transition: one :meth:`repro.engine.rng.RandomSource.
ordered_pair_matrix` call draws the ``(trials, batch)`` interaction pairs of
every trial, and the protocol applies its transition to the whole stack via
:meth:`repro.engine.batch_engine.VectorizedProtocol.interact_ensemble`
(protocols without a 2-D fast path fall back to a per-row
``interact_batch`` loop and still work unchanged).

Within each row the semantics are exactly those of the batched engine —
sub-batch responder snapshots, last-writer-wins initiator updates — so an
ensemble run is statistically equivalent to ``trials`` independent
:class:`repro.engine.batch_engine.BatchedSimulator` runs; rows never
interact and diverge through their independent slices of the shared random
stream.  Snapshots record per-trial statistics (min/median/max per row, one
partition pass over the stacked outputs), so each trial still yields its own
:class:`repro.engine.api.RunResult`-compatible series via
:attr:`EnsembleRunResult.trial_results`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.engine.api import ArrayStateEngine, EngineSnapshot, RunResult, matrix_quantiles, quantiles
from repro.engine.batch_engine import VectorizedProtocol
from repro.engine.errors import CheckpointError, ConfigurationError
from repro.engine.rng import RandomSource

__all__ = ["EnsembleRunResult", "EnsembleSimulator"]


@dataclass
class EnsembleRunResult(RunResult):
    """Outcome of one stacked ensemble run.

    The inherited :class:`repro.engine.api.RunResult` fields describe the
    ensemble as a whole: ``snapshots`` pools the per-trial statistics
    (minimum of the trial minima, median of the trial medians, maximum of
    the trial maxima — the paper's aggregation over its 96 runs),
    ``final_size`` is the per-trial population size, and ``interactions``
    counts the work across all trials.

    Attributes
    ----------
    trials:
        Number of stacked trials.
    trial_results:
        One :class:`RunResult` per trial, each carrying that trial's own
        snapshot series — the same shape a looped
        :class:`repro.engine.batch_engine.BatchedSimulator` run produces.
    """

    trials: int = 0
    trial_results: list[RunResult] = field(default_factory=list)


class EnsembleSimulator(ArrayStateEngine):
    """Vectorised engine running all trials of an experiment at once.

    Parameters
    ----------
    protocol:
        A :class:`repro.engine.batch_engine.VectorizedProtocol`.  Protocols
        that implement ``interact_ensemble`` advance the whole stack with
        2-D array operations; the rest run through the per-row fallback.
    n:
        Population size of every trial.
    trials:
        Number of independent trials stacked into the engine.
    rng / seed:
        Random source (or a seed to build one).  All trials share one
        stream; independence across rows comes from each row consuming its
        own slice of every ``(trials, batch)`` draw.
    resize_schedule:
        Optional ``(parallel_time, target_size)`` adversary events applied
        at snapshot granularity to *every* trial; shrinking keeps an
        independent uniformly random subset per row, growing appends fresh
        agents in the protocol's initial state per row.
    initial_arrays:
        Optional pre-built state: 1-D arrays of length ``n`` are tiled
        across all trials (every trial starts from the same configuration,
        e.g. Fig. 5's fixed initial estimate); 2-D ``(trials, n)`` arrays
        are used as-is (copied) for per-trial configurations.
    sub_batches:
        Number of sub-batches one parallel time step is split into, exactly
        as on the batched engine (responder snapshots refresh per
        sub-batch).
    """

    name = "ensemble"

    def __init__(
        self,
        protocol: VectorizedProtocol,
        n: int,
        *,
        trials: int = 1,
        rng: RandomSource | None = None,
        seed: int | None = None,
        resize_schedule: Iterable[tuple[int, int]] = (),
        initial_arrays: dict[str, np.ndarray] | None = None,
        sub_batches: int = 8,
    ) -> None:
        if trials < 1:
            raise ConfigurationError(f"trials must be at least 1, got {trials}")
        if sub_batches < 1:
            raise ConfigurationError(f"sub_batches must be at least 1, got {sub_batches}")
        self.trials = int(trials)
        self.sub_batches = int(sub_batches)
        self._snapshot_times: list[int] = []
        self._snapshot_sizes: list[int] = []
        self._trial_minimum: list[np.ndarray] = []
        self._trial_median: list[np.ndarray] = []
        self._trial_maximum: list[np.ndarray] = []
        super().__init__(
            protocol,
            n,
            rng=rng,
            seed=seed,
            resize_schedule=resize_schedule,
            initial_arrays=initial_arrays,
        )

    # ------------------------------------------------------------------- state

    def _build_initial_arrays(
        self, n: int, initial_arrays: dict[str, np.ndarray] | None
    ) -> dict[str, np.ndarray]:
        if initial_arrays is None:
            return self._stacked_fresh_arrays(n)
        stacked: dict[str, np.ndarray] = {}
        for key, value in initial_arrays.items():
            arr = np.asarray(value)
            if arr.ndim == 1:
                stacked[key] = np.tile(arr, (self.trials, 1))
            elif arr.ndim == 2 and arr.shape[0] == self.trials:
                # Force C order: the protocol fast paths index flat views.
                stacked[key] = np.array(arr, copy=True, order="C")
            else:
                raise ConfigurationError(
                    f"initial array {key!r} must be 1-D of length n or 2-D of "
                    f"shape (trials={self.trials}, n), got shape {arr.shape}"
                )
        return self._apply_state_dtypes(stacked)

    def _stacked_fresh_arrays(self, n: int) -> dict[str, np.ndarray]:
        """Stack one fresh ``initial_arrays`` draw per trial into (trials, n)."""
        rows = [self.protocol.initial_arrays(n, self.rng) for _ in range(self.trials)]
        return self._apply_state_dtypes(
            {key: np.stack([row[key] for row in rows]) for key in rows[0]}
        )

    #: Narrowing guard for :meth:`_apply_state_dtypes`: initial values above
    #: this magnitude could outgrow a narrow float plane's exact-integer
    #: range once scaled by protocol constants, so the overrides are skipped.
    _NARROW_VALUE_LIMIT = 2.0**16

    def _apply_state_dtypes(self, stacked: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Apply the protocol's ensemble dtype overrides (e.g. float32 planes).

        The overrides are an optimisation, never a semantics change: if any
        plane's initial values would not survive the narrowing cast exactly
        (or are large enough that protocol-scaled successors might not),
        every override is skipped and the protocol's own dtypes stay.
        """
        overrides = getattr(self.protocol, "ensemble_state_dtypes", None)
        if not overrides:
            return stacked
        narrowed = dict(stacked)
        for key, target in overrides.items():
            if key not in stacked:
                continue
            arr = stacked[key]
            cast = arr.astype(target, copy=False)
            if not np.array_equal(cast.astype(arr.dtype, copy=False), arr):
                return stacked
            if arr.size and np.issubdtype(np.dtype(target), np.floating):
                if float(np.abs(arr).max()) > self._NARROW_VALUE_LIMIT:
                    return stacked
            narrowed[key] = cast
        return narrowed

    def _validate_arrays(self, n: int) -> None:
        shapes = {key: arr.shape for key, arr in self.arrays.items()}
        if not shapes:
            raise ConfigurationError("protocol returned no state arrays")
        if len(set(shapes.values())) != 1:
            raise ConfigurationError(f"state arrays have inconsistent shapes: {shapes}")
        actual = next(iter(shapes.values()))
        if actual != (self.trials, n):
            raise ConfigurationError(
                f"state arrays have shape {actual}, expected {(self.trials, n)}"
            )

    @property
    def size(self) -> int:
        """Population size of each trial (rows always stay the same length)."""
        return next(iter(self.arrays.values())).shape[1]

    # ------------------------------------------------------------ checkpoints

    def _state_payload(self, *, copy: bool = True) -> dict:
        # The per-run snapshot accumulators are deliberately absent: they
        # are cleared at every run() start, so checkpoints must be taken
        # between run() calls (the segmented executor stitches the series).
        payload = super()._state_payload(copy=copy)
        payload["trials"] = self.trials
        return payload

    def _restore_payload(self, state: dict) -> None:
        trials = state.get("trials")
        if trials != self.trials:
            raise CheckpointError(
                f"checkpoint stacks {trials!r} trials, this engine stacks {self.trials}"
            )
        super()._restore_payload(state)

    # -------------------------------------------------------------- adversary

    def resize_to(self, target: int) -> None:
        """Resize every trial's population to ``target`` agents.

        Shrinking keeps an independent uniformly random subset per row (the
        paper's decimation adversary, applied to each trial separately);
        growing appends fresh agents in the protocol's initial state, drawn
        per row.
        """
        if target < 2:
            raise ConfigurationError(f"resize target must be at least 2, got {target}")
        current = self.size
        if target == current:
            return
        if target < current:
            # Per-row random subsets in one vectorised draw: rank a uniform
            # matrix along each row and keep the first `target` columns.
            keep = np.argsort(
                self.rng.generator.random((self.trials, current)), axis=1
            )[:, :target]
            keep.sort(axis=1)
            for key in self.arrays:
                self.arrays[key] = np.take_along_axis(self.arrays[key], keep, axis=1)
        else:
            extra = self._stacked_fresh_arrays(target - current)
            missing = [key for key in self.arrays if key not in extra]
            if missing:
                raise ConfigurationError(
                    "initial_arrays is missing state variable(s) "
                    f"{', '.join(repr(k) for k in missing)} when growing"
                )
            for key in self.arrays:
                self.arrays[key] = np.concatenate([self.arrays[key], extra[key]], axis=1)

    # -------------------------------------------------------------------- run

    def _advance_one_parallel_step(self) -> None:
        self.step_parallel_round()

    #: Per-trial-block state budget for the cache-blocked step loop.  Large
    #: stacked states overflow L2 and turn every gather into a last-level
    #: cache miss; advancing a block of trials through all sub-batches of a
    #: step before moving on keeps each block's planes cache-resident.  1 MiB
    #: leaves L2 headroom for the batch temporaries.
    _BLOCK_STATE_BYTES = 1 << 20

    def _trial_block(self, n: int) -> int:
        """Number of trials to advance together, sized to the cache budget."""
        bytes_per_agent = sum(arr.itemsize for arr in self.arrays.values())
        return max(1, min(self.trials, self._BLOCK_STATE_BYTES // max(1, n * bytes_per_agent)))

    def step_parallel_round(self) -> None:
        """Execute one parallel time step (``n`` interactions) in every trial.

        The whole step's interaction pairs are drawn in one
        ``(trials, n)`` RNG call, then trial blocks are advanced through the
        step's ``sub_batches`` column slices one block at a time — the
        responder-snapshot refresh cadence matches the batched engine, the
        generator call count stays constant in both ``trials`` and
        ``sub_batches``, and each block's state planes stay cache-resident
        across its sub-batches.
        """
        n = self._require_interactable()
        index_dtype = np.int32 if self.trials * n < 2**31 else np.int64
        initiators, responders = self.rng.ordered_pair_matrix(
            n, self.trials, n, dtype=index_dtype
        )
        chunk = max(1, n // self.sub_batches)
        block = self._trial_block(n)
        for g0 in range(0, self.trials, block):
            g1 = min(g0 + block, self.trials)
            block_arrays = {key: arr[g0:g1] for key, arr in self.arrays.items()}
            start = 0
            while start < n:
                stop = min(start + chunk, n)
                self.protocol.interact_ensemble(
                    block_arrays,
                    initiators[g0:g1, start:stop],
                    responders[g0:g1, start:stop],
                    self.rng,
                )
                start = stop
        self.interactions_executed += n * self.trials
        self.parallel_time += 1

    # -------------------------------------------------------------- snapshots

    def _on_run_start(self) -> None:
        self._snapshot_times.clear()
        self._snapshot_sizes.clear()
        self._trial_minimum.clear()
        self._trial_median.clear()
        self._trial_maximum.clear()

    def _take_snapshot(self) -> EngineSnapshot:
        self._apply_resizes()
        # Keep the protocol's output dtype (e.g. float32 planes) through the
        # partition; the stored per-trial statistics are tiny either way.
        outputs = np.asarray(self.protocol.output_array(self.arrays))
        minima, medians, maxima = matrix_quantiles(outputs)
        self._snapshot_times.append(self.parallel_time)
        self._snapshot_sizes.append(self.size)
        self._trial_minimum.append(minima)
        self._trial_median.append(medians)
        self._trial_maximum.append(maxima)
        return EngineSnapshot(
            parallel_time=self.parallel_time,
            population_size=self.size,
            minimum=float(minima.min()),
            median=quantiles(medians)[1],
            maximum=float(maxima.max()),
        )

    def outputs(self) -> np.ndarray:
        """Current per-agent outputs as a ``(trials, n)`` matrix."""
        return np.asarray(self.protocol.output_array(self.arrays), dtype=float)

    # ----------------------------------------------------------------- result

    def _build_result(
        self, snapshots: list[EngineSnapshot], stopped_early: bool
    ) -> EnsembleRunResult:
        per_trial_interactions = self.interactions_executed // self.trials
        trial_results: list[RunResult] = []
        for trial in range(self.trials):
            trial_snapshots = [
                EngineSnapshot(
                    parallel_time=self._snapshot_times[i],
                    population_size=self._snapshot_sizes[i],
                    minimum=float(self._trial_minimum[i][trial]),
                    median=float(self._trial_median[i][trial]),
                    maximum=float(self._trial_maximum[i][trial]),
                )
                for i in range(len(self._snapshot_times))
            ]
            trial_results.append(
                RunResult(
                    parallel_time=self.parallel_time,
                    interactions=per_trial_interactions,
                    final_size=self.size,
                    stopped_early=stopped_early,
                    snapshots=trial_snapshots,
                    metadata={
                        "protocol": self.protocol.describe(),
                        "engine": self.name,
                        "trial": trial,
                    },
                )
            )
        return EnsembleRunResult(
            parallel_time=self.parallel_time,
            interactions=self.interactions_executed,
            final_size=self.size,
            stopped_early=stopped_early,
            snapshots=snapshots,
            metadata={
                "protocol": self.protocol.describe(),
                "engine": self.name,
                "trials": self.trials,
            },
            trials=self.trials,
            trial_results=trial_results,
        )
