"""repro — reproduction of "Dynamic Size Counting in the Population Protocol Model".

The package is organised into layers; see the subpackages for the full surface:

* :mod:`repro.engine` — simulation substrate (scheduler, population, adversaries).
* :mod:`repro.protocols` — toolbox protocols and baselines.
* :mod:`repro.core` — the paper's dynamic size counting protocol and phase clock.
* :mod:`repro.analysis` — metrics, theory bounds and result post-processing.
* :mod:`repro.scenarios` — declarative scenario API (specs, registry, sweeps).
* :mod:`repro.experiments` — the paper's figures/tables as registered scenarios.

The most commonly used classes are re-exported lazily at the top level so
that ``import repro`` stays cheap while ``repro.DynamicSizeCounting`` still
works for interactive use.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

#: Top-level convenience re-exports, resolved lazily on attribute access.
_LAZY_EXPORTS = {
    "Simulator": "repro.engine.simulator",
    "BatchedSimulator": "repro.engine.batch_engine",
    "EnsembleSimulator": "repro.engine.ensemble_engine",
    "Population": "repro.engine.population",
    "RandomSource": "repro.engine.rng",
    "TrialRunner": "repro.engine.runner",
    "DynamicSizeCounting": "repro.core.dynamic_counting",
    "SimplifiedDynamicSizeCounting": "repro.core.simplified",
    "UniformPhaseClock": "repro.core.phase_clock",
    "ProtocolParameters": "repro.core.params",
    "empirical_parameters": "repro.core.params",
    "theory_parameters": "repro.core.params",
    "ScenarioSpec": "repro.scenarios",
    "ScenarioPoint": "repro.scenarios",
    "SweepSpec": "repro.scenarios",
    "scenario": "repro.scenarios",
    "get_scenario": "repro.scenarios",
    "scenario_names": "repro.scenarios",
    "run_scenario": "repro.scenarios",
    "run_sweep": "repro.scenarios",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str) -> Any:
    """Lazily resolve the convenience re-exports listed in ``_LAZY_EXPORTS``."""
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
