"""The single probe deciding whether the HTTP serving layer can be built.

The core of :mod:`repro.serve` — cache keys, the job queue, the result
cache, the service facade — is framework-free and always importable.  Only
the HTTP layer (:mod:`repro.serve.app`) needs FastAPI, which ships behind
the optional ``[serve]`` extra.  Mirroring :mod:`repro.kernels.availability`,
everything that cares asks :func:`availability` instead of importing
``fastapi`` directly, so the "extra not installed" decision is made exactly
once, for exactly one reason, and surfaces as a clean one-line error rather
than an ImportError traceback.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServeAvailability", "availability"]

#: Cached result of the import probe: ``(importable, reason, version)``.
_IMPORT_PROBE: tuple[bool, str, str | None] | None = None


@dataclass(frozen=True)
class ServeAvailability:
    """Outcome of the HTTP-layer probe.

    Attributes
    ----------
    enabled:
        Whether :func:`repro.serve.create_app` can build the FastAPI app.
    reason:
        Human-readable explanation (surfaced by ``/healthz`` when serving,
        and by the error raised when the extra is missing).
    fastapi_version:
        The installed FastAPI version, or ``None`` when not importable.
    """

    enabled: bool
    reason: str
    fastapi_version: str | None = None


def availability() -> ServeAvailability:
    """Whether the FastAPI layer is importable, and why (not).

    The probe runs once per process and is cached — a missing extra cannot
    appear mid-process.
    """
    global _IMPORT_PROBE
    if _IMPORT_PROBE is None:
        try:
            import fastapi
        except Exception as exc:  # ImportError or a broken installation
            _IMPORT_PROBE = (
                False,
                "fastapi is not importable "
                f"({type(exc).__name__}: {exc}); install the [serve] extra",
                None,
            )
        else:
            version = getattr(fastapi, "__version__", "unknown")
            _IMPORT_PROBE = (True, f"fastapi {version} available", version)
    return ServeAvailability(*_IMPORT_PROBE)
