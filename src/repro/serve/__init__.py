"""Simulation-as-a-service: HTTP API, async job queue, content-addressed cache.

Every run in this reproduction is a deterministic function of a frozen
:class:`~repro.scenarios.spec.ScenarioSpec` and a
:class:`~repro.engine.rng.SeedTree`-addressed random stream, so identical
requests are identical computations — the property that lets repeated
traffic be served from a content-addressed cache instead of re-simulating.

Layering:

* **Core (always importable, no extra needed)** —
  :mod:`repro.serve.keys` (canonical run-level SHA-256 cache keys),
  :mod:`repro.serve.jobs` (bounded async job queue),
  :mod:`repro.serve.cache` (disk-backed LRU result cache, atomic writes),
  :mod:`repro.serve.service` (the facade tying them to the real
  :func:`~repro.scenarios.runner.run_scenario` / ``run_sweep`` path).
* **HTTP transport (optional ``[serve]`` extra)** — :mod:`repro.serve.app`,
  a thin FastAPI layer; build it through :func:`create_app`, which raises a
  clean one-line error when the extra is not installed (mirroring the
  ``[jit]`` pattern of :mod:`repro.kernels`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.engine.errors import ConfigurationError
from repro.serve.availability import ServeAvailability, availability
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.jobs import Job, JobQueue, JobState, QueueFullError
from repro.serve.keys import canonical_cache_key, run_encoding
from repro.serve.service import (
    JobFailedError,
    JobPendingError,
    RunRequest,
    SimulationService,
    UnknownRunError,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from fastapi import FastAPI

__all__ = [
    "CacheEntry",
    "Job",
    "JobFailedError",
    "JobPendingError",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ResultCache",
    "RunRequest",
    "ServeAvailability",
    "SimulationService",
    "UnknownRunError",
    "availability",
    "canonical_cache_key",
    "create_app",
    "run_encoding",
]


def create_app(*args: Any, **kwargs: Any) -> "FastAPI":
    """Build the FastAPI app, or fail with one clean line without the extra.

    Probes :func:`availability` first so a deployment missing the
    ``[serve]`` extra sees ``ConfigurationError: fastapi is not importable
    (...); install the [serve] extra`` instead of an ImportError traceback.
    See :func:`repro.serve.app.create_app` for the parameters.
    """
    status = availability()
    if not status.enabled:
        raise ConfigurationError(f"the HTTP serving layer is unavailable: {status.reason}")
    from repro.serve.app import create_app as _create_app

    return _create_app(*args, **kwargs)
