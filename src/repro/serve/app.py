"""FastAPI transport over :class:`repro.serve.service.SimulationService`.

This module imports FastAPI at import time and therefore needs the optional
``[serve]`` extra — use :func:`repro.serve.create_app`, which probes
availability first and raises a clean one-line error when the extra is
missing.  Everything here is translation: pydantic request models in,
service payloads out, service exceptions mapped onto HTTP status codes.

Endpoints
---------
``POST /runs``
    Validated submission.  A cache hit answers 200 with ``cached: true``;
    a miss enqueues and answers 202; a full queue answers 429.
``GET /runs/{run_id}``
    Job status and timings (404 for unknown ids).
``GET /runs/{run_id}/result``
    The run's artifacts: JSON payload, or one result's rows as CSV with
    ``?format=csv[&index=i]``.  409 while queued/running, 500 when failed.
``GET /scenarios``
    The shared machine-readable scenario listing (same formatter as
    ``repro-experiments list --json``).
``GET /healthz``
    Engine capabilities, jit/serve availability, queue depth, cache stats.
"""

from __future__ import annotations

import os
from typing import Any, Literal

from fastapi import FastAPI, HTTPException, Response
from pydantic import BaseModel, Field

from repro.engine.errors import EngineError
from repro.serve.jobs import QueueFullError
from repro.serve.service import (
    JobFailedError,
    JobPendingError,
    RunRequest,
    SimulationService,
    UnknownRunError,
)

__all__ = ["CACHE_DIR_ENV", "RunRequestModel", "create_app"]

#: Environment override for the cache directory used by :func:`create_app`
#: when no service is passed (e.g. when launched via ``uvicorn --factory``).
CACHE_DIR_ENV = "REPRO_SERVE_CACHE_DIR"


class RunRequestModel(BaseModel):
    """Body of ``POST /runs`` — mirrors :class:`repro.serve.service.RunRequest`."""

    scenario: str
    effort: str = "quick"
    engine: str | None = None
    workers: int | Literal["auto"] | None = Field(
        default=None, description="Worker processes for sharded execution."
    )
    jit: bool = False
    seed: int | None = None
    overrides: dict[str, Any] | None = None
    sweep: dict[str, list[Any]] | None = None

    def to_request(self) -> RunRequest:
        return RunRequest(
            scenario=self.scenario,
            effort=self.effort,
            engine=self.engine,
            workers=self.workers,
            jit=self.jit,
            seed=self.seed,
            overrides=self.overrides,
            sweep=self.sweep,
        )


def create_app(
    service: SimulationService | None = None,
    *,
    cache_dir: str | None = None,
    max_cache_bytes: int | None = None,
    max_workers: int = 2,
    max_pending: int = 64,
) -> FastAPI:
    """Build the serving app around an existing or freshly built service.

    With no arguments (the ``uvicorn --factory`` path) the cache directory
    comes from ``$REPRO_SERVE_CACHE_DIR``, defaulting to
    ``.repro-serve-cache`` in the working directory.
    """
    if service is None:
        service = SimulationService(
            cache_dir or os.environ.get(CACHE_DIR_ENV, ".repro-serve-cache"),
            max_cache_bytes=max_cache_bytes,
            max_workers=max_workers,
            max_pending=max_pending,
        )

    app = FastAPI(
        title="repro-dynamic-size-counting",
        description=(
            "Simulation-as-a-service over the scenario registry of the "
            "Kaaser-Lohmann dynamic size counting reproduction.  Identical "
            "requests are identical computations (deterministic SeedTree), "
            "so repeats are served from the content-addressed result cache."
        ),
    )
    app.state.service = service

    @app.on_event("shutdown")
    def _shutdown() -> None:  # pragma: no cover - process teardown
        service.close()

    @app.post("/runs")
    def submit_run(body: RunRequestModel, response: Response) -> dict[str, Any]:
        try:
            payload = service.submit(body.to_request())
        except QueueFullError as exc:
            raise HTTPException(status_code=429, detail=str(exc)) from exc
        except EngineError as exc:
            # ConfigurationError / UnsupportedEngineError: a bad request,
            # rejected before any simulation started.
            raise HTTPException(status_code=422, detail=str(exc)) from exc
        response.status_code = 200 if payload["cached"] else 202
        return payload

    @app.get("/runs/{run_id}")
    def run_status(run_id: str) -> dict[str, Any]:
        try:
            return service.status(run_id)
        except UnknownRunError as exc:
            raise HTTPException(status_code=404, detail=f"unknown run {run_id}") from exc

    @app.get("/runs/{run_id}/result")
    def run_result(
        run_id: str, format: Literal["json", "csv"] = "json", index: int = 0
    ) -> Any:
        try:
            if format == "csv":
                text = service.result_csv(run_id, index=index)
                return Response(content=text, media_type="text/csv")
            return service.result_payload(run_id)
        except UnknownRunError as exc:
            raise HTTPException(status_code=404, detail=str(exc)) from exc
        except JobPendingError as exc:
            raise HTTPException(status_code=409, detail=str(exc)) from exc
        except JobFailedError as exc:
            raise HTTPException(status_code=500, detail=str(exc)) from exc

    @app.get("/scenarios")
    def scenarios() -> list[dict[str, Any]]:
        return service.scenarios()

    @app.get("/healthz")
    def healthz() -> dict[str, Any]:
        return service.health()

    return app
