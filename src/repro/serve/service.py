"""Framework-free simulation service: validate, dedupe, enqueue, serve.

:class:`SimulationService` is the whole serving brain — the FastAPI layer in
:mod:`repro.serve.app` is a thin transport over it, which is what keeps the
subsystem fully testable without the optional ``[serve]`` extra installed.

Request lifecycle::

    RunRequest --validate--> (spec, preset, key)
        cache hit  -> served immediately, ``cached: true``
        in flight  -> attached to the existing job (single-flight)
        otherwise  -> admitted to the bounded JobQueue
    job -> run_scenario / run_sweep -> ResultCache.put (atomic)
    GET result -> always rendered from the cache entry, so repeated
                  fetches of the same run are byte-identical

Everything that can be rejected is rejected *before* admission — unknown
scenario, bad effort, unsupported engine, malformed workers/sweep — with
:class:`~repro.engine.errors.ConfigurationError`, so a bad request costs
milliseconds, never a simulation.
"""

from __future__ import annotations

import dataclasses
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.engine.errors import ConfigurationError, UnsupportedEngineError
from repro.engine.parallel import resolve_workers
from repro.engine.registry import engine_capabilities, engine_names
from repro.kernels import availability as kernels_availability
from repro.scenarios.listing import scenario_listing
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import resolve_preset, run_scenario, run_sweep
from repro.scenarios.spec import SweepSpec, apply_axis_overrides
from repro.serve.availability import availability as serve_availability
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.jobs import JobQueue, JobState
from repro.serve.keys import canonical_cache_key

if TYPE_CHECKING:  # pragma: no cover - type-only imports (layering)
    from repro.engine.options import ExecutionOptions
    from repro.experiments.base import ExperimentPreset, ExperimentResult
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "JobFailedError",
    "JobPendingError",
    "RunRequest",
    "SimulationService",
    "UnknownRunError",
]


class UnknownRunError(KeyError):
    """No job and no cache entry under the requested run id."""


class JobPendingError(RuntimeError):
    """The run exists but has not finished yet (HTTP 409 on the result)."""


class JobFailedError(RuntimeError):
    """The run finished with an error; the message carries it."""


@dataclass(frozen=True)
class RunRequest:
    """One validated-on-submit simulation request.

    Attributes
    ----------
    scenario:
        Registered scenario name (see :func:`repro.scenarios.scenario_names`).
    effort:
        Preset effort level (``"quick"`` / ``"default"`` / ``"paper"``).
    engine / workers / jit:
        Execution knobs, exactly as :func:`repro.scenarios.runner.run_scenario`
        takes them.
    seed:
        Root-seed override (defaults to the preset's pinned seed).
    overrides:
        Single-value preset overrides routed like sweep axes (``n``,
        ``trials``, ``parallel_time``, protocol constants, workload knobs).
    sweep:
        When set, the run is a :func:`run_sweep` over this axis mapping
        instead of a single :func:`run_scenario`.
    options:
        Alternatively, bundle effort/engine/workers/jit into one
        :class:`~repro.engine.options.ExecutionOptions`; it is flattened
        onto the fields above at construction time (passing both raises),
        so two requests describing the same run always compare equal.
        Preset and checkpointing fields are rejected — the service manages
        checkpointing itself (see ``SimulationService.checkpoint_every``).
    """

    scenario: str
    effort: str = "quick"
    engine: str | None = None
    workers: int | str | None = None
    jit: bool = False
    seed: int | None = None
    overrides: Mapping[str, Any] | None = None
    sweep: Mapping[str, Sequence[Any]] | None = None
    options: "ExecutionOptions | None" = None

    def __post_init__(self) -> None:
        if self.options is None:
            return
        opts = self.options
        if opts.preset is not None or opts.checkpointing or opts.interrupt_after is not None:
            raise ConfigurationError(
                "RunRequest options must not carry preset or checkpointing "
                "fields; use effort plus the service's own checkpoint_every"
            )
        conflicts = [
            name
            for name, default in (
                ("effort", "quick"),
                ("engine", None),
                ("workers", None),
                ("jit", False),
            )
            if getattr(self, name) != default
        ]
        if conflicts:
            raise ConfigurationError(
                "pass execution settings either via options=ExecutionOptions(...) "
                "or as request fields, not both; conflicting field(s): "
                + ", ".join(sorted(conflicts))
            )
        object.__setattr__(self, "effort", opts.effort)
        object.__setattr__(self, "engine", opts.engine)
        object.__setattr__(self, "workers", opts.workers)
        object.__setattr__(self, "jit", opts.jit)
        object.__setattr__(self, "options", None)

    def summary(self) -> dict[str, Any]:
        """JSON-encodable echo stored on the job and shown by status APIs."""
        payload = dataclasses.asdict(self)
        # Always None after __post_init__ flattening; dropped so the echo
        # keeps its pre-options shape byte for byte.
        payload.pop("options")
        payload["overrides"] = dict(self.overrides) if self.overrides else None
        payload["sweep"] = (
            {key: list(values) for key, values in self.sweep.items()}
            if self.sweep
            else None
        )
        return payload


def _validate_engine_request(spec: "ScenarioSpec", engine: str | None) -> None:
    """Mirror of the runner's pre-flight engine validation (public pieces)."""
    if engine is None or engine == "auto":
        return
    if engine not in engine_names():
        raise ConfigurationError(
            f"unknown engine {engine!r}; available engines: "
            f"{', '.join(engine_names())} (or 'auto')"
        )
    if not spec.supports_engine(engine):
        raise UnsupportedEngineError(
            f"scenario {spec.name!r} supports engine(s) "
            f"{', '.join(spec.engines)}, got {engine!r}"
        )


class SimulationService:
    """Queue + cache + runner behind one object; see the module docstring."""

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        max_cache_bytes: int | None = None,
        max_workers: int = 2,
        max_pending: int = 64,
        checkpoint_every: int | None = None,
        scenario_runner: Any = run_scenario,
        sweep_runner: Any = run_sweep,
    ) -> None:
        self.cache = ResultCache(cache_dir, max_bytes=max_cache_bytes)
        self.queue = JobQueue(max_workers=max_workers, max_pending=max_pending)
        #: Opt-in crash recovery for long jobs: checkpoint every this many
        #: parallel time units into ``<cache_dir>/checkpoints/<run id>``.
        #: A re-submitted request (same id, content-addressed) resumes from
        #: whatever a crashed predecessor left behind; the directory is
        #: removed once the result lands in the cache.  Not part of the
        #: cache key — checkpointing changes durability, never results.
        self.checkpoint_every = checkpoint_every
        self._checkpoint_root = Path(cache_dir) / "checkpoints"
        self._run_scenario = scenario_runner
        self._run_sweep = sweep_runner
        # Serialises the check-cache-then-enqueue step so two identical
        # concurrent submissions cannot both miss and both enqueue.
        self._admission = threading.Lock()

    # --------------------------------------------------------- validation

    def resolve(
        self, request: RunRequest
    ) -> tuple["ScenarioSpec", "ExperimentPreset", SweepSpec | None, str]:
        """Validate a request fully; returns (spec, preset, sweep, cache key).

        Raises :class:`ConfigurationError` (or a subclass) on anything
        malformed — nothing is enqueued and no simulation starts.
        """
        spec = get_scenario(request.scenario)
        _validate_engine_request(spec, request.engine)
        resolve_workers(request.workers)  # rejects bad values early
        preset = resolve_preset(spec, request.effort)
        if request.overrides:
            preset = apply_axis_overrides(preset, dict(request.overrides))
        if request.seed is not None:
            preset = preset.with_overrides(seed=int(request.seed))
        sweep = None
        if request.sweep:
            sweep = SweepSpec.from_mapping(request.scenario, dict(request.sweep))
        # Expanding the points validates population sizes, trial counts and
        # resize schedules for every engine before admission.
        if spec.executor is None and sweep is None:
            from repro.scenarios.runner import resolve_params

            tuple(spec.points(preset, resolve_params(spec, preset)))
        key = canonical_cache_key(
            spec,
            preset,
            engine=request.engine,
            workers=request.workers,
            jit=request.jit,
            sweep=sweep,
        )
        return spec, preset, sweep, key

    # ----------------------------------------------------------- lifecycle

    def submit(self, request: RunRequest) -> dict[str, Any]:
        """Admit a request; returns a status payload with ``cached``/``state``.

        Cache hits return immediately (``state: "done", cached: true``);
        misses enqueue (single-flight per key) and return the job status.
        :class:`~repro.serve.jobs.QueueFullError` propagates to the caller
        when the pending bound is reached.
        """
        spec, preset, sweep, key = self.resolve(request)

        def work() -> CacheEntry:
            checkpoints: dict[str, Any] = {}
            ckpt_dir: Path | None = None
            if self.checkpoint_every is not None:
                # Content-addressed like the cache entry itself: a job that
                # died mid-run resumes when the same request is re-submitted.
                ckpt_dir = self._checkpoint_root / key
                checkpoints = {
                    "checkpoint_every": self.checkpoint_every,
                    "checkpoint_dir": ckpt_dir,
                    "resume_from": ckpt_dir if ckpt_dir.exists() else None,
                }
            if sweep is not None:
                labelled = self._run_sweep(
                    sweep,
                    preset=preset,
                    engine=request.engine,
                    workers=request.workers,
                    jit=request.jit,
                    **checkpoints,
                )
                entry = self.cache.put(key, labelled, kind="sweep")
            else:
                result = self._run_scenario(
                    spec,
                    preset=preset,
                    engine=request.engine,
                    workers=request.workers,
                    jit=request.jit,
                    **checkpoints,
                )
                entry = self.cache.put(key, [(None, result)], kind="scenario")
            if ckpt_dir is not None:
                # The result is durable in the cache; the recovery state is
                # now dead weight.
                shutil.rmtree(ckpt_dir, ignore_errors=True)
            return entry

        with self._admission:
            if self.cache.get(key) is not None:
                return {
                    "run_id": key,
                    "state": JobState.DONE.value,
                    "cached": True,
                    "request": request.summary(),
                }
            job = self.queue.submit(key, work, request=request.summary())
        status = job.status()
        status["run_id"] = key
        status["cached"] = False
        return status

    def status(self, run_id: str) -> dict[str, Any]:
        """Status payload for a run id; raises :class:`UnknownRunError`."""
        job = self.queue.get(run_id)
        if job is not None:
            payload = job.status()
            payload["run_id"] = run_id
            payload["cached"] = False
            return payload
        if self._cached(run_id) is not None:
            # Known only to the cache: computed by an earlier process.
            return {
                "run_id": run_id,
                "state": JobState.DONE.value,
                "cached": True,
            }
        raise UnknownRunError(run_id)

    def _cached(self, run_id: str) -> CacheEntry | None:
        try:
            return self.cache.get(run_id)
        except ValueError:
            # Not even a well-formed key — cannot be a run id we issued.
            return None

    def _entry_for_result(self, run_id: str) -> CacheEntry:
        entry = self._cached(run_id)
        if entry is not None:
            return entry
        job = self.queue.get(run_id)
        if job is None:
            raise UnknownRunError(run_id)
        if job.state is JobState.FAILED:
            raise JobFailedError(job.error or "job failed")
        if job.state in (JobState.QUEUED, JobState.RUNNING):
            raise JobPendingError(f"run {run_id} is still {job.state.value}")
        # DONE but no cache entry: the entry was evicted or purged between
        # completion and this read — re-submit recomputes it.
        raise UnknownRunError(run_id)

    def result_payload(self, run_id: str) -> dict[str, Any]:
        """The run's full JSON payload, rendered from the cache entry.

        Always built from the stored artifacts — never from in-memory job
        state — so every fetch of the same run id returns byte-identical
        content no matter which process computed it.
        """
        entry = self._entry_for_result(run_id)
        return {
            "run_id": entry.key,
            "kind": entry.kind,
            "results": [
                _result_payload(label, result) for label, result in entry.results
            ],
        }

    def result_csv(self, run_id: str, *, index: int = 0) -> str:
        """One result's rows as CSV text, byte-identical to its artifact file."""
        from repro.analysis.tables import csv_text

        entry = self._entry_for_result(run_id)
        if not 0 <= index < len(entry.results):
            raise UnknownRunError(
                f"{run_id} has {len(entry.results)} result(s); index {index} is out of range"
            )
        _, result = entry.results[index]
        return csv_text(result.rows)

    # --------------------------------------------------------- inspection

    def scenarios(self) -> list[dict[str, Any]]:
        """The shared machine-readable scenario listing (``GET /scenarios``)."""
        return scenario_listing()

    def health(self) -> dict[str, Any]:
        """Capabilities, queue depth and cache stats (``GET /healthz``)."""
        jit = kernels_availability()
        serve = serve_availability()
        return {
            "status": "ok",
            "engines": engine_capabilities(),
            "jit": {
                "enabled": jit.enabled,
                "reason": jit.reason,
                "numba_version": jit.numba_version,
            },
            "serve": {
                "enabled": serve.enabled,
                "reason": serve.reason,
                "fastapi_version": serve.fastapi_version,
            },
            "queue": self.queue.depth(),
            "cache": self.cache.stats(),
        }

    def close(self) -> None:
        """Shut the worker pool down (running jobs finish)."""
        self.queue.shutdown(wait=True)


def _result_payload(label: str | None, result: "ExperimentResult") -> dict[str, Any]:
    return {
        "label": label,
        "experiment": result.experiment,
        "description": result.description,
        "metadata": result.metadata,
        "rows": result.rows,
        "series": result.series,
    }
