"""Run-level cache keys: one stable SHA-256 per distinct computation.

Every run in this reproduction is a frozen :class:`ScenarioSpec` (or
:class:`SweepSpec` grid) executed at a concrete preset under a
:class:`~repro.engine.rng.SeedTree`-addressed random stream — a pure
function of its declarative inputs.  Identical requests are therefore
provably identical computations, which is the property that makes a
content-addressed result cache *correct* rather than merely heuristic.

:func:`canonical_cache_key` hashes the canonical JSON encoding
(:func:`repro.scenarios.spec.canonical_json`: field-order and float-repr
invariant) of everything that can influence the produced artifact bytes:

* the scenario's declarative identity (:meth:`ScenarioSpec.canonical_encoding`),
* the fully resolved preset (sizes, horizon, trials, seed, extra knobs —
  including sweep-applied ``params_overrides``),
* the normalised engine request, the resolved worker count and the jit flag
  (these do not change the simulated rows — determinism holds across all of
  them — but they are recorded in result metadata, so two runs differing in
  any of them produce different artifact bytes and must not share an entry),
* the sweep grid, when the run is a sweep.

Two requests get the same key exactly when replaying either would write the
other's artifacts.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

from repro.engine.parallel import resolve_workers
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, SweepSpec, canonical_json

if TYPE_CHECKING:  # pragma: no cover - type-only import (layering)
    from repro.experiments.base import ExperimentPreset

__all__ = ["KEY_SCHEMA_VERSION", "canonical_cache_key", "normalize_engine_request", "run_encoding"]

#: Bumped whenever the encoding below changes shape — old cache entries then
#: miss (and are rewritten) instead of being served with stale semantics.
#: v2: ScenarioSpec.canonical_encoding gained ``schedule_kind``/``knobs``.
KEY_SCHEMA_VERSION = 2


def normalize_engine_request(spec: ScenarioSpec, engine: str | None) -> str:
    """Collapse equivalent engine requests onto one canonical spelling.

    ``None`` means "the spec's pinned engine, else auto-select" — for a spec
    without a pinned engine that is the *same computation* as an explicit
    ``"auto"``, so both map to ``"auto"`` and share cache entries.  For a
    pinned spec, ``None`` resolves to the pinned name while ``"auto"`` keeps
    forcing per-point selection, so they stay distinct.
    """
    if engine is None:
        return spec.engine if spec.engine is not None else "auto"
    return engine


def run_encoding(
    spec_or_name: ScenarioSpec | str,
    preset: "ExperimentPreset",
    *,
    seed: int | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
    jit: bool = False,
    sweep: SweepSpec | None = None,
) -> dict[str, Any]:
    """The JSON-encodable identity of one run request (pre-hash).

    ``seed`` overrides the preset's root seed when given (the preset already
    carries one).  ``workers`` is resolved through
    :func:`repro.engine.parallel.resolve_workers` first, so ``"auto"`` keys
    on the concrete count it resolves to on this host.
    """
    spec = get_scenario(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    if seed is not None:
        preset = preset.with_overrides(seed=int(seed))
    return {
        "schema": KEY_SCHEMA_VERSION,
        "scenario": spec.canonical_encoding(),
        "preset": {
            "name": preset.name,
            "population_sizes": list(preset.population_sizes),
            "parallel_time": preset.parallel_time,
            "trials": preset.trials,
            "seed": preset.seed,
            "extra": dict(preset.extra),
        },
        "engine": normalize_engine_request(spec, engine),
        "workers": resolve_workers(workers),
        "jit": bool(jit),
        "sweep": sweep.canonical_encoding() if sweep is not None else None,
    }


def canonical_cache_key(
    spec_or_name: ScenarioSpec | str,
    preset: "ExperimentPreset",
    *,
    seed: int | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
    jit: bool = False,
    sweep: SweepSpec | None = None,
) -> str:
    """SHA-256 hex digest of :func:`run_encoding`.

    Stable across processes, dict orderings and float spellings; distinct
    across any semantic difference in the request.  Used as both the cache
    directory name and the public run id.
    """
    encoding = canonical_json(
        run_encoding(
            spec_or_name,
            preset,
            seed=seed,
            engine=engine,
            workers=workers,
            jit=jit,
            sweep=sweep,
        )
    )
    return hashlib.sha256(encoding.encode("ascii")).hexdigest()
