"""Disk-backed, content-addressed result cache with an LRU size cap.

Entries are keyed by :func:`repro.serve.keys.canonical_cache_key` and live
in a two-level directory (``<key[:2]>/<key>/``) holding the real
:meth:`repro.experiments.base.ExperimentResult.save` artifacts (one
``r000/``, ``r001/``, ... sub-directory per result — a scenario run has one,
a sweep one per grid combination) plus an ``entry.json`` manifest.

Concurrency contract
--------------------
Writes are atomic: artifacts are staged into a private temporary directory
and published with a single :func:`os.rename`.  Readers therefore never see
a half-written entry — a directory either is not there (miss) or holds the
complete artifact set.  When two workers finish the same computation
concurrently, one rename wins and the loser silently discards its staging
copy; since both wrote bit-identical artifacts (determinism of the
SeedTree), which one wins is unobservable.

Anything wrong with an entry on read — truncated CSV, missing manifest,
invalid JSON — is treated as a *miss*: the entry is purged so the
computation re-runs and overwrites it.  Corruption is never an exception on
the serving path.

The LRU cap bounds total artifact bytes: every hit touches the entry's
``entry.json`` mtime, and :meth:`ResultCache.put` evicts
least-recently-used entries until the configured budget holds again (the
entry just written always survives).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only import (layering)
    from repro.experiments.base import ExperimentResult

__all__ = ["CacheEntry", "ResultCache"]

#: Bumped when the on-disk entry layout changes; mismatched entries load as
#: misses and are rewritten.
_ENTRY_SCHEMA = 1

_ENTRY_MANIFEST = "entry.json"


@dataclass(frozen=True)
class CacheEntry:
    """One loaded cache entry: its manifest fields plus the results.

    ``results`` preserves submission order: ``[(label, result), ...]`` with
    ``label`` ``None`` for a plain scenario run and the grid label for each
    sweep combination.
    """

    key: str
    kind: str
    labels: tuple[str | None, ...]
    path: Path
    results: tuple[tuple[str | None, "ExperimentResult"], ...]


def _tree_bytes(path: Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def _artifact_digests(root: Path) -> dict[str, dict[str, Any]]:
    """Size + SHA-256 per artifact file, keyed by path relative to the entry.

    Recorded in ``entry.json`` at write time and re-verified on every load:
    a truncated or bit-flipped artifact (which might still *parse*) is then
    detected as corruption instead of being served as data.
    """
    digests = {}
    for file in sorted(root.rglob("*")):
        if not file.is_file() or file.name == _ENTRY_MANIFEST:
            continue
        digests[file.relative_to(root).as_posix()] = {
            "bytes": file.stat().st_size,
            "sha256": hashlib.sha256(file.read_bytes()).hexdigest(),
        }
    return digests


class ResultCache:
    """Content-addressed artifact store; see the module docstring."""

    def __init__(self, root: str | Path, *, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._staging = self.root / "tmp"
        self._staging.mkdir(exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------- layout

    def _entry_dir(self, key: str) -> Path:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValueError(f"cache keys are lowercase hex digests, got {key!r}")
        return self.root / key[:2] / key

    def _entry_dirs(self) -> list[Path]:
        return [
            entry
            for shard in self.root.iterdir()
            if shard.is_dir() and shard.name != self._staging.name
            for entry in shard.iterdir()
            if entry.is_dir()
        ]

    # ------------------------------------------------------------ reading

    def _load(self, key: str) -> CacheEntry | None:
        """Load an entry without touching counters; corrupt entries are purged."""
        from repro.experiments.base import ExperimentResult

        path = self._entry_dir(key)
        if not path.is_dir():
            return None
        try:
            manifest = json.loads((path / _ENTRY_MANIFEST).read_text())
            if manifest.get("schema") != _ENTRY_SCHEMA or manifest.get("key") != key:
                raise ValueError(f"entry manifest does not match key {key}")
            if _artifact_digests(path) != manifest["files"]:
                raise ValueError(f"artifact checksums do not match for {key}")
            labels = manifest["labels"]
            results = []
            for index, label in enumerate(labels):
                slot = path / f"r{index:03d}"
                # save() nests artifacts under the experiment id; exactly one
                # result directory per slot.
                (result_dir,) = [d for d in slot.iterdir() if d.is_dir()]
                results.append((label, ExperimentResult.load(result_dir)))
        except Exception:
            # Corrupt or half-destroyed entry: purge so the computation
            # re-runs and overwrites it.  Never an exception.
            shutil.rmtree(path, ignore_errors=True)
            return None
        return CacheEntry(
            key=key,
            kind=manifest["kind"],
            labels=tuple(labels),
            path=path,
            results=tuple(results),
        )

    def get(self, key: str) -> CacheEntry | None:
        """Load the entry for ``key``; any defect counts as a miss.

        A readable entry bumps the hit counter and its LRU recency; a
        missing, truncated or otherwise corrupt entry is purged (so the next
        :meth:`put` rewrites it) and ``None`` is returned.
        """
        entry = self._load(key)
        with self._lock:
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
        if entry is not None:
            self._touch(entry.path)
        return entry

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path / _ENTRY_MANIFEST)
        except OSError:  # pragma: no cover - concurrent purge
            pass

    # ------------------------------------------------------------ writing

    def put(
        self,
        key: str,
        results: Sequence[tuple[str | None, "ExperimentResult"]],
        *,
        kind: str = "scenario",
    ) -> CacheEntry:
        """Persist ``results`` under ``key`` atomically; returns the entry.

        When the entry already exists (a concurrent identical submission won
        the publish race) the freshly staged copy is discarded — determinism
        guarantees both copies hold the same rows, so the existing entry is
        authoritative and stays byte-stable for readers.
        """
        if not results:
            raise ValueError("a cache entry needs at least one result")
        target = self._entry_dir(key)
        stage = Path(tempfile.mkdtemp(prefix=key[:8] + "-", dir=self._staging))
        try:
            for index, (_, result) in enumerate(results):
                result.save(stage / f"r{index:03d}")
            manifest = {
                "schema": _ENTRY_SCHEMA,
                "key": key,
                "kind": kind,
                "labels": [label for label, _ in results],
                "files": _artifact_digests(stage),
            }
            # entry.json is written last within the stage, but publication is
            # the rename below — readers never see the stage at all.
            (stage / _ENTRY_MANIFEST).write_text(
                json.dumps(manifest, indent=2, sort_keys=True)
            )
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(stage, target)
            except OSError:
                if not target.is_dir():
                    raise
                # Lost the publish race to an identical computation.
                shutil.rmtree(stage, ignore_errors=True)
        except Exception:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        self._enforce_budget(keep=target)
        entry = self._load(key)
        if entry is None:  # pragma: no cover - only a racing purge
            raise RuntimeError(f"cache entry {key} vanished immediately after put")
        return entry

    def _enforce_budget(self, *, keep: Path) -> None:
        """Evict least-recently-used entries until ``max_bytes`` holds.

        The just-written entry (``keep``) is never evicted, even when it is
        alone over budget — caching the newest result beats caching nothing.
        """
        if self.max_bytes is None:
            return
        with self._lock:
            entries = []
            for path in self._entry_dirs():
                try:
                    mtime = (path / _ENTRY_MANIFEST).stat().st_mtime_ns
                    size = _tree_bytes(path)
                except OSError:
                    continue
                entries.append((mtime, size, path))
            total = sum(size for _, size, _ in entries)
            entries.sort()  # oldest manifest mtime first == least recently used
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep:
                    continue
                shutil.rmtree(path, ignore_errors=True)
                total -= size
                self._evictions += 1

    # ---------------------------------------------------------- inspection

    def stats(self) -> dict[str, Any]:
        """Counters and occupancy for ``/healthz`` and the tests."""
        entries = self._entry_dirs()
        with self._lock:
            return {
                "entries": len(entries),
                "bytes": sum(_tree_bytes(path) for path in entries),
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def keys(self) -> list[str]:
        """Keys of all currently stored entries (sorted)."""
        return sorted(path.name for path in self._entry_dirs())
