"""Bounded asynchronous job queue for simulation requests.

Framework-free: a :class:`JobQueue` is a thread pool plus a job table.  Each
job walks ``queued -> running -> done | failed`` with wall-clock timestamps
at every transition and the execution time measured on a monotonic clock;
failures capture the exception as a one-line error string (the traceback
stays in the server log, not the API payload).

Admission is bounded: at most ``max_pending`` jobs may sit in the queued
state — beyond that :meth:`JobQueue.submit` raises :class:`QueueFullError`
so the HTTP layer can push back with a 429 instead of buffering unbounded
work.  Submitting a job id that is already queued, running or done returns
the existing job (single-flight: two identical submissions share one
computation); a *failed* id may be resubmitted and re-runs.

Threads, not processes, carry the jobs: the heavy lifting inside a job is
the NumPy/sharded-executor path of :func:`repro.scenarios.runner.run_scenario`,
which releases the GIL in its hot loops and can itself fan out worker
processes (``workers=``) — the queue only needs enough threads to overlap
cache writes and bookkeeping.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

__all__ = ["Job", "JobQueue", "JobState", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Raised by :meth:`JobQueue.submit` when the pending bound is reached."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One unit of queued work and its lifecycle bookkeeping.

    Attributes
    ----------
    id:
        Caller-chosen identifier (the serving layer uses the run's cache
        key, making the job table content-addressed too).
    request:
        JSON-encodable echo of what was asked for (shown by status APIs).
    state / error:
        Lifecycle state; ``error`` is set exactly when ``state`` is FAILED.
    created / started / finished:
        Wall-clock (``time.time``) transition timestamps; ``None`` until the
        transition happens.
    seconds:
        Monotonic execution time of the work callable itself.
    value:
        Whatever the work callable returned (``None`` for failures).
    """

    id: str
    request: dict[str, Any] = field(default_factory=dict)
    state: JobState = JobState.QUEUED
    error: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    seconds: float | None = None
    value: Any = None

    def status(self) -> dict[str, Any]:
        """JSON-encodable snapshot (no result payload)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "request": dict(self.request),
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "seconds": self.seconds,
        }


class JobQueue:
    """Run jobs on a bounded worker pool; see the module docstring."""

    def __init__(self, *, max_workers: int = 2, max_pending: int = 64) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be at least 1, got {max_pending}")
        self.max_workers = max_workers
        self.max_pending = max_pending
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()

    def submit(
        self,
        job_id: str,
        work: Callable[[], Any],
        *,
        request: dict[str, Any] | None = None,
    ) -> Job:
        """Enqueue ``work`` under ``job_id``; single-flight per id.

        Returns the existing job when the id is already queued, running or
        done.  A previously failed id is replaced and re-run.  Raises
        :class:`QueueFullError` when ``max_pending`` jobs are already
        waiting.
        """
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.state is not JobState.FAILED:
                return existing
            pending = sum(
                1 for job in self._jobs.values() if job.state is JobState.QUEUED
            )
            if pending >= self.max_pending:
                raise QueueFullError(
                    f"job queue is full ({pending} pending, bound "
                    f"{self.max_pending}); retry later"
                )
            job = Job(id=job_id, request=dict(request or {}))
            self._jobs[job_id] = job
        self._pool.submit(self._run, job, work)
        return job

    def _run(self, job: Job, work: Callable[[], Any]) -> None:
        with self._lock:
            # Shutdown may have swept this job to FAILED between the pool
            # accepting the future and this thread picking it up; running
            # it anyway would resurrect a job the API already reported dead.
            if job.state is not JobState.QUEUED:
                return
            job.started = time.time()
            job.state = JobState.RUNNING
        clock = time.perf_counter()
        try:
            value = work()
        except Exception as exc:
            job.seconds = time.perf_counter() - clock
            job.finished = time.time()
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = JobState.FAILED
        else:
            job.seconds = time.perf_counter() - clock
            job.finished = time.time()
            job.value = value
            job.state = JobState.DONE

    def get(self, job_id: str) -> Job | None:
        """The job for an id, or ``None`` when unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> dict[str, int]:
        """Current queue occupancy by state (for ``/healthz``)."""
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
        counts["pending"] = counts[JobState.QUEUED.value]
        return counts

    def wait(self, job_id: str, *, timeout: float = 60.0, poll: float = 0.01) -> Job:
        """Block until a job leaves the queued/running states (tests, CLIs)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.state in (JobState.DONE, JobState.FAILED):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id!r} still {job.state.value} after {timeout}s")
            time.sleep(poll)

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs.

        Jobs whose futures are cancelled before a worker picked them up
        would otherwise sit in the queued state forever (their ``_run``
        wrapper never executes); they are swept to FAILED with a
        cancellation error so status APIs report them terminally.
        """
        self._pool.shutdown(wait=wait, cancel_futures=True)
        now = time.time()
        with self._lock:
            for job in self._jobs.values():
                if job.state is JobState.QUEUED:
                    job.finished = now
                    job.error = "CancelledError: job queue shut down before the job started"
                    job.state = JobState.FAILED
