"""Leader election substrates.

Several of the static size counting baselines referenced in the paper's
related-work section are *leader driven*: the Berenbrink–Kaaser–Radzik
counting protocol elects a leader that generates tokens, and the uniform
synthetic-coin construction of Sudo et al. splits the population into
leaders and followers.  The paper's central argument against these designs
in the dynamic setting is that the adversary can simply remove the leader —
which the integration tests demonstrate using the protocols in this module.

Two classic mechanisms are provided:

* :class:`PairwiseEliminationLeaderElection` — every agent starts as a
  contender; when two contenders meet, one of them (the responder) drops
  out.  Converges to a single leader in ``O(n)`` parallel time.
* :class:`CoinLevelLeaderElection` — the "fast" variant in which contenders
  repeatedly flip coins to climb levels and drop out when meeting a
  contender on a higher level; expected ``O(log^2 n)`` parallel time to thin
  the contender set, and pairwise elimination finishes the job.  This also
  doubles as a junta-election mechanism (see :mod:`repro.protocols.junta`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = [
    "LeaderState",
    "PairwiseEliminationLeaderElection",
    "CoinLevelState",
    "CoinLevelLeaderElection",
]


@dataclass
class LeaderState:
    """State for pairwise-elimination leader election."""

    is_contender: bool = True

    def copy(self) -> "LeaderState":
        return LeaderState(is_contender=self.is_contender)


class PairwiseEliminationLeaderElection(Protocol[LeaderState]):
    """Classic one-bit leader election: contender meets contender, one survives."""

    name = "pairwise-leader-election"

    def initial_state(self, rng: RandomSource) -> LeaderState:
        return LeaderState(is_contender=True)

    def interact(
        self, u: LeaderState, v: LeaderState, ctx: InteractionContext
    ) -> tuple[LeaderState, LeaderState]:
        if u.is_contender and v.is_contender:
            v.is_contender = False
            ctx.emit("eliminated", agent_id=ctx.responder_id)
        return u, v

    def output(self, state: LeaderState) -> bool:
        return state.is_contender

    def memory_bits(self, state: LeaderState) -> int:
        return 1

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__}


@dataclass
class CoinLevelState:
    """State for coin-level (junta style) leader election.

    Attributes
    ----------
    level:
        Number of consecutive heads the agent has flipped while still a
        contender.  Agents stop climbing after their first tails.
    climbing:
        Whether the agent is still flipping coins to climb.
    is_contender:
        Whether the agent is still in the running.
    max_seen_level:
        The largest level observed in the population (spread by epidemic);
        contenders below it drop out.
    """

    level: int = 0
    climbing: bool = True
    is_contender: bool = True
    max_seen_level: int = 0

    def copy(self) -> "CoinLevelState":
        return CoinLevelState(
            level=self.level,
            climbing=self.climbing,
            is_contender=self.is_contender,
            max_seen_level=self.max_seen_level,
        )


class CoinLevelLeaderElection(Protocol[CoinLevelState]):
    """Coin-level leader election in the style of Gasieniec–Stachowiak.

    Contenders flip a fair coin per interaction while climbing: heads
    increments their level, tails stops the climb.  The maximum level in the
    population spreads via epidemic and contenders strictly below the
    maximum retire.  Ties on the top level are broken by pairwise
    elimination, so the protocol always converges to a single leader while
    the set of top-level agents (the *junta*) thins out in
    ``O(log log n)`` levels w.h.p.

    Parameters
    ----------
    max_level:
        Safety cap on the level to keep the state space bounded.
    """

    name = "coin-level-leader-election"

    def __init__(self, max_level: int = 60) -> None:
        if max_level < 1:
            raise ValueError(f"max_level must be positive, got {max_level}")
        self.max_level = int(max_level)

    def initial_state(self, rng: RandomSource) -> CoinLevelState:
        return CoinLevelState()

    def interact(
        self, u: CoinLevelState, v: CoinLevelState, ctx: InteractionContext
    ) -> tuple[CoinLevelState, CoinLevelState]:
        # Climb: the initiator flips a coin if it is still climbing.
        if u.is_contender and u.climbing:
            if ctx.rng.coin() and u.level < self.max_level:
                u.level += 1
            else:
                u.climbing = False

        # Spread the maximum observed level both ways (epidemic).
        top = max(u.max_seen_level, v.max_seen_level, u.level, v.level)
        u.max_seen_level = top
        v.max_seen_level = top

        # Contenders strictly below the maximum retire.
        if u.is_contender and u.level < top:
            u.is_contender = False
            ctx.emit("eliminated", agent_id=ctx.initiator_id)
        if v.is_contender and v.level < top:
            v.is_contender = False
            ctx.emit("eliminated", agent_id=ctx.responder_id)

        # Tie-break among top-level contenders by pairwise elimination.
        if u.is_contender and v.is_contender and u.level == v.level:
            v.is_contender = False
            ctx.emit("eliminated", agent_id=ctx.responder_id)
        return u, v

    def output(self, state: CoinLevelState) -> bool:
        return state.is_contender

    def memory_bits(self, state: CoinLevelState) -> int:
        level_bits = max(1, int(state.level).bit_length())
        seen_bits = max(1, int(state.max_seen_level).bit_length())
        return level_bits + seen_bits + 2

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "max_level": self.max_level}
