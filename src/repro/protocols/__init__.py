"""Toolbox and baseline protocols.

Substrates the paper's protocol builds on (epidemics, CHVP, detection) and
the protocols it is compared against or motivated by (static counting
baselines, the Doty–Eftekhari dynamic baseline, non-uniform phase clocks,
majority payloads).
"""

from repro.protocols.chvp import CHVP, CLVP
from repro.protocols.detection import DetectionProtocol, DetectionState
from repro.protocols.doty_eftekhari import DotyEftekhariCounting, DotyEftekhariState
from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
from repro.protocols.junta import JuntaElection, JuntaState
from repro.protocols.leader_election import (
    CoinLevelLeaderElection,
    CoinLevelState,
    LeaderState,
    PairwiseEliminationLeaderElection,
)
from repro.protocols.majority import ApproximateMajority, PhasedMajority, PhasedMajorityState
from repro.protocols.nonuniform_clock import NonUniformPhaseClock
from repro.protocols.static_counting import (
    AveragedMaximaCounting,
    AveragedMaximaState,
    MaxGrvCounting,
)
from repro.protocols.token_counting import TokenCounting, TokenCountingState
from repro.protocols.vectorized import (
    VectorizedApproximateMajority,
    VectorizedInfectionEpidemic,
    VectorizedJuntaElection,
    VectorizedMaxEpidemic,
)

__all__ = [
    "CHVP",
    "CLVP",
    "ApproximateMajority",
    "AveragedMaximaCounting",
    "AveragedMaximaState",
    "CoinLevelLeaderElection",
    "CoinLevelState",
    "DetectionProtocol",
    "DetectionState",
    "DotyEftekhariCounting",
    "DotyEftekhariState",
    "InfectionEpidemic",
    "JuntaElection",
    "JuntaState",
    "LeaderState",
    "MaxEpidemic",
    "MaxGrvCounting",
    "NonUniformPhaseClock",
    "PairwiseEliminationLeaderElection",
    "PhasedMajority",
    "PhasedMajorityState",
    "TokenCounting",
    "TokenCountingState",
    "VectorizedApproximateMajority",
    "VectorizedInfectionEpidemic",
    "VectorizedJuntaElection",
    "VectorizedMaxEpidemic",
]
