"""Junta election.

A *junta* is a small group of agents (size ``n^epsilon`` or polylog(n)) that
jointly drive a phase clock: instead of a single leader, any junta member
resets the clock, which makes the construction robust to the loss of
individual agents.  Junta-driven phase clocks (Gasieniec & Stachowiak 2018,
2021) are one of the three phase clock families discussed in the paper's
related-work section, and we implement one to compare against the paper's
*leaderless and uniform* clock.

The junta election here follows the standard coin-level scheme: every agent
flips fair coins to climb levels until the first tails; agents that reach
the maximum level observed in the population form the junta.  With high
probability the maximum level is ``log log n + O(1)`` and the junta has
polylogarithmic size — small enough to drive a clock, large enough that an
adversary removing a few agents rarely destroys it entirely (though removing
*all* junta members, which our dynamic experiments do on purpose, still
breaks the non-uniform clock; that is exactly the weakness the paper's
uniform clock avoids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["JuntaState", "JuntaElection"]


@dataclass
class JuntaState:
    """State of an agent in the junta election protocol.

    Attributes
    ----------
    level:
        Level reached by coin climbing (number of consecutive heads).
    climbing:
        Whether the agent is still flipping coins.
    max_seen_level:
        Largest level observed anywhere in the population (epidemic value).
    """

    level: int = 0
    climbing: bool = True
    max_seen_level: int = 0

    def copy(self) -> "JuntaState":
        return JuntaState(
            level=self.level, climbing=self.climbing, max_seen_level=self.max_seen_level
        )


class JuntaElection(Protocol[JuntaState]):
    """Coin-level junta election.

    An agent is a junta member (output ``True``) when its own level equals
    the maximum level it has observed.  Before the maximum has spread this
    is an over-approximation; after ``O(log n)`` parallel time the junta is
    exactly the set of agents on the true maximum level w.h.p.

    Parameters
    ----------
    max_level:
        Safety cap on levels (keeps the state space bounded).
    """

    name = "junta-election"

    def __init__(self, max_level: int = 60) -> None:
        if max_level < 1:
            raise ValueError(f"max_level must be positive, got {max_level}")
        self.max_level = int(max_level)

    def initial_state(self, rng: RandomSource) -> JuntaState:
        return JuntaState()

    def interact(
        self, u: JuntaState, v: JuntaState, ctx: InteractionContext
    ) -> tuple[JuntaState, JuntaState]:
        if u.climbing:
            if ctx.rng.coin() and u.level < self.max_level:
                u.level += 1
            else:
                u.climbing = False
        top = max(u.max_seen_level, v.max_seen_level, u.level, v.level)
        u.max_seen_level = top
        v.max_seen_level = top
        return u, v

    def output(self, state: JuntaState) -> bool:
        """Whether the agent currently believes it belongs to the junta."""
        return not state.climbing and state.level >= state.max_seen_level

    def memory_bits(self, state: JuntaState) -> int:
        return (
            max(1, int(state.level).bit_length())
            + max(1, int(state.max_seen_level).bit_length())
            + 1
        )

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "max_level": self.max_level}
