"""Dynamic size counting baseline (Doty & Eftekhari, SAND 2022 style).

This is the protocol the paper improves upon.  Its core idea, as summarised
in Section 1.2 of the paper:

* every agent samples a geometric random variable (GRV);
* the population tracks, for every GRV *value*, whether some live agent
  holds it, using the robust *detection* protocol of Alistarh et al. — one
  detection counter per tracked value;
* the estimate of ``log n`` is derived from the largest value that is still
  detected as present (equivalently, the first missing value marks the top
  of the occupied prefix);
* when a value's detection counter crosses the threshold, the value is
  declared absent — this is how the protocol notices that the population
  shrank and the old maximum is stale.

Because each agent stores ``O(log n)`` detection counters of
``O(log log n)`` bits each, the per-agent memory is
``O(log n * log log n)`` bits (or ``O((log log n)^2)`` in the optimised
variant of the original paper), versus the ``O(log log n)`` bits of the
paper's protocol.  The memory experiment regenerates exactly this
comparison.

Faithfulness note: the original SAND 2022 protocol includes further
machinery (restart logic, amplified sampling) that tightens its convergence
time to ``O(log n + log log n-hat)``.  We implement the structural core —
per-value detection plus resampling on detected absence — which reproduces
the qualitative behaviour the paper compares against: faster recovery from
exponential over-estimates, larger per-agent memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["DotyEftekhariState", "DotyEftekhariCounting"]


@dataclass
class DotyEftekhariState:
    """Per-agent state of the Doty–Eftekhari style baseline.

    Attributes
    ----------
    own_grv:
        The agent's own current GRV sample.  The agent acts as a *source*
        (detection counter pinned at zero) for exactly this value.
    counters:
        ``counters[v]`` is the detection counter for value ``v + 1``; low
        values mean "some agent with this GRV was heard from recently".
        The list grows on demand up to the largest value ever observed.
    interactions_since_resample:
        Used to refresh the agent's own sample periodically, so that the
        estimate can also *grow* again after the population grows.
    """

    own_grv: int = 1
    counters: list[int] = field(default_factory=list)
    interactions_since_resample: int = 0

    def copy(self) -> "DotyEftekhariState":
        return DotyEftekhariState(
            own_grv=self.own_grv,
            counters=list(self.counters),
            interactions_since_resample=self.interactions_since_resample,
        )


class DotyEftekhariCounting(Protocol[DotyEftekhariState]):
    """Dynamic size counting via per-value detection counters.

    Parameters
    ----------
    threshold_factor:
        A value ``v`` is declared absent when its counter exceeds
        ``threshold_factor * current_estimate``.  The original analysis uses
        a ``Theta(log n)`` threshold; tying it to the current estimate keeps
        the protocol uniform.
    resample_factor:
        Agents resample their own GRV after
        ``resample_factor * current_estimate`` interactions, which bounds
        how long a stale over-estimate can survive and lets the estimate
        track population growth.
    """

    name = "doty-eftekhari-counting"

    def __init__(self, threshold_factor: int = 8, resample_factor: int = 16) -> None:
        if threshold_factor < 1:
            raise ValueError(f"threshold_factor must be positive, got {threshold_factor}")
        if resample_factor < 1:
            raise ValueError(f"resample_factor must be positive, got {resample_factor}")
        self.threshold_factor = int(threshold_factor)
        self.resample_factor = int(resample_factor)

    # ------------------------------------------------------------------ setup

    def initial_state(self, rng: RandomSource) -> DotyEftekhariState:
        grv = rng.geometric()
        state = DotyEftekhariState(own_grv=grv)
        self._ensure_length(state, grv)
        return state

    @staticmethod
    def _ensure_length(state: DotyEftekhariState, value: int) -> None:
        """Grow the counter list so that index ``value - 1`` exists."""
        while len(state.counters) < value:
            state.counters.append(0)

    # ------------------------------------------------------------ interaction

    def interact(
        self, u: DotyEftekhariState, v: DotyEftekhariState, ctx: InteractionContext
    ) -> tuple[DotyEftekhariState, DotyEftekhariState]:
        longest = max(len(u.counters), len(v.counters), u.own_grv, v.own_grv)
        self._ensure_length(u, longest)
        self._ensure_length(v, longest)

        # Joint detection update: (x, y) -> min(x + 1, y + 1) for non-sources,
        # sources stay at zero for their own value.
        for index in range(longest):
            value = index + 1
            joint = min(u.counters[index], v.counters[index]) + 1
            u.counters[index] = 0 if u.own_grv == value else joint
            v.counters[index] = 0 if v.own_grv == value else joint

        for state, agent_id in ((u, ctx.initiator_id), (v, ctx.responder_id)):
            state.interactions_since_resample += 1
            estimate = max(1, self._estimate_value(state))
            if state.interactions_since_resample > self.resample_factor * estimate:
                state.own_grv = ctx.rng.geometric()
                self._ensure_length(state, state.own_grv)
                state.counters[state.own_grv - 1] = 0
                state.interactions_since_resample = 0
                ctx.emit("resample", agent_id=agent_id, grv=state.own_grv)
        return u, v

    # ---------------------------------------------------------------- outputs

    def _threshold(self, estimate: int) -> int:
        return self.threshold_factor * max(1, estimate)

    def _estimate_value(self, state: DotyEftekhariState) -> int:
        """Largest GRV value currently detected as present.

        Scans from the top: a value is *present* when its counter is below
        the threshold.  The threshold itself depends on the estimate, so the
        scan uses the candidate value as the estimate — the natural uniform
        self-consistent choice.
        """
        for index in range(len(state.counters) - 1, -1, -1):
            value = index + 1
            if state.counters[index] <= self._threshold(value):
                return value
        return max(1, state.own_grv)

    def output(self, state: DotyEftekhariState) -> float:
        """The agent's estimate of ``log2 n``."""
        return float(self._estimate_value(state))

    def memory_bits(self, state: DotyEftekhariState) -> int:
        counter_bits = sum(max(1, int(c).bit_length()) for c in state.counters)
        return (
            counter_bits
            + max(1, int(state.own_grv).bit_length())
            + max(1, int(state.interactions_since_resample).bit_length())
        )

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "threshold_factor": self.threshold_factor,
            "resample_factor": self.resample_factor,
        }
