"""Static (non-dynamic) approximate size counting baselines.

The paper's related-work section surveys three families of static counting
protocols; we implement the two GRV-based ones here (the token/load-balancing
protocol lives in :mod:`repro.protocols.token_counting`):

* :class:`MaxGrvCounting` — the Alistarh et al. (2017) approach: every agent
  samples one geometric random variable (number of coin flips until heads)
  and the population spreads the maximum by epidemic.  The maximum of ``n``
  Geom(1/2) variables is a constant-factor approximation of ``log n`` w.h.p.
  (Lemma 4.1 of the paper).
* :class:`AveragedMaximaCounting` — the Doty & Eftekhari (2019) refinement:
  agents hold ``m`` independent GRV slots, the population computes the
  maximum per slot, and each agent reports the *average* of its slot maxima,
  which concentrates to ``log n ± 5.7`` (an additive approximation).

Both protocols assume a *fixed* population and the naive "spread the
maximum" rule.  They are exactly the protocols that break in the dynamic
setting — when agents are removed, the stale maximum survives forever — and
the dynamic experiments (see ``experiments/baseline_comparison.py``) show
this failure mode explicitly, motivating the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["MaxGrvCounting", "AveragedMaximaState", "AveragedMaximaCounting"]


class MaxGrvCounting(Protocol[int]):
    """Static max-of-GRVs counting (Alistarh et al. 2017 style).

    Each agent's state is its current belief about the maximum GRV in the
    population; the initial state is the agent's own sample and interactions
    propagate the maximum both ways.  The output is the stored maximum,
    interpreted as an estimate of ``log2 n``.
    """

    name = "static-max-grv-counting"

    def __init__(self, samples_per_agent: int = 1) -> None:
        if samples_per_agent < 1:
            raise ValueError(f"samples_per_agent must be positive, got {samples_per_agent}")
        self.samples_per_agent = int(samples_per_agent)

    def initial_state(self, rng: RandomSource) -> int:
        return rng.geometric_max(self.samples_per_agent)

    def interact(self, u: int, v: int, ctx: InteractionContext) -> tuple[int, int]:
        peak = u if u >= v else v
        return peak, peak

    def output(self, state: int) -> float:
        return float(state)

    def memory_bits(self, state: int) -> int:
        return max(1, int(state).bit_length())

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "samples_per_agent": self.samples_per_agent,
        }


@dataclass
class AveragedMaximaState:
    """State for the averaged-maxima protocol: one running maximum per slot."""

    maxima: list[int] = field(default_factory=list)

    def copy(self) -> "AveragedMaximaState":
        return AveragedMaximaState(maxima=list(self.maxima))


class AveragedMaximaCounting(Protocol[AveragedMaximaState]):
    """Static averaged-maxima counting (Doty & Eftekhari 2019 style).

    Parameters
    ----------
    slots:
        Number of independent GRV slots ``m``.  The paper cited uses
        ``m = O(log n)`` slots to achieve the additive ``log n ± 5.7``
        guarantee; since our protocol catalogue is uniform we expose ``m``
        as an explicit parameter.
    """

    name = "static-averaged-maxima-counting"

    def __init__(self, slots: int = 16) -> None:
        if slots < 1:
            raise ValueError(f"slots must be positive, got {slots}")
        self.slots = int(slots)

    def initial_state(self, rng: RandomSource) -> AveragedMaximaState:
        return AveragedMaximaState(maxima=[rng.geometric() for _ in range(self.slots)])

    def interact(
        self, u: AveragedMaximaState, v: AveragedMaximaState, ctx: InteractionContext
    ) -> tuple[AveragedMaximaState, AveragedMaximaState]:
        merged = [max(a, b) for a, b in zip(u.maxima, v.maxima)]
        u.maxima = list(merged)
        v.maxima = merged
        return u, v

    def output(self, state: AveragedMaximaState) -> float:
        """Average of the per-slot maxima — an additive estimate of log2 n."""
        if not state.maxima:
            return 0.0
        return sum(state.maxima) / len(state.maxima)

    def memory_bits(self, state: AveragedMaximaState) -> int:
        return sum(max(1, int(m).bit_length()) for m in state.maxima)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "slots": self.slots}
