"""Vectorised (struct-of-arrays) counterparts of the toolbox protocols.

Each class here implements :class:`repro.engine.batch_engine.
VectorizedProtocol` for one of the scalar protocols in this package, so
that epidemics, junta election and majority can run at figure scale on the
:class:`repro.engine.batch_engine.BatchedSimulator` — and, because every
class also implements ``interact_one``, on the exact
:class:`repro.engine.array_engine.ArraySimulator`.

The ``interact_one`` implementations mirror their scalar protocol's
transition *including the order of random draws*; ``tests/
test_engine_equivalence.py`` asserts trajectory-exact agreement with the
sequential engine under a shared seed.  The ``interact_batch``
implementations follow the batched engine's synchronous-rounds semantics
(responder states read at the start of the batch, overlapping writes
resolved last-writer-wins, monotone variables merged with
``np.maximum.at``).  Every class additionally implements
``interact_ensemble``, the 2-D fast path of the
:class:`repro.engine.ensemble_engine.EnsembleSimulator`: the same
transition applied to ``(trials, n)`` stacked state with ``(trials,
batch)`` index matrices, removing the per-trial Python loop of the default
fallback.

The mapping from scalar protocol classes to these implementations lives in
:mod:`repro.engine.registry`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.batch_engine import VectorizedProtocol
from repro.engine.rng import RandomSource
from repro.protocols.majority import ApproximateMajority


def _row_indices(index_matrix: np.ndarray) -> np.ndarray:
    """Row-coordinate matrix matching a ``(trials, batch)`` index matrix."""
    rows = np.arange(index_matrix.shape[0])[:, None]
    return np.broadcast_to(rows, index_matrix.shape)

__all__ = [
    "VectorizedMaxEpidemic",
    "VectorizedInfectionEpidemic",
    "VectorizedJuntaElection",
    "VectorizedApproximateMajority",
]


class VectorizedMaxEpidemic(VectorizedProtocol):
    """Struct-of-arrays max-propagation epidemic.

    State arrays: ``value`` (float64) — the value being spread.  Mirrors
    :class:`repro.protocols.epidemic.MaxEpidemic`.
    """

    name = "vectorized-max-epidemic"

    def __init__(self, initial_value: int = 0, one_way: bool = True) -> None:
        self.initial_value = int(initial_value)
        self.one_way = bool(one_way)

    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        return {"value": np.full(n, self.initial_value, dtype=np.float64)}

    def seeded_arrays(self, n: int, peak: float, count: int = 1) -> dict[str, np.ndarray]:
        """Arrays with the first ``count`` agents holding ``peak`` (spread source)."""
        if not 0 < count <= n:
            raise ValueError(f"count must be in [1, {n}], got {count}")
        value = np.full(n, self.initial_value, dtype=np.float64)
        value[:count] = peak
        return {"value": value}

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        value = arrays["value"]
        peak = np.maximum(value[initiators], value[responders])
        np.maximum.at(value, initiators, peak)
        if not self.one_way:
            np.maximum.at(value, responders, peak)

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        value = arrays["value"]
        rows = _row_indices(initiators)
        peak = np.maximum(value[rows, initiators], value[rows, responders])
        np.maximum.at(value, (rows, initiators), peak)
        if not self.one_way:
            np.maximum.at(value, (rows, responders), peak)

    def interact_one(self, arrays, initiator, responder, rng) -> None:
        value = arrays["value"]
        peak = max(value[initiator], value[responder])
        value[initiator] = peak
        if not self.one_way:
            value[responder] = peak

    def output_array(self, arrays) -> np.ndarray:
        return arrays["value"]

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_value": self.initial_value,
            "one_way": self.one_way,
        }


class VectorizedInfectionEpidemic(VectorizedProtocol):
    """Struct-of-arrays binary SI epidemic.

    State arrays: ``infected`` (int8, 0 = susceptible, 1 = infected).
    Mirrors :class:`repro.protocols.epidemic.InfectionEpidemic`.
    """

    name = "vectorized-infection-epidemic"

    def __init__(self, one_way: bool = False) -> None:
        self.one_way = bool(one_way)

    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        return {"infected": np.zeros(n, dtype=np.int8)}

    def seeded_arrays(self, n: int, infected: int = 1) -> dict[str, np.ndarray]:
        """Arrays with the first ``infected`` agents infected."""
        if not 0 < infected <= n:
            raise ValueError(f"infected must be in [1, {n}], got {infected}")
        arr = np.zeros(n, dtype=np.int8)
        arr[:infected] = 1
        return {"infected": arr}

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        infected = arrays["infected"]
        v_inf = infected[responders]
        if self.one_way:
            np.maximum.at(infected, initiators, v_inf)
        else:
            both = np.maximum(infected[initiators], v_inf)
            np.maximum.at(infected, initiators, both)
            np.maximum.at(infected, responders, both)

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        infected = arrays["infected"]
        rows = _row_indices(initiators)
        v_inf = infected[rows, responders]
        if self.one_way:
            np.maximum.at(infected, (rows, initiators), v_inf)
        else:
            both = np.maximum(infected[rows, initiators], v_inf)
            np.maximum.at(infected, (rows, initiators), both)
            np.maximum.at(infected, (rows, responders), both)

    def interact_one(self, arrays, initiator, responder, rng) -> None:
        infected = arrays["infected"]
        if self.one_way:
            if infected[responder] and not infected[initiator]:
                infected[initiator] = 1
        elif infected[initiator] or infected[responder]:
            infected[initiator] = 1
            infected[responder] = 1

    def output_array(self, arrays) -> np.ndarray:
        return arrays["infected"]

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "one_way": self.one_way}


class VectorizedJuntaElection(VectorizedProtocol):
    """Struct-of-arrays coin-level junta election.

    State arrays
    ------------
    ``level``     int64 — coin-climbing level.
    ``climbing``  int8  — whether the agent is still flipping coins.
    ``max_seen``  int64 — largest level observed anywhere (epidemic value).

    Mirrors :class:`repro.protocols.junta.JuntaElection`: output 1 means the
    agent currently believes it belongs to the junta.
    """

    name = "vectorized-junta-election"

    def __init__(self, max_level: int = 60) -> None:
        if max_level < 1:
            raise ValueError(f"max_level must be positive, got {max_level}")
        self.max_level = int(max_level)

    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        return {
            "level": np.zeros(n, dtype=np.int64),
            "climbing": np.ones(n, dtype=np.int8),
            "max_seen": np.zeros(n, dtype=np.int64),
        }

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        level = arrays["level"]
        climbing = arrays["climbing"]
        max_seen = arrays["max_seen"]

        u_level = level[initiators]
        u_climb = climbing[initiators].astype(bool)
        v_level = level[responders]
        v_seen = max_seen[responders]
        u_seen = max_seen[initiators]

        coins = np.zeros(initiators.shape, dtype=bool)
        climbers = int(u_climb.sum())
        if climbers:
            coins[u_climb] = rng.generator.integers(0, 2, size=climbers).astype(bool)
        up = u_climb & coins & (u_level < self.max_level)
        new_level = np.where(up, u_level + 1, u_level)
        # An agent keeps climbing only while every flip is heads below the cap.
        level[initiators] = new_level
        climbing[initiators] = up.astype(np.int8)

        top = np.maximum(np.maximum(new_level, u_seen), np.maximum(v_level, v_seen))
        np.maximum.at(max_seen, initiators, top)
        np.maximum.at(max_seen, responders, top)

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        level = arrays["level"]
        climbing = arrays["climbing"]
        max_seen = arrays["max_seen"]
        rows = _row_indices(initiators)

        u_level = level[rows, initiators]
        u_climb = climbing[rows, initiators].astype(bool)
        v_level = level[rows, responders]
        v_seen = max_seen[rows, responders]
        u_seen = max_seen[rows, initiators]

        coins = np.zeros(initiators.shape, dtype=bool)
        climbers = int(u_climb.sum())
        if climbers:
            coins[u_climb] = rng.generator.integers(0, 2, size=climbers).astype(bool)
        up = u_climb & coins & (u_level < self.max_level)
        new_level = np.where(up, u_level + 1, u_level)
        level[rows, initiators] = new_level
        climbing[rows, initiators] = up.astype(np.int8)

        top = np.maximum(np.maximum(new_level, u_seen), np.maximum(v_level, v_seen))
        np.maximum.at(max_seen, (rows, initiators), top)
        np.maximum.at(max_seen, (rows, responders), top)

    def interact_one(self, arrays, initiator, responder, rng) -> None:
        level = arrays["level"]
        climbing = arrays["climbing"]
        max_seen = arrays["max_seen"]
        if climbing[initiator]:
            if rng.coin() and level[initiator] < self.max_level:
                level[initiator] += 1
            else:
                climbing[initiator] = 0
        top = max(
            max_seen[initiator], max_seen[responder], level[initiator], level[responder]
        )
        max_seen[initiator] = top
        max_seen[responder] = top

    def output_array(self, arrays) -> np.ndarray:
        member = (arrays["climbing"] == 0) & (arrays["level"] >= arrays["max_seen"])
        return member.astype(np.float64)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "max_level": self.max_level}


class VectorizedApproximateMajority(VectorizedProtocol):
    """Struct-of-arrays three-state approximate majority.

    State arrays: ``opinion`` (int8) with the encoding ``+1`` = A, ``-1`` =
    B, ``0`` = undecided.  Mirrors :class:`repro.protocols.majority.
    ApproximateMajority`; the numeric encoding doubles as the output, so
    snapshot medians report which opinion is winning.
    """

    name = "vectorized-approximate-majority"

    #: Scalar state string -> numeric opinion code.
    CODES = {ApproximateMajority.A: 1, ApproximateMajority.B: -1, ApproximateMajority.UNDECIDED: 0}

    def __init__(self, initial_opinion: str = "U") -> None:
        if initial_opinion not in self.CODES:
            raise ValueError(f"invalid initial opinion {initial_opinion!r}")
        self.initial_opinion = initial_opinion

    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        code = self.CODES[self.initial_opinion]
        return {"opinion": np.full(n, code, dtype=np.int8)}

    def arrays_from_counts(self, a: int, b: int, undecided: int = 0) -> dict[str, np.ndarray]:
        """Arrays for an initial configuration with the given opinion counts."""
        if min(a, b, undecided) < 0 or a + b + undecided < 2:
            raise ValueError(
                "opinion counts must be non-negative and sum to >= 2, "
                f"got a={a}, b={b}, undecided={undecided}"
            )
        opinion = np.concatenate(
            [
                np.full(a, 1, dtype=np.int8),
                np.full(b, -1, dtype=np.int8),
                np.zeros(undecided, dtype=np.int8),
            ]
        )
        return {"opinion": opinion}

    def interact_batch(self, arrays, initiators, responders, rng) -> None:
        opinion = arrays["opinion"]
        u_op = opinion[initiators]
        v_op = opinion[responders]
        recruit_u = (u_op == 0) & (v_op != 0)
        recruit_v = (v_op == 0) & (u_op != 0)
        cancel = (u_op != 0) & (v_op != 0) & (u_op == -v_op)
        new_u = np.where(recruit_u, v_op, u_op)
        new_v = np.where(recruit_v, u_op, np.where(cancel, 0, v_op))
        opinion[initiators] = new_u
        opinion[responders] = new_v

    def interact_ensemble(self, arrays, initiators, responders, rng) -> None:
        opinion = arrays["opinion"]
        rows = _row_indices(initiators)
        u_op = opinion[rows, initiators]
        v_op = opinion[rows, responders]
        recruit_u = (u_op == 0) & (v_op != 0)
        recruit_v = (v_op == 0) & (u_op != 0)
        cancel = (u_op != 0) & (v_op != 0) & (u_op == -v_op)
        new_u = np.where(recruit_u, v_op, u_op)
        new_v = np.where(recruit_v, u_op, np.where(cancel, 0, v_op))
        opinion[rows, initiators] = new_u
        opinion[rows, responders] = new_v

    def interact_one(self, arrays, initiator, responder, rng) -> None:
        opinion = arrays["opinion"]
        u, v = int(opinion[initiator]), int(opinion[responder])
        if u == 0 or v == 0 or u == v:
            if u != 0 and v == 0:
                opinion[responder] = u
            elif v != 0 and u == 0:
                opinion[initiator] = v
        else:
            opinion[responder] = 0

    def output_array(self, arrays) -> np.ndarray:
        return arrays["opinion"]

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_opinion": self.initial_opinion,
        }
