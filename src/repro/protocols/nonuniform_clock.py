"""Non-uniform loosely-stabilizing phase clock (Berenbrink et al. 2022 style).

The clock the paper explicitly contrasts itself with: it is leaderless and
loosely stabilizing, but *non-uniform* — the transition function needs an
approximation of ``log n`` baked in.  Our reproduction uses it in two roles:

* as a baseline phase clock whose burst/overlap structure is compared with
  the paper's uniform clock in the phase clock experiment, and
* as a demonstration that a non-uniform clock cannot adapt when the
  population size changes (the whole point of the paper).

The implementation follows the "counter modulo m" scheme described in the
paper's related-work section: every agent keeps a counter that is advanced
by a max-propagation-plus-increment rule (the same one-sided CHVP idea used
for the paper's ``time`` variable, but on a ring of size ``m``).  Whenever
an agent's counter wraps past zero it receives a *signal* — the clock tick —
which divides time into bursts and overlaps exactly as in the paper's
Section 1.2 nomenclature.
"""

from __future__ import annotations

from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["NonUniformPhaseClock"]


class NonUniformPhaseClock(Protocol[int]):
    """Counter-mod-m phase clock that needs ``log n`` as a parameter.

    Parameters
    ----------
    log_n_estimate:
        The (externally supplied) approximation of ``log2 n`` the clock is
        built around.  This is exactly the non-uniformity the paper removes.
    hours:
        Number of clock hours; the ring size is ``hours * phase_factor *
        log_n_estimate`` counter values.
    phase_factor:
        Length of one hour in units of ``log_n_estimate``; must be large
        enough for an epidemic to complete within one hour (the analysis
        uses a constant ``>= 4(k+1)``; the empirical default of 8 works well).
    """

    name = "nonuniform-phase-clock"

    def __init__(self, log_n_estimate: float, hours: int = 3, phase_factor: int = 8) -> None:
        if log_n_estimate <= 0:
            raise ValueError(f"log_n_estimate must be positive, got {log_n_estimate}")
        if hours < 1:
            raise ValueError(f"hours must be positive, got {hours}")
        if phase_factor < 1:
            raise ValueError(f"phase_factor must be positive, got {phase_factor}")
        self.log_n_estimate = float(log_n_estimate)
        self.hours = int(hours)
        self.phase_factor = int(phase_factor)
        self.hour_length = max(1, int(round(self.phase_factor * self.log_n_estimate)))
        self.ring_size = self.hours * self.hour_length

    def initial_state(self, rng: RandomSource) -> int:
        return 0

    def interact(self, u: int, v: int, ctx: InteractionContext) -> tuple[int, int]:
        # One-way max-propagation on the ring plus an increment for the
        # initiator.  Because the ring wraps, "max" is taken on the raw
        # counters, which is the standard simple-clock construction: the
        # population's counters stay within a narrow band, so plain max is
        # the correct tie-break except during the wrap itself, where the
        # wrapped (small) value wins by resetting.
        advanced = (max(u, v) + 1) % self.ring_size
        if advanced < u:
            # The initiator's counter wrapped past zero: a clock tick.
            ctx.emit("tick", agent_id=ctx.initiator_id, hour=0)
        return advanced, v

    def output(self, state: int) -> int:
        """The agent's current hour on the clock face."""
        return state // self.hour_length

    def phase_of(self, state: int) -> str:
        """Human-readable hour label (``hour-0`` ... ``hour-{hours-1}``)."""
        return f"hour-{self.output(state)}"

    def memory_bits(self, state: int) -> int:
        return max(1, int(self.ring_size - 1).bit_length())

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "log_n_estimate": self.log_n_estimate,
            "hours": self.hours,
            "phase_factor": self.phase_factor,
            "ring_size": self.ring_size,
        }
