"""Countdown with Higher Value Propagation (CHVP) and its dual CLVP.

The dynamic size counting protocol synchronises the ``time`` variable of all
agents with the one-sided CHVP rule

    (u, v) -> (max{u, v} - 1, v),

analysed in Lemmas 4.3 / 4.4 and Appendix C of the paper (building on Sudo,
Eguchi, Izumi & Masuzawa 2021 and Alistarh et al. 2017).  Intuitively the
largest value spreads like an epidemic while every agent decrements its own
value once per initiated interaction, so after ``O(Delta + log n)`` parallel
time the whole population sits within a narrow band roughly ``Delta`` below
the initial maximum.

The appendix analyses the mirrored rule, Counting up with Lower Value
Propagation (CLVP),

    (u, v) -> (min{u, v} + 1, v),

which we also provide because the analysis (potential-function argument of
Lemma 4.3) is phrased in terms of CLVP and the property-based tests exercise
the exact coupling the proof uses.
"""

from __future__ import annotations

from typing import Any

from repro.engine.protocol import InteractionContext, OneWayProtocol
from repro.engine.rng import RandomSource

__all__ = ["CHVP", "CLVP"]


class CHVP(OneWayProtocol[int]):
    """One-sided Countdown with Higher Value Propagation.

    Parameters
    ----------
    initial_value:
        Value assigned to newly added agents.
    floor:
        Optional lower bound; values never drop below it.  The paper's
        analysis uses the unbounded variant (``floor=None``); the dynamic
        size counting protocol effectively bounds the countdown at zero via
        its wrap-around rule, which corresponds to ``floor=None`` plus an
        external reset.
    """

    name = "chvp"

    def __init__(self, initial_value: int = 0, floor: int | None = None) -> None:
        self.initial_value = int(initial_value)
        self.floor = None if floor is None else int(floor)

    def initial_state(self, rng: RandomSource) -> int:
        return self.initial_value

    def update_initiator(self, u: int, v: int, ctx: InteractionContext) -> int:
        value = (u if u >= v else v) - 1
        if self.floor is not None and value < self.floor:
            return self.floor
        return value

    def memory_bits(self, state: int) -> int:
        return max(1, abs(int(state)).bit_length() + (1 if state < 0 else 0))

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_value": self.initial_value,
            "floor": self.floor,
        }


class CLVP(OneWayProtocol[int]):
    """One-sided Counting up with Lower Value Propagation.

    The mirror image of :class:`CHVP`; used in the paper's Appendix C proofs
    (the potential function argument is stated for CLVP and transferred to
    CHVP by symmetry).  Also directly usable as the *detection* countdown of
    Alistarh et al. when combined with source agents pinned at zero — see
    :mod:`repro.protocols.detection`.
    """

    name = "clvp"

    def __init__(self, initial_value: int = 0, ceiling: int | None = None) -> None:
        self.initial_value = int(initial_value)
        self.ceiling = None if ceiling is None else int(ceiling)

    def initial_state(self, rng: RandomSource) -> int:
        return self.initial_value

    def update_initiator(self, u: int, v: int, ctx: InteractionContext) -> int:
        value = (u if u <= v else v) + 1
        if self.ceiling is not None and value > self.ceiling:
            return self.ceiling
        return value

    def memory_bits(self, state: int) -> int:
        return max(1, abs(int(state)).bit_length() + (1 if state < 0 else 0))

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_value": self.initial_value,
            "ceiling": self.ceiling,
        }
