"""Leader-and-token counting baseline (Berenbrink, Kaaser & Radzik 2019 style).

The third static counting family surveyed by the paper works as follows: the
population elects a leader, the leader generates ``M`` tokens which are
spread by a load-balancing process, and if after balancing some agents hold
no token then ``M`` must have been smaller than ``n``; the leader doubles
``M`` and restarts.  When the process stops, ``log M`` is within ±1 of
``log n``.

Exactly as the paper argues, this design is *leader driven* and therefore
unusable in the dynamic setting: remove the single leader and the protocol
silently stops making progress.  Our integration tests and the baseline
comparison experiment demonstrate this failure mode directly.

Implementation notes
--------------------
The original protocol paces its doubling rounds with a phase clock.  To keep
this baseline self-contained we pace rounds with an explicit
``round_length`` parameter (in initiated interactions of the leader), which
makes the protocol *non-uniform* — also faithful to the original, which is
non-uniform in its use of a phase clock of length ``Theta(log n)``.

Token balancing uses the standard discrete load-balancing rule: when two
agents meet they split the sum of their tokens as evenly as possible.
"Some agent is empty" is reported back to the leader by a one-bit epidemic
that is reset at the start of every round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.population import Population
from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["TokenCountingState", "TokenCounting"]


@dataclass
class TokenCountingState:
    """Per-agent state for the leader-and-token counting baseline.

    Attributes
    ----------
    is_leader:
        Whether this agent is the (unique) leader driving the rounds.
    tokens:
        Number of tokens currently held.
    round_id:
        Index of the doubling round the agent believes is running.
    saw_empty:
        One-bit epidemic flag: "some agent was still empty in the second
        half of this round" (the first half is reserved for balancing).
    interactions_in_round:
        Interactions this agent has had since it adopted the current round;
        used to tell the balancing half of a round from the checking half.
    leader_interactions:
        Leader only — interactions initiated since the round started, used
        to pace the round length.
    total_tokens:
        Leader only — the current value of ``M``.
    done:
        Leader only — whether the doubling loop has terminated.
    estimate:
        The reported estimate of ``log2 n`` (leaders compute it, followers
        adopt it by epidemic).
    """

    is_leader: bool = False
    tokens: int = 0
    round_id: int = 0
    saw_empty: bool = False
    interactions_in_round: int = 0
    leader_interactions: int = 0
    total_tokens: int = 1
    done: bool = False
    estimate: float = 0.0

    def copy(self) -> "TokenCountingState":
        return TokenCountingState(
            is_leader=self.is_leader,
            tokens=self.tokens,
            round_id=self.round_id,
            saw_empty=self.saw_empty,
            interactions_in_round=self.interactions_in_round,
            leader_interactions=self.leader_interactions,
            total_tokens=self.total_tokens,
            done=self.done,
            estimate=self.estimate,
        )


class TokenCounting(Protocol[TokenCountingState]):
    """Leader-driven doubling / load-balancing size counting.

    Parameters
    ----------
    round_length:
        Number of interactions the leader initiates before it closes a
        doubling round.  Should be ``Omega(log n)`` for the balancing and
        the empty-flag epidemic to complete; experiments set it from the
        population size under test (the protocol is non-uniform).
    """

    name = "token-counting"

    def __init__(self, round_length: int = 64) -> None:
        if round_length < 1:
            raise ValueError(f"round_length must be positive, got {round_length}")
        self.round_length = int(round_length)

    # ------------------------------------------------------------------ setup

    def initial_state(self, rng: RandomSource) -> TokenCountingState:
        """Newly added agents are followers with no tokens (the dynamic model)."""
        return TokenCountingState()

    def make_initial_population(self, n: int, rng: RandomSource) -> Population:
        """Build a fresh population of ``n`` agents with one designated leader.

        The original protocol elects the leader itself; composing the
        election is orthogonal to the counting behaviour this baseline
        exists to demonstrate, so experiments start from the post-election
        configuration.
        """
        if n < 2:
            raise ValueError(f"population size must be at least 2, got {n}")
        states = [TokenCountingState() for _ in range(n)]
        states[0].is_leader = True
        states[0].tokens = 1
        states[0].total_tokens = 1
        return Population(states)

    # ------------------------------------------------------------ interaction

    def interact(
        self, u: TokenCountingState, v: TokenCountingState, ctx: InteractionContext
    ) -> tuple[TokenCountingState, TokenCountingState]:
        self._sync_round(u, v)
        self._balance_tokens(u, v)
        self._spread_flags(u, v)
        if u.is_leader and not u.done:
            self._advance_leader(u, ctx)
        if v.is_leader and not v.done:
            # The responder-leader also observes the interaction; pacing by
            # initiated interactions only would simply double round_length.
            pass
        return u, v

    def _sync_round(self, u: TokenCountingState, v: TokenCountingState) -> None:
        """Followers joining a newer round drop their stale empty-flag."""
        newest = max(u.round_id, v.round_id)
        for state in (u, v):
            if state.round_id < newest:
                state.round_id = newest
                state.saw_empty = False
                state.interactions_in_round = 0
            state.interactions_in_round += 1

    def _balance_tokens(self, u: TokenCountingState, v: TokenCountingState) -> None:
        total = u.tokens + v.tokens
        u.tokens = (total + 1) // 2
        v.tokens = total // 2

    def _spread_flags(self, u: TokenCountingState, v: TokenCountingState) -> None:
        # "Empty agent exists" epidemic towards the leader.  The first half
        # of a round is reserved for balancing (the original protocol uses a
        # phase clock for this separation); only agents that are still empty
        # in the second half signal a shortage of tokens.
        checking_threshold = self.round_length // 2
        if u.tokens == 0 and u.interactions_in_round > checking_threshold:
            u.saw_empty = True
        if v.tokens == 0 and v.interactions_in_round > checking_threshold:
            v.saw_empty = True
        if u.saw_empty or v.saw_empty:
            u.saw_empty = True
            v.saw_empty = True
        # Final estimate spreads from the leader once the loop terminates.
        if u.done or v.done:
            estimate = max(u.estimate, v.estimate)
            u.estimate = estimate
            v.estimate = estimate
            u.done = True
            v.done = True

    def _advance_leader(self, leader: TokenCountingState, ctx: InteractionContext) -> None:
        leader.leader_interactions += 1
        if leader.leader_interactions < self.round_length:
            return
        # Close the round: double on failure, terminate on success.
        if leader.saw_empty:
            leader.total_tokens *= 2
            leader.tokens += leader.total_tokens // 2
            leader.round_id += 1
            leader.saw_empty = False
            leader.leader_interactions = 0
            ctx.emit("doubling", m=leader.total_tokens)
        else:
            leader.done = True
            leader.estimate = float(max(1, leader.total_tokens).bit_length() - 1)
            ctx.emit("terminated", estimate=leader.estimate)

    # ---------------------------------------------------------------- outputs

    def output(self, state: TokenCountingState) -> float:
        """The agent's current estimate of ``log2 n`` (0.0 until it learns one)."""
        return state.estimate

    def has_converged(self, population: Population) -> bool:
        """Whether every agent has learned a final estimate."""
        return all(state.done for state in population.states())

    def memory_bits(self, state: TokenCountingState) -> int:
        return (
            max(1, int(state.tokens).bit_length())
            + max(1, int(state.total_tokens).bit_length())
            + max(1, int(state.round_id).bit_length())
            + max(1, int(state.leader_interactions).bit_length())
            + 3
        )

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "round_length": self.round_length}
