"""Robust detection protocol (Alistarh, Dudek, Kosowski, Soloveichik, Uznanski 2017).

The *detection* problem asks every agent to learn whether a designated
*source* agent is present in the population.  The protocol uses the rule

    (u, v) -> (min{u + 1, v + 1}, min{u + 1, v + 1})

for ordinary agents, while source agents never change their state and stay
at zero.  If no source is present, the minimum value in the population grows
without bound and crossing a threshold of ``Omega(log n)`` signals "no
source" w.h.p.; if a source is present, low values keep re-propagating from
the source and all agents stay below the threshold.

The Doty–Eftekhari dynamic size counting baseline (our comparison protocol,
:mod:`repro.protocols.doty_eftekhari`) uses detection on the first missing
GRV value to notice that its estimate has become stale, which is why this
substrate is part of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["DetectionState", "DetectionProtocol"]


@dataclass
class DetectionState:
    """State of an agent running the detection protocol.

    Attributes
    ----------
    value:
        The countdown-from-source value; 0 for source agents.
    is_source:
        Whether the agent is a source.  Sources never change their value.
    """

    value: int = 0
    is_source: bool = False

    def copy(self) -> "DetectionState":
        return DetectionState(value=self.value, is_source=self.is_source)


class DetectionProtocol(Protocol[DetectionState]):
    """Two-way robust detection with a configurable alarm threshold.

    Parameters
    ----------
    threshold:
        Value above which an agent outputs "no source present".  The paper
        of Alistarh et al. shows a threshold of ``c * log n`` suffices; since
        our protocol is uniform we leave the threshold as an explicit
        parameter and the experiments derive it from the population size
        under test.
    source_fraction:
        Probability that a *newly added* agent is a source.  The default of
        0 adds only non-source agents; experiments designate sources
        explicitly by editing the initial configuration.
    """

    name = "detection"

    def __init__(self, threshold: int = 0, source_fraction: float = 0.0) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if not 0.0 <= source_fraction <= 1.0:
            raise ValueError(f"source_fraction must lie in [0, 1], got {source_fraction}")
        self.threshold = int(threshold)
        self.source_fraction = float(source_fraction)

    def initial_state(self, rng: RandomSource) -> DetectionState:
        is_source = self.source_fraction > 0 and rng.biased_coin(self.source_fraction)
        return DetectionState(value=0, is_source=is_source)

    def interact(
        self, u: DetectionState, v: DetectionState, ctx: InteractionContext
    ) -> tuple[DetectionState, DetectionState]:
        joint = min(u.value + 1, v.value + 1)
        if not u.is_source:
            u.value = joint
        if not v.is_source:
            v.value = joint
        return u, v

    def output(self, state: DetectionState) -> bool:
        """``True`` when the agent believes a source is present."""
        if state.is_source:
            return True
        return state.value <= self.threshold if self.threshold > 0 else True

    def detects_absence(self, state: DetectionState) -> bool:
        """Convenience inverse of :meth:`output` ("no source present")."""
        return not self.output(state)

    def memory_bits(self, state: DetectionState) -> int:
        return max(1, int(state.value).bit_length()) + 1

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "threshold": self.threshold,
            "source_fraction": self.source_fraction,
        }
