"""Majority payload protocols.

The motivation for size counting in the paper is *composition*: modern
efficient population protocols (majority, leader election, plurality
consensus) are non-uniform — they need an estimate of ``log n`` to size
their phase clocks.  A dynamic size counting protocol turns them into
dynamic protocols.

This module provides two majority protocols used by the composition example
and tests:

* :class:`ApproximateMajority` — the classic 3-state protocol (Angluin et
  al.); uniform, needs no size estimate, converges fast but can fail when
  the initial gap is small.  It serves as the uniform reference payload.
* :class:`PhasedMajority` — a simple phase-clocked cancellation/duplication
  majority in the style of the ``O(log n)``-state exact protocols: opinions
  carry a weight exponent, a phase clock (driven externally by the size
  estimate) alternates cancellation and doubling phases.  It is non-uniform
  — exactly the kind of payload the paper's protocol is designed to drive —
  and :mod:`repro.core.composition` wires it to the dynamic size estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["ApproximateMajority", "PhasedMajorityState", "PhasedMajority"]


class ApproximateMajority(Protocol[str]):
    """Three-state approximate majority (states ``"A"``, ``"B"``, ``"U"``).

    Transitions: an opinionated initiator converts an undecided responder;
    two opposite opinions turn the responder undecided.  Converges to a
    consensus on the initial majority opinion w.h.p. when the initial gap is
    ``Omega(sqrt(n log n))``.
    """

    name = "approximate-majority"

    A = "A"
    B = "B"
    UNDECIDED = "U"

    def __init__(self, initial_opinion: str = "U") -> None:
        if initial_opinion not in (self.A, self.B, self.UNDECIDED):
            raise ValueError(f"invalid initial opinion {initial_opinion!r}")
        self.initial_opinion = initial_opinion

    def initial_state(self, rng: RandomSource) -> str:
        return self.initial_opinion

    def interact(self, u: str, v: str, ctx: InteractionContext) -> tuple[str, str]:
        if u == self.UNDECIDED or v == self.UNDECIDED or u == v:
            # An opinionated agent recruits an undecided one (either role).
            if u != self.UNDECIDED and v == self.UNDECIDED:
                return u, u
            if v != self.UNDECIDED and u == self.UNDECIDED:
                return v, v
            return u, v
        # Opposite opinions: the responder becomes undecided.
        return u, self.UNDECIDED

    def output(self, state: str) -> str:
        return state

    def memory_bits(self, state: str) -> int:
        return 2

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__}


@dataclass
class PhasedMajorityState:
    """State of the phase-clocked majority payload.

    Attributes
    ----------
    opinion:
        ``+1`` (A), ``-1`` (B) or ``0`` (neutral / cancelled).
    exponent:
        Weight exponent; an agent with opinion ``o`` and exponent ``e``
        represents ``o * 2^-e`` units of initial advantage.
    phase:
        Index of the clock phase the agent believes is current; phases
        alternate between cancellation (even) and doubling (odd).
    """

    opinion: int = 0
    exponent: int = 0
    phase: int = 0

    def copy(self) -> "PhasedMajorityState":
        return PhasedMajorityState(
            opinion=self.opinion, exponent=self.exponent, phase=self.phase
        )


class PhasedMajority(Protocol[PhasedMajorityState]):
    """Cancellation / doubling majority paced by an external phase signal.

    The protocol itself does not advance phases: the composition layer
    (:class:`repro.core.composition.ComposedProtocol`) bumps the ``phase``
    of an agent whenever the driving phase clock ticks for that agent.  The
    per-interaction rules are

    * **cancellation** (even phase): two opposite opinions with equal
      exponent cancel to neutral;
    * **doubling** (odd phase): an opinionated agent splits its weight with
      a neutral agent by increasing both exponents;
    * neutral agents always adopt the opinion *sign* of higher-weight
      neighbours for output purposes (tie-broken towards ``+1``).

    Parameters
    ----------
    max_exponent:
        Cap on the weight exponent, which bounds the state space to
        ``O(log n)`` states when set to ``Theta(log n)``.
    """

    name = "phased-majority"

    def __init__(self, max_exponent: int = 30) -> None:
        if max_exponent < 1:
            raise ValueError(f"max_exponent must be positive, got {max_exponent}")
        self.max_exponent = int(max_exponent)

    def initial_state(self, rng: RandomSource) -> PhasedMajorityState:
        return PhasedMajorityState()

    def interact(
        self, u: PhasedMajorityState, v: PhasedMajorityState, ctx: InteractionContext
    ) -> tuple[PhasedMajorityState, PhasedMajorityState]:
        # Agents adopt the newest phase they observe (the clock signal itself
        # is delivered by the composition layer; here we only propagate it).
        newest = max(u.phase, v.phase)
        u.phase = newest
        v.phase = newest

        if newest % 2 == 0:
            self._cancellation(u, v)
        else:
            self._doubling(u, v)
        return u, v

    @staticmethod
    def _cancellation(u: PhasedMajorityState, v: PhasedMajorityState) -> None:
        if (
            u.opinion != 0
            and v.opinion != 0
            and u.opinion == -v.opinion
            and u.exponent == v.exponent
        ):
            u.opinion = 0
            v.opinion = 0

    def _doubling(self, u: PhasedMajorityState, v: PhasedMajorityState) -> None:
        if u.opinion != 0 and v.opinion == 0 and u.exponent < self.max_exponent:
            u.exponent += 1
            v.opinion = u.opinion
            v.exponent = u.exponent
        elif v.opinion != 0 and u.opinion == 0 and v.exponent < self.max_exponent:
            v.exponent += 1
            u.opinion = v.opinion
            u.exponent = v.exponent

    def advance_phase(self, state: PhasedMajorityState) -> PhasedMajorityState:
        """Advance the agent's phase by one (called on clock ticks)."""
        state.phase += 1
        return state

    def output(self, state: PhasedMajorityState) -> int:
        """The agent's current opinion sign (+1, -1, or 0 if neutral)."""
        return state.opinion

    def memory_bits(self, state: PhasedMajorityState) -> int:
        return (
            2
            + max(1, int(state.exponent).bit_length())
            + max(1, int(state.phase).bit_length())
        )

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "max_exponent": self.max_exponent}
