"""Counts-level kernels for the toolbox protocols.

Multiset (count-vector) counterparts of :mod:`repro.protocols.vectorized`
for the :class:`repro.engine.counts_engine.CountsSimulator`: epidemics,
junta election and approximate majority re-expressed on interaction-count
cells, so they scale to populations of 10^7-10^9 agents.

These protocols have tiny, fixed state lattices, so the kernels are mostly
bookkeeping; the only randomness beyond the engine's pair sampling is the
junta protocol's coin flips, which become one binomial split per climbing
cell.  The two-way kernels (infection, junta, majority) rely on the
engine's without-replacement pairing: all interactions of a sub-batch
touch disjoint agents, which is exactly what lets both endpoint updates
apply at the count level without write conflicts.

The mapping from protocol classes to these kernels lives in
:mod:`repro.engine.registry` next to the vectorized registrations.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.engine.counts_engine import CountsState, PackedCountsKernel
from repro.engine.errors import ConfigurationError
from repro.engine.rng import RandomSource
from repro.protocols.majority import ApproximateMajority

__all__ = [
    "MaxEpidemicCountsKernel",
    "InfectionEpidemicCountsKernel",
    "JuntaElectionCountsKernel",
    "ApproximateMajorityCountsKernel",
]

#: Default bound (exclusive) on the spread value of the max epidemic: the
#: seeded peaks of the figures stay far below it, and a single ~2^21 field
#: packs trivially.
MAX_EPIDEMIC_VALUE_CAP = 2**21


def _single_state(
    kernel: PackedCountsKernel, n: int, values: Mapping[str, int]
) -> CountsState:
    columns = {
        name: np.array([values[name]], dtype=np.int64) for name, _ in kernel.fields
    }
    return kernel.state_from_columns(columns, np.array([n], dtype=np.int64))


class MaxEpidemicCountsKernel(PackedCountsKernel):
    """Max-propagation epidemic on counts: ``u' = max(u, v)``.

    Mirrors :class:`repro.protocols.vectorized.VectorizedMaxEpidemic`
    restricted to integer values (the counts engine enumerates integer
    lattices; every workload in this repo spreads integer peaks).
    """

    name = "counts-max-epidemic"

    def __init__(
        self,
        initial_value: int = 0,
        one_way: bool = True,
        value_cap: int = MAX_EPIDEMIC_VALUE_CAP,
    ) -> None:
        if not 0 <= int(initial_value) < value_cap:
            raise ConfigurationError(
                f"initial_value must lie in [0, {value_cap}), got {initial_value}"
            )
        self.initial_value = int(initial_value)
        self.one_way = bool(one_way)
        self.two_way = not self.one_way
        self.fields = (("value", int(value_cap)),)
        self._check_packing()

    def initial_state(self, n: int, rng: RandomSource) -> CountsState:
        return _single_state(self, n, {"value": self.initial_value})

    def output_values(self, state: CountsState) -> np.ndarray:
        return state.columns["value"].astype(np.float64)

    def transition(self, u, v, multiplicity, rng):
        peak = {"value": np.maximum(u["value"], v["value"])}
        if self.two_way:
            return peak, multiplicity, peak, multiplicity
        return peak, multiplicity, None, None

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_value": self.initial_value,
            "one_way": self.one_way,
        }


class InfectionEpidemicCountsKernel(PackedCountsKernel):
    """Binary SI epidemic on counts (0 = susceptible, 1 = infected).

    Mirrors :class:`repro.protocols.vectorized.VectorizedInfectionEpidemic`.
    """

    name = "counts-infection-epidemic"
    fields = (("infected", 2),)

    def __init__(self, one_way: bool = False) -> None:
        self.one_way = bool(one_way)
        self.two_way = not self.one_way
        self._check_packing()

    def initial_state(self, n: int, rng: RandomSource) -> CountsState:
        return _single_state(self, n, {"infected": 0})

    def output_values(self, state: CountsState) -> np.ndarray:
        return state.columns["infected"].astype(np.float64)

    def transition(self, u, v, multiplicity, rng):
        both = {"infected": np.maximum(u["infected"], v["infected"])}
        if self.two_way:
            return both, multiplicity, both, multiplicity
        return both, multiplicity, None, None

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "one_way": self.one_way}


class JuntaElectionCountsKernel(PackedCountsKernel):
    """Coin-level junta election on counts.

    Mirrors :class:`repro.protocols.vectorized.VectorizedJuntaElection`.
    The initiator's coin flips become one binomial split per climbing cell
    (heads keep climbing — and step up below the cap — tails drop out);
    the epidemic ``max_seen`` merge writes both endpoints, so the kernel is
    two-way.
    """

    name = "counts-junta-election"
    two_way = True

    def __init__(self, max_level: int = 60) -> None:
        if max_level < 1:
            raise ConfigurationError(f"max_level must be positive, got {max_level}")
        self.max_level = int(max_level)
        self.fields = (
            ("level", self.max_level + 1),
            ("climbing", 2),
            ("max_seen", self.max_level + 1),
        )
        self._check_packing()

    def initial_state(self, n: int, rng: RandomSource) -> CountsState:
        return _single_state(self, n, {"level": 0, "climbing": 1, "max_seen": 0})

    def output_values(self, state: CountsState) -> np.ndarray:
        member = (state.columns["climbing"] == 0) & (
            state.columns["level"] >= state.columns["max_seen"]
        )
        return member.astype(np.float64)

    def transition(self, u, v, multiplicity, rng):
        level, climbing, seen = u["level"], u["climbing"], u["max_seen"]
        v_level, v_climbing, v_seen = v["level"], v["climbing"], v["max_seen"]

        heads = np.zeros_like(multiplicity)
        climbers = np.flatnonzero(climbing == 1)
        if climbers.size:
            heads[climbers] = rng.generator.binomial(multiplicity[climbers], 0.5)
        tails = multiplicity - heads

        # Heads below the cap climb and keep climbing; heads at the cap and
        # all tails stop (non-climbing cells carry their whole multiplicity
        # through the tails branch with ``climbing`` already 0).
        up = (climbing == 1) & (level < self.max_level)
        heads_level = np.where(up, level + 1, level)
        heads_climbing = np.where(up, 1, 0)
        top_heads = np.maximum(
            np.maximum(heads_level, seen), np.maximum(v_level, v_seen)
        )
        top_tails = np.maximum(np.maximum(level, seen), np.maximum(v_level, v_seen))

        u_fields = {
            "level": np.concatenate([heads_level, level]),
            "climbing": np.concatenate([heads_climbing, np.zeros_like(level)]),
            "max_seen": np.concatenate([top_heads, top_tails]),
        }
        v_fields = {
            "level": np.concatenate([v_level, v_level]),
            "climbing": np.concatenate([v_climbing, v_climbing]),
            "max_seen": np.concatenate([top_heads, top_tails]),
        }
        mult = np.concatenate([heads, tails])
        return u_fields, mult, v_fields, mult

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "max_level": self.max_level}


class ApproximateMajorityCountsKernel(PackedCountsKernel):
    """Three-state approximate majority on counts.

    Mirrors :class:`repro.protocols.vectorized.VectorizedApproximateMajority`.
    The packed lattice stores ``code = opinion + 1`` (the engine's keys are
    non-negative); outputs and the per-agent ``opinion`` plane keep the
    scalar protocol's ``+1 / -1 / 0`` encoding.
    """

    name = "counts-approximate-majority"
    two_way = True
    fields = (("opinion", 3),)

    def __init__(self, initial_opinion: str = ApproximateMajority.UNDECIDED) -> None:
        codes = {
            ApproximateMajority.A: 1,
            ApproximateMajority.B: -1,
            ApproximateMajority.UNDECIDED: 0,
        }
        if initial_opinion not in codes:
            raise ConfigurationError(f"invalid initial opinion {initial_opinion!r}")
        self.initial_opinion = initial_opinion
        self._initial_code = codes[initial_opinion] + 1
        self._check_packing()

    def initial_state(self, n: int, rng: RandomSource) -> CountsState:
        return _single_state(self, n, {"opinion": self._initial_code})

    def state_from_arrays(self, arrays: Mapping[str, np.ndarray]) -> CountsState:
        opinion = np.asarray(arrays["opinion"], dtype=np.int64)
        return super().state_from_arrays({"opinion": opinion + 1})

    def state_from_opinion_counts(
        self, a: int, b: int, undecided: int = 0
    ) -> CountsState:
        """Counts state for a given initial (A, B, undecided) split."""
        if min(a, b, undecided) < 0 or a + b + undecided < 2:
            raise ConfigurationError(
                "opinion counts must be non-negative and sum to >= 2, "
                f"got a={a}, b={b}, undecided={undecided}"
            )
        columns = {"opinion": np.array([2, 0, 1], dtype=np.int64)}
        counts = np.array([a, b, undecided], dtype=np.int64)
        return self.state_from_columns(columns, counts)

    def output_values(self, state: CountsState) -> np.ndarray:
        return (state.columns["opinion"] - 1).astype(np.float64)

    def transition(self, u, v, multiplicity, rng):
        u_op = u["opinion"] - 1
        v_op = v["opinion"] - 1
        recruit_u = (u_op == 0) & (v_op != 0)
        recruit_v = (v_op == 0) & (u_op != 0)
        cancel = (u_op != 0) & (v_op != 0) & (u_op == -v_op)
        new_u = np.where(recruit_u, v_op, u_op)
        new_v = np.where(recruit_v, u_op, np.where(cancel, 0, v_op))
        return (
            {"opinion": new_u + 1},
            multiplicity,
            {"opinion": new_v + 1},
            multiplicity,
        )

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_opinion": self.initial_opinion,
        }
