"""Epidemic (broadcast / max-propagation) protocols.

Epidemics are the most fundamental building block used by the paper:
information spreads from one agent to all ``n`` agents in ``O(log n)``
parallel time w.h.p. (Lemma 4.2).  The dynamic size counting protocol uses
epidemics twice per round — to spread the maximum GRV and to propagate the
``reset -> exchange`` phase transition.

Two variants are provided:

* :class:`MaxEpidemic` — agents store a value and adopt the maximum of the
  two values in every interaction.  The *one-way* flavour
  ``(u, v) -> (max{u, v}, v)`` is the exact rule analysed in Lemma 4.2;
  the *two-way* flavour updates both agents.
* :class:`InfectionEpidemic` — the classic binary SI epidemic (0 = susceptible,
  1 = infected) used to measure infection times in the engine-validation
  tests.
"""

from __future__ import annotations

from typing import Any

from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.rng import RandomSource

__all__ = ["MaxEpidemic", "InfectionEpidemic"]


class MaxEpidemic(Protocol[int]):
    """Max-propagation epidemic over integer values.

    Parameters
    ----------
    initial_value:
        Value assigned to newly added agents (0 by default).
    one_way:
        If ``True`` (default) only the initiator adopts the maximum,
        matching the one-way rule ``(u, v) -> (max{u, v}, v)`` from the
        paper's analysis.  If ``False`` both agents adopt the maximum,
        which converges roughly twice as fast.
    """

    name = "max-epidemic"

    def __init__(self, initial_value: int = 0, one_way: bool = True) -> None:
        self.initial_value = int(initial_value)
        self.one_way = bool(one_way)

    def initial_state(self, rng: RandomSource) -> int:
        return self.initial_value

    def interact(self, u: int, v: int, ctx: InteractionContext) -> tuple[int, int]:
        peak = u if u >= v else v
        if self.one_way:
            return peak, v
        return peak, peak

    def memory_bits(self, state: int) -> int:
        return max(1, int(state).bit_length())

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "initial_value": self.initial_value,
            "one_way": self.one_way,
        }


class InfectionEpidemic(Protocol[int]):
    """Binary SI epidemic: infected agents (state 1) infect susceptible ones.

    Both one-way (only the initiator can become infected) and two-way
    variants are supported.  Used to validate the engine against the
    textbook ``Theta(n log n)`` interaction bound (Lemma 4.2).
    """

    name = "infection-epidemic"

    SUSCEPTIBLE = 0
    INFECTED = 1

    def __init__(self, one_way: bool = False) -> None:
        self.one_way = bool(one_way)

    def initial_state(self, rng: RandomSource) -> int:
        return self.SUSCEPTIBLE

    def interact(self, u: int, v: int, ctx: InteractionContext) -> tuple[int, int]:
        if self.one_way:
            if v == self.INFECTED and u == self.SUSCEPTIBLE:
                ctx.emit("infected", agent_id=ctx.initiator_id)
                return self.INFECTED, v
            return u, v
        if u == self.INFECTED or v == self.INFECTED:
            if u == self.SUSCEPTIBLE:
                ctx.emit("infected", agent_id=ctx.initiator_id)
            if v == self.SUSCEPTIBLE:
                ctx.emit("infected", agent_id=ctx.responder_id)
            return self.INFECTED, self.INFECTED
        return u, v

    def memory_bits(self, state: int) -> int:
        return 1

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "class": type(self).__name__, "one_way": self.one_way}
