"""Geometric random variables (GRVs) and synthetic coins.

The protocol estimates the population size from the maximum of geometrically
distributed random variables: the maximum of ``n`` independent Geom(1/2)
samples is ``Theta(log n)`` w.h.p. (Lemma 4.1).  Every reset draws
``GRV(k)`` — the maximum of ``k`` fresh samples (Algorithm 3 in Appendix A).

Agents in the original population protocol model have no randomness of their
own; the paper (following Alistarh et al. 2017) notes that GRV generation
can be spread over multiple interactions using *synthetic coins* extracted
from the randomness of the scheduler: an agent flips one "coin" per
interaction by looking at, e.g., the low-order bit of its partner's
interaction parity.  :class:`SyntheticCoinGrvGenerator` implements this
incremental generation so the assumption can be validated empirically; the
protocol classes default to the direct generator, exactly as the paper's
analysis assumes one GRV per reset for simplicity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.rng import RandomSource

__all__ = [
    "grv",
    "grv_maximum",
    "SyntheticCoinGrvGenerator",
]


def grv(rng: RandomSource) -> int:
    """Draw a single Geom(1/2) sample: coin flips until the first heads."""
    return rng.geometric()


def grv_maximum(rng: RandomSource, k: int) -> int:
    """``GRV(k)`` from Algorithm 3: the maximum of ``k`` Geom(1/2) samples.

    Returns at least 1 (the algorithm initialises its running maximum to 1).
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    return rng.geometric_max(k)


@dataclass
class SyntheticCoinGrvGenerator:
    """Incremental GRV generation from one synthetic coin per interaction.

    The generator is fed one boolean *coin* per interaction (in the paper's
    setting this bit is extracted from the scheduler's randomness, e.g.
    whether the partner's interaction count is odd).  It reproduces
    Algorithm 3 one flip at a time: the current run of heads is extended on
    heads and finalised on tails, and after ``k`` finalised runs the call
    reports the maximum run length (+1, matching Geom counting of flips
    including the terminating toss).

    Attributes
    ----------
    k:
        Number of geometric samples whose maximum is produced.
    """

    k: int
    _current_run: int = 1
    _completed: int = 0
    _maximum: int = 1
    _result: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")

    @property
    def ready(self) -> bool:
        """Whether the maximum of ``k`` samples has been fully generated."""
        return self._result is not None

    @property
    def value(self) -> int:
        """The generated ``GRV(k)`` value; raises if not :attr:`ready` yet."""
        if self._result is None:
            raise RuntimeError("GRV generation has not finished yet")
        return self._result

    def feed(self, coin: bool) -> int | None:
        """Consume one synthetic coin flip.

        Returns the finished ``GRV(k)`` value the first time the generator
        completes, and ``None`` while generation is still in progress (or on
        every call after completion).
        """
        if self._result is not None:
            return None
        if coin:
            self._current_run += 1
            return None
        # Tails terminates the current geometric sample.
        if self._current_run > self._maximum:
            self._maximum = self._current_run
        self._completed += 1
        self._current_run = 1
        if self._completed >= self.k:
            self._result = self._maximum
            return self._result
        return None

    def reset(self) -> None:
        """Restart generation from scratch (used after the value is consumed)."""
        self._current_run = 1
        self._completed = 0
        self._maximum = 1
        self._result = None
