"""The paper's core contribution: dynamic size counting and the uniform phase clock."""

from repro.core.composition import ComposedProtocol, ComposedState
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.grv import SyntheticCoinGrvGenerator, grv, grv_maximum
from repro.core.params import ProtocolParameters, empirical_parameters, theory_parameters
from repro.core.phase_clock import UniformPhaseClock
from repro.core.simplified import SimplifiedDynamicSizeCounting
from repro.core.state import CountingState, Phase, classify_phase, state_memory_bits
from repro.core.vectorized import VectorizedDynamicCounting

__all__ = [
    "ComposedProtocol",
    "ComposedState",
    "CountingState",
    "DynamicSizeCounting",
    "Phase",
    "ProtocolParameters",
    "SimplifiedDynamicSizeCounting",
    "SyntheticCoinGrvGenerator",
    "UniformPhaseClock",
    "VectorizedDynamicCounting",
    "classify_phase",
    "empirical_parameters",
    "grv",
    "grv_maximum",
    "state_memory_bits",
    "theory_parameters",
]
