"""Vectorised (batched) implementation of the dynamic size counting protocol.

The paper simulates populations of up to 10^6 agents for 5000 parallel time
steps — about 5 * 10^9 interactions, far beyond a pure-Python loop.  This
module provides a NumPy struct-of-arrays implementation of Algorithm 2 that
plugs into :class:`repro.engine.batch_engine.BatchedSimulator`: each parallel
time step draws ``n`` ordered interaction pairs and applies the transition
to all of them with responder states read at the start of the batch.

The vectorised transition mirrors :class:`repro.core.dynamic_counting.
DynamicSizeCounting` line by line (the comments reference the same Algorithm
2 line numbers).  It is an approximation of the sequential scheduler — see
the module docstring of :mod:`repro.engine.batch_engine` for the exact
semantics and ``tests/test_engine_equivalence.py`` for the statistical
cross-validation against the exact engine.

The same class also implements ``interact_one``, the exact single-pair
transition, so it runs unchanged on the exact
:class:`repro.engine.array_engine.ArraySimulator` — where it reproduces the
sequential engine's trajectory bit-for-bit under a shared seed.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.grv import grv_maximum
from repro.core.params import ProtocolParameters, empirical_parameters
from repro.engine.batch_engine import VectorizedProtocol, flat_state_view
from repro.engine.rng import RandomSource

__all__ = ["VectorizedDynamicCounting"]

#: Conservative bound on any value the inverse-CDF GRV sampler can return
#: (float64 uniforms cap its support around 60; doubled for headroom).  Used
#: to decide whether float32 state planes can represent every countdown
#: value exactly.
_GRV_VALUE_CAP = 128.0


class VectorizedDynamicCounting(VectorizedProtocol):
    """Struct-of-arrays Algorithm 2 for the batched engine.

    State arrays
    ------------
    ``max``          float64 — the (possibly overestimated) maximum GRV.
    ``last_max``     float64 — the trailing estimate.
    ``time``         float64 — the CHVP countdown.
    ``interactions`` int64   — interactions since the agent's last reset.
    ``resets``       int64   — cumulative reset count (tick counter; not part
                               of the protocol state, used by clock analysis).
    """

    name = "vectorized-dynamic-size-counting"

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params if params is not None else empirical_parameters()
        # The narrow float32 planes are only used while every state value —
        # including products of a tau constant with any plane value the
        # engine's narrowing guard admits (|v| <= 2^16) — stays inside
        # float32's exact-integer range (|v| < 2^24); beyond it the CHVP
        # countdown's -1 per interaction would be silently rounded away.
        # The paper's empirical constants pass easily; the theory presets
        # (tau1 = 1140k, overestimation = 20(k+1)) do not and fall back to
        # the initial_arrays dtypes (float64).
        max_tau = max(self.params.tau1, self.params.tau2, self.params.tau3)
        worst_time = max_tau * self.params.overestimation * _GRV_VALUE_CAP
        if worst_time > 2.0**23 or max_tau > _GRV_VALUE_CAP:
            self.ensemble_state_dtypes = None

    # ------------------------------------------------------------------ setup

    def initial_arrays(self, n: int, rng: RandomSource) -> dict[str, np.ndarray]:
        """Fresh agents: ``max = lastMax = 1``, ``time = tau_1``, ``interactions = 0``."""
        params = self.params
        return {
            "max": np.ones(n, dtype=np.float64),
            "last_max": np.ones(n, dtype=np.float64),
            "time": np.full(n, params.tau1, dtype=np.float64),
            "interactions": np.zeros(n, dtype=np.int64),
            "resets": np.zeros(n, dtype=np.int64),
        }

    def initial_arrays_with_estimate(self, n: int, estimate: float) -> dict[str, np.ndarray]:
        """Population initialised with a fixed estimate (the Fig. 5 workload)."""
        if estimate <= 0:
            raise ValueError(f"estimate must be positive, got {estimate}")
        params = self.params
        stored = estimate * params.overestimation
        return {
            "max": np.full(n, stored, dtype=np.float64),
            "last_max": np.full(n, stored, dtype=np.float64),
            "time": np.full(n, params.tau1 * stored, dtype=np.float64),
            "interactions": np.zeros(n, dtype=np.int64),
            "resets": np.zeros(n, dtype=np.int64),
        }

    # -------------------------------------------------------------- sampling

    def _sample_grv_max(self, rng: RandomSource, count: int) -> np.ndarray:
        """Maximum of ``grv_samples`` Geom(1/2) draws, for ``count`` agents at once."""
        if count == 0:
            return np.empty(0, dtype=np.float64)
        k = self.params.grv_samples
        samples = rng.generator.geometric(0.5, size=(count, k))
        return samples.max(axis=1).astype(np.float64)

    # ------------------------------------------------------------ interaction

    def _transition(
        self,
        u_max: np.ndarray,
        u_last: np.ndarray,
        u_time: np.ndarray,
        u_inter: np.ndarray,
        v_max: np.ndarray,
        v_last: np.ndarray,
        v_time: np.ndarray,
        rng: RandomSource,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Algorithm 2 on gathered initiator/responder state of any shape.

        Shared by :meth:`interact_batch` (1-D batches) and
        :meth:`interact_ensemble` (2-D ``(trials, batch)`` stacks) — every
        operation is element-wise apart from the masked GRV draws, which
        flatten through boolean indexing.  Returns the new initiator state
        plus the reset mask (for the tick counters).
        """
        params = self.params
        tau1, tau2, tau3 = params.tau1, params.tau2, params.tau3
        over = params.overestimation

        u_scale = np.maximum(u_max, u_last)
        v_scale = np.maximum(v_max, v_last)
        u_exchange = u_time >= tau2 * u_scale
        u_reset_phase = u_time < tau3 * u_scale
        v_exchange = v_time >= tau2 * v_scale
        v_reset_phase = v_time < tau3 * v_scale

        # Lines 2-6: wrap-around / reset->exchange / hold->exchange resets.
        reset_mask = (
            (u_time <= 0)
            | (u_reset_phase & v_exchange)
            | (~u_exchange & (u_max != v_max))
        )
        fresh = np.zeros(u_max.shape, dtype=np.float64)
        fresh[reset_mask] = over * self._sample_grv_max(rng, int(reset_mask.sum()))
        new_time = np.where(reset_mask, tau1 * np.maximum(u_max, fresh), u_time)
        new_last = np.where(reset_mask, u_max, u_last)
        new_max = np.where(reset_mask, fresh, u_max)
        new_inter = np.where(reset_mask, 0, u_inter)

        # Lines 7-10: backup GRV generation.
        backup_due = new_inter > params.tau_prime * np.maximum(new_max, new_last)
        backup_raw = np.zeros(u_max.shape, dtype=np.float64)
        backup_raw[backup_due] = self._sample_grv_max(rng, int(backup_due.sum()))
        new_inter = np.where(backup_due, 0, new_inter)
        adopt_backup = backup_due & (backup_raw > new_max)
        boosted = over * backup_raw
        new_time = np.where(adopt_backup, tau1 * boosted, new_time)
        new_max = np.where(adopt_backup, boosted, new_max)

        # Lines 11-12: adopt a larger maximum within the exchange phase.
        u_exchange_now = new_time >= tau2 * np.maximum(new_max, new_last)
        adopt = u_exchange_now & v_exchange & (new_max < v_max)
        new_time = np.where(adopt, tau1 * v_max, new_time)
        new_max = np.where(adopt, v_max, new_max)
        new_last = np.where(adopt, v_last, new_last)

        # Lines 13-14: exchange the trailing maximum.
        u_exchange_final = new_time >= tau2 * np.maximum(new_max, new_last)
        share_last = (new_max == v_max) & ~(u_exchange_final & v_reset_phase)
        new_last = np.where(share_last, np.maximum(new_last, v_last), new_last)

        # Line 15: CHVP countdown plus the interaction counter.
        new_time = np.maximum(new_time, v_time) - 1
        new_inter = new_inter + 1
        return new_max, new_last, new_time, new_inter, reset_mask

    def interact_batch(
        self,
        arrays: dict[str, np.ndarray],
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: RandomSource,
    ) -> None:
        # Snapshot of both participants at the start of the batch (fancy
        # indexing already copies, so the gathers need no extra .copy()).
        new_max, new_last, new_time, new_inter, reset_mask = self._transition(
            arrays["max"][initiators],
            arrays["last_max"][initiators],
            arrays["time"][initiators],
            arrays["interactions"][initiators],
            arrays["max"][responders],
            arrays["last_max"][responders],
            arrays["time"][responders],
            rng,
        )

        # Write back; duplicate initiators within one batch resolve to the
        # last interaction (an accepted artefact of the batched engine).
        arrays["max"][initiators] = new_max
        arrays["last_max"][initiators] = new_last
        arrays["time"][initiators] = new_time
        arrays["interactions"][initiators] = new_inter
        # Count effective resets: duplicate initiators within one batch
        # resolve to a single surviving state, so they are one reset.
        np.add.at(arrays["resets"], np.unique(initiators[reset_mask]), 1)

    #: Ensemble state is held in narrow planes: with integer-valued protocol
    #: constants (the paper's presets) every ``max`` / ``lastMax`` / ``time``
    #: value is exactly representable in float32 (magnitudes stay far below
    #: 2^24), so the stacked hot loop halves its memory traffic without
    #: changing a single trajectory decision.  ``resets`` keeps the dtype of
    #: :meth:`initial_arrays`.
    ensemble_state_dtypes = {
        "max": np.dtype(np.float32),
        "last_max": np.dtype(np.float32),
        "time": np.dtype(np.float32),
        "interactions": np.dtype(np.int32),
    }

    def interact_ensemble(
        self,
        arrays: dict[str, np.ndarray],
        initiators: np.ndarray,
        responders: np.ndarray,
        rng: RandomSource,
    ) -> None:
        """Fast path: one transition over all trials' batches at once.

        ``arrays`` holds ``(trials, n)`` stacks and the index matrices are
        ``(trials, batch)``; row ``t`` follows exactly the
        :meth:`interact_batch` semantics within trial ``t``.  The kernel is
        tuned for the stacked hot loop rather than sharing
        :meth:`_transition`:

        * flat-coordinate gathers/scatters (``trial * n + slot``) instead
          of broadcast 2-D fancy indexing;
        * the rare branches — resets, backup GRVs, maximum adoption — are
          applied on compressed lane indices and the phase threshold
          ``tau2 * scale`` is patched at those lanes instead of being
          recomputed full-width, so in the converged regime they cost next
          to nothing;
        * fresh GRV maxima come from the one-uniform-per-sample inverse
          CDF (:meth:`repro.engine.rng.RandomSource.geometric_max_array`)
          rather than ``k`` geometric draws per resetting agent.

        Same distribution as :meth:`interact_batch` everywhere, but a
        different slice of the random stream (see
        ``tests/test_ensemble_engine.py`` for the statistical
        cross-validation).
        """
        params = self.params
        tau1, tau2, tau3 = params.tau1, params.tau2, params.tau3
        over = params.overestimation
        grv_k = params.grv_samples

        trials, n = arrays["max"].shape
        offsets = (np.arange(trials, dtype=initiators.dtype) * n)[:, None]
        flat_u = np.add(initiators, offsets).ravel()
        flat_v = np.add(responders, offsets).ravel()
        max_flat = flat_state_view(arrays["max"])
        last_flat = flat_state_view(arrays["last_max"])
        time_flat = flat_state_view(arrays["time"])
        inter_flat = flat_state_view(arrays["interactions"])
        dtype = max_flat.dtype

        # Snapshot of both participants at the start of the sub-batch.
        u_max = np.take(max_flat, flat_u)
        u_last = np.take(last_flat, flat_u)
        u_time = np.take(time_flat, flat_u)
        u_inter = np.take(inter_flat, flat_u)
        v_max = np.take(max_flat, flat_v)
        v_last = np.take(last_flat, flat_v)
        v_time = np.take(time_flat, flat_v)

        v_scale = np.maximum(v_max, v_last)
        v_exchange = v_time >= tau2 * v_scale
        np.multiply(v_scale, tau3, out=v_scale)
        v_reset_phase = v_time < v_scale

        # Lines 2-6: wrap-around / reset->exchange / hold->exchange resets
        # (rare once converged -> compressed lanes).  ``u_t2`` (the exchange
        # threshold tau2 * max(max, lastMax)) is kept patched through the
        # rare stages below and reused by every later phase test.
        u_t2 = np.maximum(u_max, u_last)
        in_reset_phase = u_time < tau3 * u_t2
        np.multiply(u_t2, tau2, out=u_t2)
        reset = u_time <= 0
        in_reset_phase &= v_exchange
        reset |= in_reset_phase
        holding = u_time < u_t2
        holding &= u_max != v_max
        reset |= holding
        reset_lanes = np.flatnonzero(reset)
        if reset_lanes.size:
            fresh = (over * rng.geometric_max_array(grv_k, reset_lanes.size)).astype(
                dtype, copy=False
            )
            old_max = u_max[reset_lanes]
            peak = np.maximum(old_max, fresh)
            u_time[reset_lanes] = tau1 * peak
            u_last[reset_lanes] = old_max
            u_max[reset_lanes] = fresh
            u_inter[reset_lanes] = 0
            u_t2[reset_lanes] = tau2 * peak

        # Lines 7-10: backup GRV generation (rare).  The threshold
        # tau' * scale is tau' / tau2 times the maintained u_t2.
        backup_lanes = np.flatnonzero(u_inter > (params.tau_prime / tau2) * u_t2)
        if backup_lanes.size:
            backup = rng.geometric_max_array(grv_k, backup_lanes.size)
            u_inter[backup_lanes] = 0
            adopt_backup = backup > u_max[backup_lanes]
            boosted_lanes = backup_lanes[adopt_backup]
            if boosted_lanes.size:
                boosted = (over * backup[adopt_backup]).astype(dtype, copy=False)
                u_time[boosted_lanes] = tau1 * boosted
                u_max[boosted_lanes] = boosted
                u_t2[boosted_lanes] = tau2 * np.maximum(boosted, u_last[boosted_lanes])

        # Lines 11-12: adopt a larger maximum within the exchange phase.
        exchange = u_time >= u_t2
        adopt = exchange & v_exchange
        adopt &= u_max < v_max
        adopt_lanes = np.flatnonzero(adopt)
        if adopt_lanes.size:
            adopted = v_max[adopt_lanes]
            new_last = v_last[adopt_lanes]
            u_time[adopt_lanes] = tau1 * adopted
            u_max[adopt_lanes] = adopted
            u_last[adopt_lanes] = new_last
            u_t2[adopt_lanes] = tau2 * np.maximum(adopted, new_last)
            # Only the adopted lanes changed time/threshold since `exchange`
            # was computed; patch them instead of a full-width recompute.
            exchange[adopt_lanes] = u_time[adopt_lanes] >= u_t2[adopt_lanes]

        # Lines 13-14: exchange the trailing maximum (the common branch).
        share = u_max == v_max
        exchange &= v_reset_phase
        np.logical_not(exchange, out=exchange)
        share &= exchange
        np.maximum(u_last, v_last, out=u_last, where=share)

        # Line 15: CHVP countdown plus the interaction counter.
        np.maximum(u_time, v_time, out=u_time)
        u_time -= 1.0
        u_inter += 1

        # Write back; duplicate lanes resolve last-writer-wins, as on the
        # batched engine.
        max_flat[flat_u] = u_max
        last_flat[flat_u] = u_last
        time_flat[flat_u] = u_time
        inter_flat[flat_u] = u_inter

        # Count effective resets once per (trial, agent) slot, matching the
        # batched engine's unique-initiator semantics.  Sparse reset sets
        # dedupe through np.unique; dense ones (the warm-up storm) through
        # a flag plane.
        if reset_lanes.size:
            slots = flat_u[reset_lanes]
            resets_flat = flat_state_view(arrays["resets"])
            if slots.size * 8 < resets_flat.size:
                np.add.at(resets_flat, np.unique(slots), 1)
            else:
                flags = np.zeros(resets_flat.size, dtype=bool)
                flags[slots] = True
                resets_flat += flags

    # ------------------------------------------------------- exact transition

    def interact_one(
        self,
        arrays: dict[str, np.ndarray],
        initiator: int,
        responder: int,
        rng: RandomSource,
    ) -> None:
        """Single-pair Algorithm 2 transition for the exact array engine.

        Mirrors :meth:`repro.core.dynamic_counting.DynamicSizeCounting.
        interact` line by line, including the order of GRV draws, so that
        :class:`repro.engine.array_engine.ArraySimulator` reproduces the
        sequential engine's trajectory under a shared seed.
        """
        params = self.params
        tau1, tau2, tau3 = params.tau1, params.tau2, params.tau3
        u_max = float(arrays["max"][initiator])
        u_last = float(arrays["last_max"][initiator])
        u_time = float(arrays["time"][initiator])
        u_inter = int(arrays["interactions"][initiator])
        v_max = float(arrays["max"][responder])
        v_last = float(arrays["last_max"][responder])
        v_time = float(arrays["time"][responder])
        v_scale = max(v_max, v_last)
        v_exchange = v_time >= tau2 * v_scale
        v_reset = v_time < tau3 * v_scale

        # Lines 2-6: wrap-around / reset->exchange / hold->exchange resets.
        u_scale = max(u_max, u_last)
        u_exchange = u_time >= tau2 * u_scale
        u_reset = u_time < tau3 * u_scale
        if u_time <= 0 or (u_reset and v_exchange) or (not u_exchange and u_max != v_max):
            fresh = params.overestimate(grv_maximum(rng, params.grv_samples))
            u_time = tau1 * max(u_max, fresh)
            u_inter = 0
            u_last = u_max
            u_max = fresh
            arrays["resets"][initiator] += 1

        # Lines 7-10: backup GRV generation.
        if u_inter > params.backup_threshold(max(u_max, u_last)):
            u_inter = 0
            backup = grv_maximum(rng, params.grv_samples)
            if backup > u_max:
                boosted = params.overestimate(backup)
                u_time = tau1 * boosted
                u_max = boosted

        # Lines 11-12: adopt a larger maximum within the exchange phase.
        if u_time >= tau2 * max(u_max, u_last) and v_exchange and u_max < v_max:
            u_time = tau1 * v_max
            u_max = v_max
            u_last = v_last

        # Lines 13-14: exchange the trailing maximum.
        if u_max == v_max and not (u_time >= tau2 * max(u_max, u_last) and v_reset):
            u_last = max(u_last, v_last)

        # Line 15: CHVP countdown plus the interaction counter.
        u_time = max(u_time, v_time) - 1
        u_inter += 1

        arrays["max"][initiator] = u_max
        arrays["last_max"][initiator] = u_last
        arrays["time"][initiator] = u_time
        arrays["interactions"][initiator] = u_inter

    # ---------------------------------------------------------------- outputs

    def output_array(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Per-agent reported estimate of ``log2 n`` (Section 5 convention)."""
        return np.maximum(arrays["max"], arrays["last_max"]) / self.params.overestimation

    def tick_count_array(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Cumulative reset (tick) counts per agent."""
        return arrays["resets"]

    def phase_codes(self, arrays: dict[str, np.ndarray]) -> np.ndarray:
        """Per-agent phase codes: 0 = exchange, 1 = hold, 2 = reset."""
        params = self.params
        scale = np.maximum(arrays["max"], arrays["last_max"])
        time = arrays["time"]
        codes = np.full(len(time), 2, dtype=np.int8)
        codes[time >= params.tau3 * scale] = 1
        codes[time >= params.tau2 * scale] = 0
        return codes

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "params": self.params.describe(),
        }
