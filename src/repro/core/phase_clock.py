"""Uniform loosely-stabilizing phase clock (Theorem 2.2).

The dynamic size counting protocol *is* a phase clock: an agent receives a
signal (a clock tick) whenever it resets.  Theorem 2.2 states that once the
population holds estimates of ``Theta(log n)``, there is a sequence of times
``t_i`` such that every agent ticks exactly once inside every burst interval
``[t_i - c n log n, t_i + c n log n]`` and consecutive bursts are separated
by overlap intervals of length ``Theta(n log n)`` — for polynomially many
intervals.

:class:`UniformPhaseClock` wraps :class:`~repro.core.dynamic_counting.
DynamicSizeCounting` (or the simplified protocol) and exposes the clock
abstraction:

* it forwards the wrapped protocol's transition unchanged,
* it re-emits the protocol's ``"reset"`` events as ``"tick"`` events, and
* it offers hour/phase inspection helpers used by the synchronization
  analysis and by the composition layer that drives payload protocols.

The post-hoc extraction of burst and overlap intervals from recorded tick
events lives in :mod:`repro.analysis.synchronization`.
"""

from __future__ import annotations

from typing import Any

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import ProtocolParameters
from repro.core.state import CountingState, Phase, classify_phase
from repro.engine.protocol import InteractionContext, Protocol, ProtocolEvent
from repro.engine.population import Population
from repro.engine.rng import RandomSource

__all__ = ["UniformPhaseClock"]


class _TickRelay:
    """Event sink adapter that renames ``reset`` events to ``tick``.

    The wrapped counting protocol emits through the interaction context it
    is handed; the clock intercepts the context's sink so that downstream
    recorders see the clock-level vocabulary while everything else passes
    through unchanged.
    """

    __slots__ = ("_ctx",)

    def __init__(self, ctx: InteractionContext) -> None:
        self._ctx = ctx

    def __call__(self, event: ProtocolEvent) -> None:
        if event.kind == "reset":
            self._ctx.emit("tick", agent_id=event.agent_id, **event.data)
        else:
            self._ctx.emit(event.kind, agent_id=event.agent_id, **event.data)


class UniformPhaseClock(Protocol[CountingState]):
    """Phase clock view of the dynamic size counting protocol.

    Parameters
    ----------
    counting:
        The counting protocol to wrap.  Defaults to a fresh
        :class:`DynamicSizeCounting` with the empirical parameters.

    Notes
    -----
    The clock's per-agent *hour* is its phase (exchange / hold / reset); its
    ticks are the reset events.  The wrapped protocol remains fully
    functional as a size counter — ``output`` still reports the estimate —
    so a single protocol instance provides both services, exactly as the
    paper advertises.
    """

    name = "uniform-phase-clock"

    def __init__(self, counting: DynamicSizeCounting | None = None) -> None:
        self.counting = counting if counting is not None else DynamicSizeCounting()

    # ----------------------------------------------------------- delegation

    @property
    def params(self) -> ProtocolParameters:
        """Parameters of the wrapped counting protocol."""
        return self.counting.params

    def initial_state(self, rng: RandomSource) -> CountingState:
        return self.counting.initial_state(rng)

    def make_initial_population(self, n: int, rng: RandomSource) -> Population:
        return self.counting.make_initial_population(n, rng)

    def interact(
        self, u: CountingState, v: CountingState, ctx: InteractionContext
    ) -> tuple[CountingState, CountingState]:
        relay_ctx = InteractionContext(ctx.rng, sink=_TickRelay(ctx))
        relay_ctx.reset(ctx.interaction, ctx.initiator_id, ctx.responder_id)
        return self.counting.interact(u, v, relay_ctx)

    def output(self, state: CountingState) -> float:
        """The size estimate (the clock is also the counter)."""
        return self.counting.output(state)

    def memory_bits(self, state: CountingState) -> int:
        return self.counting.memory_bits(state)

    # ---------------------------------------------------------- clock view

    def hour_of(self, state: CountingState) -> Phase:
        """The agent's current hour on the three-hour clock face."""
        return classify_phase(state, self.params)

    def hand_position(self, state: CountingState) -> float:
        """Normalised clock-hand position in ``[0, 1)``.

        0 corresponds to a fresh reset (``time = tau_1 * M``) and values
        approach 1 as the countdown reaches zero.  Useful for visualising
        how tightly the population is synchronised.
        """
        scale = state.effective_max
        if scale <= 0:
            return 0.0
        full = self.params.tau1 * scale
        if full <= 0:
            return 0.0
        position = 1.0 - (state.time / full)
        return min(max(position, 0.0), 1.0)

    def expected_round_length(self, log_n: float) -> float:
        """Rough round length in parallel time for planning simulation horizons."""
        return self.params.round_length_estimate(log_n)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "counting": self.counting.describe(),
        }
