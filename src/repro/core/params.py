"""Protocol parameters for the dynamic size counting protocol.

The protocol is parameterised by

* three phase constants ``tau_1 > tau_2 > tau_3 > 0`` that partition the
  ``time`` countdown into the exchange, hold and reset phases,
* the backup-GRV threshold ``tau_prime``,
* the error-probability exponent ``k`` (each GRV call returns the maximum of
  ``k`` geometric samples, and the holding time is ``Theta(n^{k-1} log n)``),
* and the overestimation factor ``20(k + 1)`` applied to freshly sampled
  GRVs (Algorithm 2, lines 5/6 and 10).

Two presets are provided, mirroring the paper exactly:

* :func:`theory_parameters` — the constants of Lemma 4.5
  (``tau_1 = 1140k``, ``tau_2 = 1119k``, ``tau_3 = 454k``,
  ``tau' = 4350k``) with the full ``20(k + 1)`` overestimation.  These make
  the proofs go through but are far too large for practical simulation.
* :func:`empirical_parameters` — the constants of Section 5
  (``tau_1 = 6``, ``tau_2 = 4``, ``tau_3 = 2``, ``tau' = 20``, ``k = 16``),
  with the overestimation disabled, matching the paper's statement that the
  reported estimate is ``max{max, lastMax}`` *without* the overestimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ProtocolParameters", "theory_parameters", "empirical_parameters"]


@dataclass(frozen=True)
class ProtocolParameters:
    """Immutable parameter set for Algorithm 1 / Algorithm 2.

    Attributes
    ----------
    tau1, tau2, tau3:
        Phase constants; an agent with effective maximum ``M`` is in the
        exchange phase while ``time >= tau2 * M``, in the hold phase while
        ``tau3 * M <= time < tau2 * M`` and in the reset phase while
        ``0 <= time < tau3 * M``.  Resets rewind ``time`` to ``tau1 * M``.
    tau_prime:
        Backup-GRV threshold: an agent that has had more than
        ``tau_prime * max{max, lastMax}`` interactions since its last reset
        generates a backup GRV (Algorithm 2, lines 7–10).
    k:
        Error exponent; each GRV call draws the maximum of ``k`` geometric
        samples and the holding time scales as ``n^{k-1} log n``.
    overestimation:
        Multiplier applied to freshly sampled GRVs when they are stored in
        ``max`` (the paper uses ``20(k + 1)`` in the analysis and ``1`` in
        the simulations).
    grv_samples:
        Number of geometric samples drawn per ``GRV(k)`` call; defaults to
        ``k`` as in Algorithm 3.
    """

    tau1: float
    tau2: float
    tau3: float
    tau_prime: float
    k: int = 2
    overestimation: float = 1.0
    grv_samples: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.tau1 > self.tau2 > self.tau3 > 0:
            raise ValueError(
                "phase constants must satisfy tau1 > tau2 > tau3 > 0, got "
                f"tau1={self.tau1}, tau2={self.tau2}, tau3={self.tau3}"
            )
        if self.tau_prime <= 0:
            raise ValueError(f"tau_prime must be positive, got {self.tau_prime}")
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if self.overestimation < 1.0:
            raise ValueError(
                f"overestimation must be at least 1, got {self.overestimation}"
            )
        if self.grv_samples == 0:
            # Default the per-call sample count to k (Algorithm 3).
            object.__setattr__(self, "grv_samples", self.k)
        if self.grv_samples < 1:
            raise ValueError(f"grv_samples must be positive, got {self.grv_samples}")

    # --------------------------------------------------------------- helpers

    def exchange_threshold(self, effective_max: float) -> float:
        """Lowest ``time`` value that still counts as the exchange phase."""
        return self.tau2 * effective_max

    def hold_threshold(self, effective_max: float) -> float:
        """Lowest ``time`` value that still counts as the hold phase."""
        return self.tau3 * effective_max

    def reset_time(self, effective_max: float) -> float:
        """``time`` value set on a reset (``tau1 * M``)."""
        return self.tau1 * effective_max

    def backup_threshold(self, effective_max: float) -> float:
        """Interaction count above which a backup GRV is generated."""
        return self.tau_prime * effective_max

    def overestimate(self, grv: int) -> float:
        """Apply the overestimation factor to a raw GRV sample."""
        return self.overestimation * grv

    def round_length_estimate(self, log_n: float) -> float:
        """Rough length of one clock round in parallel time, ``tau1 * Theta(log n)``.

        Used by experiments to size simulation horizons; not part of the
        protocol itself (which is uniform and never computes this).
        """
        return self.tau1 * self.overestimation * max(1.0, log_n)

    def describe(self) -> dict[str, Any]:
        """Serialisable description used in experiment metadata."""
        return {
            "tau1": self.tau1,
            "tau2": self.tau2,
            "tau3": self.tau3,
            "tau_prime": self.tau_prime,
            "k": self.k,
            "overestimation": self.overestimation,
            "grv_samples": self.grv_samples,
        }


def theory_parameters(k: int = 2) -> ProtocolParameters:
    """Constants from Lemma 4.5 (chosen for the proofs, not for practice).

    ``tau_1 = 1140k``, ``tau_2 = 1119k``, ``tau_3 = 454k``,
    ``tau' = 4350k``, overestimation ``20(k + 1)``.
    """
    if k < 2:
        raise ValueError(f"the analysis requires k >= 2, got {k}")
    return ProtocolParameters(
        tau1=1140.0 * k,
        tau2=1119.0 * k,
        tau3=454.0 * k,
        tau_prime=4350.0 * k,
        k=k,
        overestimation=20.0 * (k + 1),
    )


def empirical_parameters(k: int = 16) -> ProtocolParameters:
    """Constants from the paper's empirical analysis (Section 5).

    ``tau_1 = 6``, ``tau_2 = 4``, ``tau_3 = 2``, ``tau' = 20``, ``k = 16``,
    and no overestimation (the reported estimate is ``max{max, lastMax}``
    directly).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return ProtocolParameters(
        tau1=6.0,
        tau2=4.0,
        tau3=2.0,
        tau_prime=20.0,
        k=k,
        overestimation=1.0,
    )
