"""Algorithm 2 — the full dynamic size counting protocol.

This is the paper's main contribution: a uniform, loosely-stabilizing
protocol in which every agent maintains four variables
(``max``, ``lastMax``, ``time``, ``interactions``) and which

* converges from any configuration to estimates of ``Theta(log n)`` in
  ``O(log n-hat + log n)`` parallel time w.h.p. (Theorem 2.1),
* holds correct estimates for ``Theta(n^{k-1} log n)`` parallel time
  w.h.p., and
* doubles as a uniform loosely-stabilizing phase clock whose ticks are the
  reset events (Theorem 2.2).

The transition function follows Algorithm 2 line by line; the comments in
:meth:`DynamicSizeCounting.interact` reference the paper's line numbers.
The protocol is *one-way*: only the initiator ``u`` changes state.
"""

from __future__ import annotations

from typing import Any

from repro.core.grv import grv_maximum
from repro.core.params import ProtocolParameters, empirical_parameters
from repro.core.state import CountingState, Phase, classify_phase, state_memory_bits
from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.population import Population
from repro.engine.rng import RandomSource

__all__ = ["DynamicSizeCounting"]


class DynamicSizeCounting(Protocol[CountingState]):
    """Algorithm 2 of the paper.

    Parameters
    ----------
    params:
        Protocol constants (tau_1..tau_3, tau', k, overestimation).  Defaults
        to the empirical preset of Section 5 (tau_1=6, tau_2=4, tau_3=2,
        tau'=20, k=16, no overestimation), which is what all figures use.

    Notes
    -----
    Reset events are emitted through the interaction context with kind
    ``"reset"``; the phase clock wrapper and the synchronization analysis
    treat them as clock ticks.  Backup-GRV adoptions emit ``"backup"``.
    """

    name = "dynamic-size-counting"

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params if params is not None else empirical_parameters()

    # ------------------------------------------------------------------ setup

    def initial_state(self, rng: RandomSource) -> CountingState:
        """Predefined state of newly added agents (Section 3).

        ``max = lastMax = 1``, ``time = tau_1`` and ``interactions = 0``.
        """
        return CountingState.fresh(self.params)

    def make_initial_population(self, n: int, rng: RandomSource) -> Population:
        """Fresh population of ``n`` agents in the predefined initial state."""
        if n < 2:
            raise ValueError(f"population size must be at least 2, got {n}")
        return Population(self.initial_state(rng) for _ in range(n))

    def make_estimate_population(
        self, n: int, estimate: float, rng: RandomSource
    ) -> Population:
        """Population initialised with a fixed (possibly wrong) estimate.

        Used by the Fig. 5 experiment ("populations initialized with an
        estimate of 60") and by the loose-stabilization tests that start
        from adversarial configurations.
        """
        if n < 2:
            raise ValueError(f"population size must be at least 2, got {n}")
        return Population(
            CountingState.with_estimate(estimate, self.params) for _ in range(n)
        )

    # ------------------------------------------------------------ interaction

    def interact(
        self, u: CountingState, v: CountingState, ctx: InteractionContext
    ) -> tuple[CountingState, CountingState]:
        params = self.params
        u_phase = classify_phase(u, params)
        v_phase = classify_phase(v, params)

        # Lines 2-6: wrap-around / reset->exchange / hold->exchange resets.
        should_reset = (
            u.time <= 0
            or (u_phase is Phase.RESET and v_phase is Phase.EXCHANGE)
            or (u_phase is not Phase.EXCHANGE and u.max_value != v.max_value)
        )
        if should_reset:
            fresh = params.overestimate(grv_maximum(ctx.rng, params.grv_samples))
            u.time = params.tau1 * max(u.max_value, fresh)
            u.interactions = 0
            u.last_max = u.max_value
            u.max_value = fresh
            ctx.emit("reset", agent_id=ctx.initiator_id, grv=fresh)

        # Lines 7-10: backup GRV generation when the agent has gone too long
        # without a reset (its countdown is being held up by CHVP adoption).
        if u.interactions > params.backup_threshold(max(u.max_value, u.last_max)):
            u.interactions = 0
            backup = grv_maximum(ctx.rng, params.grv_samples)
            if backup > u.max_value:
                boosted = params.overestimate(backup)
                u.time = params.tau1 * boosted
                u.max_value = boosted
                ctx.emit("backup", agent_id=ctx.initiator_id, grv=boosted)

        # Lines 11-12: adopt a larger maximum within the exchange phase.
        if (
            classify_phase(u, params) is Phase.EXCHANGE
            and classify_phase(v, params) is Phase.EXCHANGE
            and u.max_value < v.max_value
        ):
            u.time = params.tau1 * v.max_value
            u.max_value = v.max_value
            u.last_max = v.last_max

        # Lines 13-14: exchange the trailing maximum among agents that agree
        # on max, except across the exchange x reset boundary (which would
        # leak an old lastMax into the next round).
        if u.max_value == v.max_value and not (
            classify_phase(u, params) is Phase.EXCHANGE
            and classify_phase(v, params) is Phase.RESET
        ):
            u.last_max = max(u.last_max, v.last_max)

        # Line 15: CHVP update of the countdown plus the interaction counter.
        u.time = max(u.time, v.time) - 1
        u.interactions += 1
        return u, v

    # ---------------------------------------------------------------- outputs

    def output(self, state: CountingState) -> float:
        """The agent's reported estimate of ``log2 n`` (Section 5 convention)."""
        return state.estimate(self.params)

    def phase_of(self, state: CountingState) -> Phase:
        """Phase classification used by recorders, analysis and tests."""
        return classify_phase(state, self.params)

    def memory_bits(self, state: CountingState) -> int:
        """Per-agent memory footprint in bits (Lemma 4.13 accounting)."""
        return state_memory_bits(state)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "params": self.params.describe(),
        }
