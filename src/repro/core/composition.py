"""Composition of the dynamic size estimate with non-uniform payload protocols.

The paper motivates dynamic size counting as a way to turn *non-uniform*
population protocols — protocols whose transition function needs an estimate
of ``log n`` — into dynamic, loosely-stabilizing ones (Section 1 and the
open problems in Section 6).  This module provides the composition
machinery used by the examples and integration tests:

* :class:`ComposedState` bundles the counting state with a payload state;
* :class:`ComposedProtocol` runs the counting protocol and a payload
  protocol side by side in every interaction, feeds the payload the current
  size estimate, and restarts / advances the payload on clock ticks.

The composition follows the simple "restart on significant estimate change"
pattern discussed in the paper's conclusion: a formal general framework is
left open by the authors, so this module deliberately implements the
pragmatic version their discussion sketches and documents its semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.state import CountingState
from repro.engine.protocol import InteractionContext, Protocol, ProtocolEvent
from repro.engine.population import Population
from repro.engine.rng import RandomSource

__all__ = ["ComposedState", "ComposedProtocol"]


@dataclass
class ComposedState:
    """Joint state: the counting/clock state plus the payload protocol's state."""

    clock: CountingState
    payload: Any
    #: Size estimate the payload was last (re)configured with.
    configured_estimate: float = 1.0

    def copy(self) -> "ComposedState":
        payload = self.payload.copy() if hasattr(self.payload, "copy") else self.payload
        return ComposedState(
            clock=self.clock.copy(),
            payload=payload,
            configured_estimate=self.configured_estimate,
        )


class ComposedProtocol(Protocol[ComposedState]):
    """Run a payload protocol driven by the dynamic size estimate.

    Parameters
    ----------
    payload:
        The non-uniform payload protocol.  Its ``interact`` is applied to
        the payload components of the two agents in every interaction.
    counting:
        The dynamic size counting protocol instance (defaults to empirical
        parameters).
    on_tick:
        Callback ``(payload_protocol, payload_state) -> payload_state``
        invoked for the initiator whenever its clock ticks (resets).  The
        default advances a ``phase`` attribute if the payload protocol
        exposes :meth:`advance_phase`, which is what
        :class:`repro.protocols.majority.PhasedMajority` expects.
    restart_threshold:
        Relative change of the size estimate (w.r.t. the estimate the
        payload was configured with) that triggers a payload restart.  A
        value of 0.5 means the payload restarts when the estimate changes
        by more than 50 %, i.e. when the population size changed by a
        polynomial factor.  ``None`` disables restarts.
    """

    name = "composed-protocol"

    def __init__(
        self,
        payload: Protocol,
        *,
        counting: DynamicSizeCounting | None = None,
        on_tick: Callable[[Protocol, Any], Any] | None = None,
        restart_threshold: float | None = 0.5,
    ) -> None:
        self.payload = payload
        self.counting = counting if counting is not None else DynamicSizeCounting()
        self._on_tick = on_tick
        if restart_threshold is not None and restart_threshold <= 0:
            raise ValueError(
                f"restart_threshold must be positive or None, got {restart_threshold}"
            )
        self.restart_threshold = restart_threshold

    # ------------------------------------------------------------------ setup

    def initial_state(self, rng: RandomSource) -> ComposedState:
        clock = self.counting.initial_state(rng)
        payload = self.payload.initial_state(rng)
        return ComposedState(clock=clock, payload=payload, configured_estimate=1.0)

    def make_initial_population(
        self, n: int, rng: RandomSource, payload_states: list[Any] | None = None
    ) -> Population:
        """Fresh population, optionally with caller-provided payload states.

        ``payload_states`` lets examples set up a specific payload input
        (e.g. a 60/40 split of majority opinions) while the clock component
        starts in the predefined state.
        """
        if n < 2:
            raise ValueError(f"population size must be at least 2, got {n}")
        if payload_states is not None and len(payload_states) != n:
            raise ValueError(
                f"expected {n} payload states, got {len(payload_states)}"
            )
        states = []
        for index in range(n):
            clock = self.counting.initial_state(rng)
            payload = (
                payload_states[index]
                if payload_states is not None
                else self.payload.initial_state(rng)
            )
            states.append(ComposedState(clock=clock, payload=payload))
        return Population(states)

    # ------------------------------------------------------------ interaction

    def interact(
        self, u: ComposedState, v: ComposedState, ctx: InteractionContext
    ) -> tuple[ComposedState, ComposedState]:
        ticked = _TickCapture()
        clock_ctx = InteractionContext(ctx.rng, sink=ticked.capture(ctx))
        clock_ctx.reset(ctx.interaction, ctx.initiator_id, ctx.responder_id)
        u.clock, v.clock = self.counting.interact(u.clock, v.clock, clock_ctx)

        u.payload, v.payload = self.payload.interact(u.payload, v.payload, ctx)

        if ticked.fired:
            u.payload = self._handle_tick(u)
        return u, v

    def _handle_tick(self, state: ComposedState) -> Any:
        """React to a clock tick of the initiator: advance and maybe restart."""
        estimate = self.counting.output(state.clock)
        payload = state.payload
        if self._on_tick is not None:
            payload = self._on_tick(self.payload, payload)
        elif hasattr(self.payload, "advance_phase"):
            payload = self.payload.advance_phase(payload)
        if self.restart_threshold is not None and state.configured_estimate > 0:
            relative_change = abs(estimate - state.configured_estimate) / max(
                1.0, state.configured_estimate
            )
            if relative_change > self.restart_threshold:
                payload = self.payload.initial_state_for_restart(payload) if hasattr(
                    self.payload, "initial_state_for_restart"
                ) else payload
                state.configured_estimate = estimate
        return payload

    # ---------------------------------------------------------------- outputs

    def output(self, state: ComposedState) -> Any:
        """The payload's output (the composition exists to compute it)."""
        return self.payload.output(state.payload)

    def estimate(self, state: ComposedState) -> float:
        """The agent's current size estimate from the clock component."""
        return self.counting.output(state.clock)

    def memory_bits(self, state: ComposedState) -> int:
        return self.counting.memory_bits(state.clock) + self.payload.memory_bits(
            state.payload
        )

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "counting": self.counting.describe(),
            "payload": self.payload.describe(),
            "restart_threshold": self.restart_threshold,
        }


class _TickCapture:
    """Helper recording whether the wrapped counting protocol reset."""

    def __init__(self) -> None:
        self.fired = False

    def capture(self, outer_ctx: InteractionContext):
        def sink(event: ProtocolEvent) -> None:
            if event.kind == "reset":
                self.fired = True
                outer_ctx.emit("tick", agent_id=event.agent_id, **event.data)
            else:
                outer_ctx.emit(event.kind, agent_id=event.agent_id, **event.data)

        return sink
