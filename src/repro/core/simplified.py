"""Algorithm 1 — the simplified dynamic size counting protocol.

This is the two-variable (``max``, ``time``) protocol the paper uses to
convey the idea (Section 2.1): agents sample geometric random variables,
spread the maximum via epidemic while a CHVP countdown paces a three-phase
clock (exchange, hold, reset), and a wrap-around of the countdown resets the
agent with a fresh GRV.

Compared to the full Algorithm 2 it lacks the trailing estimate
(``lastMax``) and the backup-GRV mechanism, so it is easier to follow but
has weaker guarantees (a single unlucky small GRV can shorten a round).  It
is included both for fidelity to the paper and because several unit tests
and the quickstart example are clearer against the simpler rule set.
"""

from __future__ import annotations

from typing import Any

from repro.core.grv import grv as sample_grv
from repro.core.params import ProtocolParameters, empirical_parameters
from repro.core.state import CountingState, Phase, classify_phase, state_memory_bits
from repro.engine.protocol import InteractionContext, Protocol
from repro.engine.population import Population
from repro.engine.rng import RandomSource

__all__ = ["SimplifiedDynamicSizeCounting"]


class SimplifiedDynamicSizeCounting(Protocol[CountingState]):
    """Algorithm 1 of the paper (one-way; only the initiator updates).

    Parameters
    ----------
    params:
        Protocol constants; defaults to the empirical preset of Section 5.
    """

    name = "simplified-dynamic-size-counting"

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params if params is not None else empirical_parameters()

    # ------------------------------------------------------------------ setup

    def initial_state(self, rng: RandomSource) -> CountingState:
        state = CountingState.fresh(self.params)
        # Algorithm 1 has no lastMax; keep it mirrored onto max so that the
        # shared phase classifier sees the same scale the algorithm uses.
        state.last_max = state.max_value
        return state

    def make_initial_population(self, n: int, rng: RandomSource) -> Population:
        """Fresh population of ``n`` agents in the predefined initial state."""
        if n < 2:
            raise ValueError(f"population size must be at least 2, got {n}")
        return Population(self.initial_state(rng) for _ in range(n))

    # ------------------------------------------------------------ interaction

    def interact(
        self, u: CountingState, v: CountingState, ctx: InteractionContext
    ) -> tuple[CountingState, CountingState]:
        params = self.params
        u_phase = classify_phase(u, params)
        v_phase = classify_phase(v, params)

        # Lines 1-6: wrap-around, reset -> exchange, hold -> exchange.
        should_reset = (
            u.time <= 0
            or (u_phase is Phase.RESET and v_phase is Phase.EXCHANGE)
            or (u_phase is not Phase.EXCHANGE and u.max_value != v.max_value)
        )
        if should_reset:
            fresh = params.overestimate(sample_grv(ctx.rng))
            u.time = params.tau1 * max(u.max_value, fresh)
            u.max_value = fresh
            u.last_max = fresh
            ctx.emit("reset", agent_id=ctx.initiator_id, grv=fresh)

        # Lines 7-8: exchange the maximum within the exchange phase.
        if (
            classify_phase(u, params) is Phase.EXCHANGE
            and classify_phase(v, params) is Phase.EXCHANGE
            and u.max_value < v.max_value
        ):
            u.time = params.tau1 * v.max_value
            u.max_value = v.max_value
            u.last_max = v.max_value

        # Line 9: CHVP update of the countdown.
        u.time = max(u.time, v.time) - 1
        return u, v

    # ---------------------------------------------------------------- outputs

    def output(self, state: CountingState) -> float:
        """The agent's estimate of ``log2 n``."""
        return state.estimate(self.params)

    def phase_of(self, state: CountingState) -> Phase:
        """Phase classification for recorders and tests."""
        return classify_phase(state, self.params)

    def memory_bits(self, state: CountingState) -> int:
        return state_memory_bits(state)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "params": self.params.describe(),
        }
