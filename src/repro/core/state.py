"""Agent state and phase classification for the dynamic size counting protocol.

Every agent of Algorithm 2 stores four variables (Section 3 of the paper):

* ``max`` — the largest (possibly overestimated) GRV the agent currently
  believes is in the population; spread by epidemic during the exchange
  phase.
* ``last_max`` — the trailing estimate from the previous round, used to keep
  the phase lengths large even right after a reset samples a small GRV.
* ``time`` — the CHVP-synchronised countdown that drives the phase clock.
* ``interactions`` — interactions since the agent's last reset; not
  exchanged, used only to trigger backup GRVs.

The phases (exchange / hold / reset) are intervals of ``time`` scaled by the
agent's *effective maximum* ``max{max, last_max}`` (Section 4.1 defines all
phases "using whichever is larger").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any

from repro.core.params import ProtocolParameters

__all__ = ["Phase", "CountingState", "classify_phase", "state_memory_bits"]


class Phase(str, enum.Enum):
    """The three phases of the clock face (Fig. 1 of the paper)."""

    EXCHANGE = "exchange"
    HOLD = "hold"
    RESET = "reset"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CountingState:
    """Mutable per-agent state of Algorithms 1 and 2.

    Newly added agents are initialised with ``max = last_max = 1``,
    ``time = tau_1`` and ``interactions = 0`` (Section 3).  The simplified
    Algorithm 1 ignores ``last_max`` and ``interactions``.
    """

    max_value: float = 1.0
    last_max: float = 1.0
    time: float = 0.0
    interactions: int = 0

    # ------------------------------------------------------------- derived

    @property
    def effective_max(self) -> float:
        """``max{max, lastMax}`` — the scale used for phases and the estimate."""
        return self.max_value if self.max_value >= self.last_max else self.last_max

    def estimate(self, params: ProtocolParameters) -> float:
        """The agent's reported estimate of ``log2 n``.

        Section 5: "the reported estimate of an agent u is
        ``max{u.max, u.lastMax}`` without the overestimation applied", so we
        divide the stored (possibly overestimated) value by the
        overestimation factor.
        """
        return self.effective_max / params.overestimation

    def copy(self) -> "CountingState":
        return CountingState(
            max_value=self.max_value,
            last_max=self.last_max,
            time=self.time,
            interactions=self.interactions,
        )

    def as_dict(self) -> dict[str, Any]:
        """Serialisable snapshot of the state (used by traces and tests)."""
        return {
            "max": self.max_value,
            "last_max": self.last_max,
            "time": self.time,
            "interactions": self.interactions,
        }

    @classmethod
    def fresh(cls, params: ProtocolParameters) -> "CountingState":
        """The predefined state of newly added agents."""
        return cls(max_value=1.0, last_max=1.0, time=params.tau1, interactions=0)

    @classmethod
    def with_estimate(
        cls, estimate: float, params: ProtocolParameters, *, in_exchange: bool = True
    ) -> "CountingState":
        """Build a state that believes the population's estimate is ``estimate``.

        Used by experiments that initialise the population with a fixed
        (possibly wildly wrong) estimate, e.g. Fig. 5's initial estimate of
        60.  ``in_exchange`` controls whether the agent starts at the top of
        the clock (time = tau_1 * M) or in the middle of the hold phase.
        """
        if estimate <= 0:
            raise ValueError(f"estimate must be positive, got {estimate}")
        stored = estimate * params.overestimation
        if in_exchange:
            time = params.tau1 * stored
        else:
            time = (params.tau2 + params.tau3) / 2.0 * stored
        return cls(max_value=stored, last_max=stored, time=time, interactions=0)


def classify_phase(state: CountingState, params: ProtocolParameters) -> Phase:
    """Classify an agent into exchange / hold / reset (Section 3).

    The intervals are::

        exchange:  time >= tau2 * M
        hold:      tau3 * M <= time < tau2 * M
        reset:     time < tau3 * M            (including time <= 0)

    where ``M = max{max, lastMax}`` is the agent's effective maximum.
    """
    scale = state.effective_max
    if state.time >= params.tau2 * scale:
        return Phase.EXCHANGE
    if state.time >= params.tau3 * scale:
        return Phase.HOLD
    return Phase.RESET


def _value_bits(value: float) -> int:
    """Bits needed to store a non-negative protocol variable.

    Protocol variables are conceptually integers (GRVs, countdowns,
    interaction counts); the float representation in this implementation is
    a convenience.  We charge ``ceil(log2(value + 1))`` bits, minimum 1.
    """
    magnitude = int(math.ceil(abs(value)))
    return max(1, magnitude.bit_length())


def state_memory_bits(state: CountingState) -> int:
    """Per-agent memory footprint in bits (Lemma 4.13 accounting).

    All four variables store values that are ``O(M)`` where ``M`` is the
    largest maximum generated, hence ``O(log s + log log n)`` bits per agent
    once converged.
    """
    return (
        _value_bits(state.max_value)
        + _value_bits(state.last_max)
        + _value_bits(state.time)
        + _value_bits(state.interactions)
    )
