"""Counts-level kernel for the dynamic size counting protocol.

:class:`DynamicCountingCountsKernel` re-expresses Algorithm 2 on the
multiset population state of :class:`repro.engine.counts_engine.
CountsSimulator`: instead of per-agent ``(max, lastMax, time, interactions)``
planes, the population is a count vector over the *occupied* points of that
integer lattice, and one transition call advances every (initiator-state,
responder-class) interaction cell at once.

The randomness of Algorithm 2 lives entirely in its GRVs, which makes the
count-level reformulation exact: whether an interaction resets (lines 2-6)
or owes a backup draw (lines 7-10) is a *deterministic* function of the two
endpoint states, and the two conditions are mutually exclusive (a reset
zeroes the interaction counter, so a freshly reset agent can never be over
the backup threshold).  Each cell therefore splits into

* deterministic cells — lines 11-15 applied directly;
* reset cells — one multinomial over the closed-form pmf of
  ``max of k Geom(1/2)`` (:func:`repro.engine.counts_engine.grv_max_pmf`)
  replaces the per-agent GRV draws, expanding the cell into one sub-cell
  per drawn value;
* backup cells — the same pmf expansion, with the drawn value adopted only
  where it beats the agent's current maximum (the raw, un-overestimated
  comparison of line 9).

Responders are coarsened to their ``(max, lastMax, time)`` triple — the
transition never reads the responder's interaction counter — which keeps
the pair table at |Q| x |R| with |R| ~ 10 once the protocol converges.

The lattice is packed into one int64 key per state.  That requires
*integer* protocol constants and bounds every plane by the largest GRV the
samplers resolve (``overestimation * 64``); the paper's empirical presets
fit in ~34 bits, while the theory presets (tau1 ~ 10^6) overflow the key
and are rejected with a :class:`~repro.engine.errors.ConfigurationError` —
exactly the signal :func:`repro.engine.registry.has_counts_kernel` uses to
keep auto-selection away from unpackable parameterisations.

Per-agent cumulative reset counters (the ``resets`` plane) cannot live in
count state without exploding the lattice; the kernel instead tracks the
population-wide total (:meth:`DynamicCountingCountsKernel.tick_total`),
which is what the clock-rate analyses aggregate anyway.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.params import ProtocolParameters, empirical_parameters
from repro.engine.counts_engine import (
    GRV_VALUE_CAP,
    CountsState,
    PackedCountsKernel,
    grv_max_pmf,
)
from repro.engine.errors import ConfigurationError
from repro.engine.rng import RandomSource

__all__ = ["DynamicCountingCountsKernel"]


def _integral(value: float, name: str) -> int:
    if float(value) != int(value):
        raise ConfigurationError(
            f"counts kernel requires integer protocol constants; {name}={value!r}"
        )
    return int(value)


class DynamicCountingCountsKernel(PackedCountsKernel):
    """Algorithm 2 on interaction-count cells (see module docstring)."""

    name = "counts-dynamic-size-counting"
    two_way = False
    responder_fields = ("max", "last_max", "time")

    def __init__(self, params: ProtocolParameters | None = None) -> None:
        self.params = params if params is not None else empirical_parameters()
        p = self.params
        tau1 = _integral(p.tau1, "tau1")
        tau_prime = _integral(p.tau_prime, "tau_prime")
        _integral(p.tau2, "tau2")
        _integral(p.tau3, "tau3")
        over = _integral(p.overestimation, "overestimation")
        if over < 1:
            raise ConfigurationError(f"overestimation must be >= 1, got {over}")
        # Largest storable maximum: an overestimated cap-value GRV.  ``time``
        # tops out at tau1 * value_cap (resets/adoptions assign tau1 * max
        # and line 15 only decrements); ``interactions`` is zeroed by the
        # backup rule once it passes tau_prime * value_cap, so the +1 of
        # line 15 caps it one above that.
        value_cap = over * GRV_VALUE_CAP
        self.value_cap = value_cap
        self.fields = (
            ("max", value_cap + 1),
            ("last_max", value_cap + 1),
            ("time", tau1 * value_cap + 1),
            ("interactions", tau_prime * value_cap + 2),
        )
        self._check_packing()
        self._grv_pmf = grv_max_pmf(int(p.grv_samples))
        self._grv_values = np.arange(1, GRV_VALUE_CAP + 1, dtype=np.int64)
        self._total_ticks = 0

    # ------------------------------------------------------------------ setup

    def initial_state(self, n: int, rng: RandomSource) -> CountsState:
        """All ``n`` agents fresh: ``max = lastMax = 1``, ``time = tau1``."""
        tau1 = int(self.params.tau1)
        columns = {
            "max": np.array([1], dtype=np.int64),
            "last_max": np.array([1], dtype=np.int64),
            "time": np.array([tau1], dtype=np.int64),
            "interactions": np.array([0], dtype=np.int64),
        }
        return self.state_from_columns(columns, np.array([n], dtype=np.int64))

    def initial_state_with_estimate(self, n: int, estimate: float) -> CountsState:
        """Population seeded with a fixed estimate (the Fig. 5 workload)."""
        if estimate <= 0:
            raise ConfigurationError(f"estimate must be positive, got {estimate}")
        stored = estimate * self.params.overestimation
        if float(stored) != int(stored):
            raise ConfigurationError(
                f"counts engine needs an integer stored estimate, got {stored!r}"
            )
        stored = int(stored)
        if stored > self.value_cap:
            raise ConfigurationError(
                f"stored estimate {stored} exceeds the kernel's value cap "
                f"{self.value_cap}"
            )
        tau1 = int(self.params.tau1)
        columns = {
            "max": np.array([stored], dtype=np.int64),
            "last_max": np.array([stored], dtype=np.int64),
            "time": np.array([tau1 * stored], dtype=np.int64),
            "interactions": np.array([0], dtype=np.int64),
        }
        return self.state_from_columns(columns, np.array([n], dtype=np.int64))

    # ----------------------------------------------------------------- output

    def output_values(self, state: CountsState) -> np.ndarray:
        """Per-state reported estimate of ``log2 n`` (Section 5 convention)."""
        scale = np.maximum(state.columns["max"], state.columns["last_max"])
        return scale / self.params.overestimation

    def responder_view(
        self, state: CountsState
    ) -> tuple[np.ndarray, dict[str, np.ndarray] | None]:
        """Coarsen responders to ``(max, lastMax, time)`` equivalence classes."""
        time_cardinality = self.fields[2][1]
        value_cardinality = self.fields[0][1]
        reduced = (
            state.columns["max"] * value_cardinality + state.columns["last_max"]
        ) * time_cardinality + state.columns["time"]
        _, representative, class_id = np.unique(
            reduced, return_index=True, return_inverse=True
        )
        columns = {
            name: state.columns[name][representative] for name in self.responder_fields
        }
        return class_id, columns

    def tick_total(self) -> int | None:
        return self._total_ticks

    def restore_tick_total(self, total: int | None) -> None:
        if total is not None:
            self._total_ticks = int(total)

    # ------------------------------------------------------------- transition

    def transition(
        self,
        u: dict[str, np.ndarray],
        v: dict[str, np.ndarray],
        multiplicity: np.ndarray,
        rng: RandomSource,
    ) -> tuple[
        dict[str, np.ndarray],
        np.ndarray,
        dict[str, np.ndarray] | None,
        np.ndarray | None,
    ]:
        p = self.params
        tau2, tau3 = int(p.tau2), int(p.tau3)
        u_max, u_last = u["max"], u["last_max"]
        u_time, u_inter = u["time"], u["interactions"]

        # Lines 2-6 condition: deterministic per cell.
        u_scale = np.maximum(u_max, u_last)
        u_exchange = u_time >= tau2 * u_scale
        u_reset_phase = u_time < tau3 * u_scale
        v_scale = np.maximum(v["max"], v["last_max"])
        v_exchange = v["time"] >= tau2 * v_scale
        reset = (
            (u_time <= 0)
            | (u_reset_phase & v_exchange)
            | (~u_exchange & (u_max != v["max"]))
        )
        # Lines 7-10 condition: on non-reset cells the pre-backup state is the
        # input state; reset cells zero the counter, so the two are disjoint.
        backup = ~reset & (u_inter > int(p.tau_prime) * u_scale)
        plain = ~reset & ~backup

        out_fields: list[dict[str, np.ndarray]] = []
        out_mult: list[np.ndarray] = []

        if plain.any():
            idx = np.flatnonzero(plain)
            out_fields.append(
                self._finish(
                    u_max[idx],
                    u_last[idx],
                    u_time[idx],
                    u_inter[idx],
                    {name: col[idx] for name, col in v.items()},
                )
            )
            out_mult.append(multiplicity[idx])

        if reset.any():
            idx = np.flatnonzero(reset)
            cell, grv, counts = self._expand_grv(multiplicity[idx], rng)
            self._total_ticks += int(multiplicity[idx].sum())
            base = idx[cell]
            fresh = int(p.overestimation) * grv
            new_time = int(p.tau1) * np.maximum(u_max[base], fresh)
            out_fields.append(
                self._finish(
                    fresh,
                    u_max[base],
                    new_time,
                    np.zeros(base.size, dtype=np.int64),
                    {name: col[base] for name, col in v.items()},
                )
            )
            out_mult.append(counts)

        if backup.any():
            idx = np.flatnonzero(backup)
            cell, grv, counts = self._expand_grv(multiplicity[idx], rng)
            base = idx[cell]
            adopt = grv > u_max[base]  # line 9 compares the *raw* draw
            boosted = int(p.overestimation) * grv
            new_max = np.where(adopt, boosted, u_max[base])
            new_time = np.where(adopt, int(p.tau1) * boosted, u_time[base])
            out_fields.append(
                self._finish(
                    new_max,
                    u_last[base],
                    new_time,
                    np.zeros(base.size, dtype=np.int64),
                    {name: col[base] for name, col in v.items()},
                )
            )
            out_mult.append(counts)

        merged = {
            name: np.concatenate([fields[name] for fields in out_fields])
            for name in ("max", "last_max", "time", "interactions")
        }
        return merged, np.concatenate(out_mult), None, None

    def _expand_grv(
        self, multiplicity: np.ndarray, rng: RandomSource
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split each cell's multiplicity across GRV outcomes.

        One vectorised multinomial per call; returns parallel arrays
        ``(cell_index, grv_value, count)`` over the non-empty sub-cells.
        """
        table = rng.generator.multinomial(multiplicity, self._grv_pmf)
        cell, bin_index = np.nonzero(table)
        return cell, self._grv_values[bin_index], table[cell, bin_index]

    def _finish(
        self,
        new_max: np.ndarray,
        new_last: np.ndarray,
        new_time: np.ndarray,
        new_inter: np.ndarray,
        v: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Algorithm 2 lines 11-15 (deterministic) on expanded sub-cells."""
        p = self.params
        tau1, tau2, tau3 = int(p.tau1), int(p.tau2), int(p.tau3)
        v_max, v_last, v_time = v["max"], v["last_max"], v["time"]
        v_scale = np.maximum(v_max, v_last)
        v_exchange = v_time >= tau2 * v_scale
        v_reset_phase = v_time < tau3 * v_scale

        # Lines 11-12: adopt a larger maximum within the exchange phase.
        exchange_now = new_time >= tau2 * np.maximum(new_max, new_last)
        adopt = exchange_now & v_exchange & (new_max < v_max)
        new_time = np.where(adopt, tau1 * v_max, new_time)
        new_max = np.where(adopt, v_max, new_max)
        new_last = np.where(adopt, v_last, new_last)

        # Lines 13-14: exchange the trailing maximum.
        exchange_final = new_time >= tau2 * np.maximum(new_max, new_last)
        share = (new_max == v_max) & ~(exchange_final & v_reset_phase)
        new_last = np.where(share, np.maximum(new_last, v_last), new_last)

        # Line 15: CHVP countdown plus the interaction counter.
        new_time = np.maximum(new_time, v_time) - 1
        return {
            "max": new_max.astype(np.int64),
            "last_max": new_last.astype(np.int64),
            "time": new_time.astype(np.int64),
            "interactions": (new_inter + 1).astype(np.int64),
        }

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "class": type(self).__name__,
            "params": self.params.describe(),
        }
