"""Adversarial scenario catalog — workloads beyond the paper's evaluation.

The paper's figures exercise a single adversarial event (Fig. 4's
decimation).  The dynamic population model supports arbitrary size
schedules, and these registered scenarios cover the shapes the model allows
but the paper never plots:

* ``oscillate`` — the population swings between ``n`` and a small fraction
  of it, over and over; the protocol must adapt in both directions.
* ``boom_bust`` — exponential growth for several periods, then a crash to a
  tiny remnant (a flock growing through a season, then decimated).
* ``churn`` — sustained random churn: every period the adversary resizes to
  a uniformly random size, drawn from a seeded generator so the schedule is
  reproducible.
* ``repeated_decimation`` — Fig. 4's decimation applied again and again,
  halving the population down to a floor.

Alongside the synthetic family, three scenarios model *realistic*
population dynamics:

* ``flash_crowd`` — a bundled CSV load curve (calm baseline, a sudden 10x
  spike, decay back down) replayed via :class:`repro.scenarios.traces.Trace`.
* ``diurnal`` — a bundled day-of-load curve (overnight trough, daytime
  peak), also trace-driven.
* ``failover`` — a multi-phase timeline (steady -> outage -> recovery)
  built from :class:`repro.scenarios.phases.Phase` segments; the phase
  boundaries land in the result metadata and per-phase tracking errors in
  the result rows.

All of them run the paper's protocol on any engine; with no engine pinned,
the runner auto-selects via :func:`repro.engine.registry.choose_engine`
(typically the stacked ensemble engine).  Their presets live in
:data:`repro.experiments.config.PRESETS` under the scenario name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import ProtocolParameters
from repro.scenarios import schedules
from repro.scenarios.metrics import (
    base_fields,
    phase_stats,
    schedule_fields,
    steady_window_stats,
    tracking_stats,
)
from repro.scenarios.phases import Phase, chain_phases, phase_boundaries
from repro.scenarios.registry import scenario
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec
from repro.scenarios.traces import bundled_trace

if TYPE_CHECKING:  # pragma: no cover - typing-only
    from repro.experiments.base import ExperimentPreset

__all__ = [
    "oscillate",
    "boom_bust",
    "churn",
    "repeated_decimation",
    "flash_crowd",
    "diurnal",
    "failover",
    "failover_phases",
]

_ADVERSARIAL_METRICS = (base_fields, schedule_fields, tracking_stats, steady_window_stats)


def _point(
    preset: ExperimentPreset, n: int, schedule: tuple[tuple[int, int], ...]
) -> ScenarioPoint:
    return ScenarioPoint(
        n=n,
        seed=preset.seed + n,
        parallel_time=preset.parallel_time,
        trials=preset.trials,
        resize_schedule=schedule,
    )


@scenario
def oscillate() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        period = int(preset.extra.get("period", max(1, preset.parallel_time // 6)))
        shrink = int(preset.extra.get("shrink_factor", 10))
        return tuple(
            _point(
                preset,
                n,
                schedules.oscillation(
                    n,
                    low=max(2, n // shrink),
                    period=period,
                    horizon=preset.parallel_time,
                ),
            )
            for n in preset.population_sizes
        )

    return ScenarioSpec(
        name="oscillate",
        description="Population oscillates between n and n/shrink_factor every period",
        points=points,
        metrics=_ADVERSARIAL_METRICS,
        keep_series=True,
        tags=("adversarial",),
        schedule_kind="oscillation",
        knobs=("period", "shrink_factor"),
    )


@scenario
def boom_bust() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        period = int(preset.extra.get("period", max(1, preset.parallel_time // 8)))
        growth_steps = int(preset.extra.get("growth_steps", 4))
        growth_factor = float(preset.extra.get("growth_factor", 2.0))
        crash_divisor = int(preset.extra.get("crash_divisor", 10))
        return tuple(
            _point(
                preset,
                n,
                schedules.growth_crash(
                    n,
                    growth_factor=growth_factor,
                    growth_steps=growth_steps,
                    period=period,
                    crash_target=max(2, n // crash_divisor),
                    horizon=preset.parallel_time,
                ),
            )
            for n in preset.population_sizes
        )

    return ScenarioSpec(
        name="boom_bust",
        description="Exponential growth for several periods, then a crash to n/crash_divisor",
        points=points,
        metrics=_ADVERSARIAL_METRICS,
        keep_series=True,
        tags=("adversarial",),
        schedule_kind="growth_crash",
        knobs=("crash_divisor", "growth_factor", "growth_steps", "period"),
    )


@scenario
def churn() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        period = int(preset.extra.get("period", max(1, preset.parallel_time // 10)))
        low_divisor = int(preset.extra.get("low_divisor", 10))
        return tuple(
            _point(
                preset,
                n,
                schedules.random_churn(
                    n,
                    low=max(2, n // low_divisor),
                    high=n,
                    period=period,
                    horizon=preset.parallel_time,
                    seed=preset.seed + n,
                ),
            )
            for n in preset.population_sizes
        )

    return ScenarioSpec(
        name="churn",
        description="Sustained random churn: resize to a random size in [n/low_divisor, n] every period",
        points=points,
        metrics=_ADVERSARIAL_METRICS,
        keep_series=True,
        tags=("adversarial",),
        schedule_kind="random_churn",
        knobs=("low_divisor", "period"),
    )


@scenario
def repeated_decimation() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        period = int(preset.extra.get("period", max(1, preset.parallel_time // 6)))
        factor = float(preset.extra.get("factor", 2.0))
        floor = int(preset.extra.get("floor", 16))
        return tuple(
            _point(
                preset,
                n,
                schedules.repeated_decimation(
                    n,
                    factor=factor,
                    period=period,
                    horizon=preset.parallel_time,
                    floor=floor,
                ),
            )
            for n in preset.population_sizes
        )

    return ScenarioSpec(
        name="repeated_decimation",
        description="Fig. 4's decimation repeated: divide the population by factor every period, down to a floor",
        points=points,
        metrics=_ADVERSARIAL_METRICS,
        keep_series=True,
        tags=("adversarial",),
        schedule_kind="repeated_decimation",
        knobs=("factor", "floor", "period"),
    )


def _trace_points(
    preset: "ExperimentPreset", default_trace: str
) -> tuple[ScenarioPoint, ...]:
    """One point per population size, replaying the preset's trace."""
    trace = bundled_trace(str(preset.extra.get("trace", default_trace)))
    return tuple(
        _point(
            preset,
            n,
            trace.resample(horizon=preset.parallel_time, n=n),
        )
        for n in preset.population_sizes
    )


@scenario
def flash_crowd() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        return _trace_points(preset, "flash_crowd")

    return ScenarioSpec(
        name="flash_crowd",
        description="Trace-driven flash crowd: calm baseline, sudden 10x spike, decay",
        points=points,
        metrics=_ADVERSARIAL_METRICS,
        keep_series=True,
        tags=("adversarial", "trace"),
        schedule_kind="trace",
        knobs=("trace",),
    )


@scenario
def diurnal() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        return _trace_points(preset, "diurnal")

    return ScenarioSpec(
        name="diurnal",
        description="Trace-driven diurnal load curve: overnight trough, daytime peak",
        points=points,
        metrics=_ADVERSARIAL_METRICS,
        keep_series=True,
        tags=("adversarial", "trace"),
        schedule_kind="trace",
        knobs=("trace",),
    )


def failover_phases(
    n: int, *, horizon: int, outage_divisor: int = 10
) -> tuple[Phase, ...]:
    """The failover timeline: steady -> outage (n/divisor) -> recovery (n).

    The horizon is split roughly in thirds; the outage phase starts with a
    crash to ``n // outage_divisor`` agents and the recovery phase restores
    the full population.
    """
    steady = max(1, horizon // 3)
    outage = max(1, horizon // 3)
    recovery = max(1, horizon - steady - outage)
    return (
        Phase("steady", steady),
        Phase("outage", outage, start_size=max(2, n // outage_divisor)),
        Phase("recovery", recovery, start_size=n),
    )


@scenario
def failover() -> ScenarioSpec:
    def points(preset: ExperimentPreset, params: ProtocolParameters):
        outage_divisor = int(preset.extra.get("outage_divisor", 10))
        built = []
        for n in preset.population_sizes:
            phases = failover_phases(
                n, horizon=preset.parallel_time, outage_divisor=outage_divisor
            )
            built.append(
                ScenarioPoint(
                    n=n,
                    seed=preset.seed + n,
                    parallel_time=preset.parallel_time,
                    trials=preset.trials,
                    resize_schedule=chain_phases(phases),
                    info={"phases": phase_boundaries(phases)},
                )
            )
        return tuple(built)

    return ScenarioSpec(
        name="failover",
        description="Multi-phase failover: steady state, outage to n/outage_divisor, recovery",
        points=points,
        metrics=_ADVERSARIAL_METRICS + (phase_stats,),
        keep_series=True,
        tags=("adversarial", "multi_phase"),
        schedule_kind="multi_phase",
        knobs=("outage_divisor",),
    )
