"""Scenario execution: one entry point for every registered workload.

:func:`run_scenario` turns a :class:`repro.scenarios.spec.ScenarioSpec` into
an :class:`repro.experiments.base.ExperimentResult`: it resolves the effort
preset, applies any protocol-parameter overrides, expands the spec into
workload points, picks an engine per point (the spec's pinned engine, an
explicit request, or :func:`repro.engine.registry.choose_engine` when
neither is given), runs each point through the shared estimate-trace
machinery, and summarises it with the spec's metric extractors.

:func:`run_sweep` does the same for every combination of a
:class:`~repro.scenarios.spec.SweepSpec` parameter grid.

All engine/effort validation happens *before* any simulation starts, so a
bad combination fails in milliseconds with a one-line error instead of a
mid-run traceback.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.params import ProtocolParameters
from repro.engine.errors import ConfigurationError, UnsupportedEngineError
from repro.engine.options import ExecutionOptions, execution_metadata
from repro.engine.parallel import execute_shards, resolve_workers
from repro.engine.registry import choose_engine, engine_names
from repro.engine.runner import CHECKPOINT_MANIFEST
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - the experiments layer imports this
    # module at definition time, so runtime imports of it happen lazily
    # inside the functions below.
    from repro.experiments.base import ExperimentPreset, ExperimentResult

__all__ = ["run_scenario", "run_sweep", "resolve_preset", "resolve_params"]


def _resolve_spec(spec_or_name: ScenarioSpec | str) -> ScenarioSpec:
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    return get_scenario(spec_or_name)


def resolve_preset(
    spec: ScenarioSpec, effort: str, preset: "ExperimentPreset | None" = None
) -> "ExperimentPreset":
    """The preset a scenario runs at: explicit, or looked up by effort."""
    from repro.experiments.config import PRESETS

    if preset is not None:
        return preset
    by_effort = PRESETS.get(spec.id)
    if by_effort is None:
        raise ConfigurationError(
            f"scenario {spec.name!r} has no presets registered under "
            f"{spec.id!r}; pass an explicit preset"
        )
    if effort not in by_effort:
        raise ConfigurationError(
            f"scenario {spec.name!r} has no {effort!r} preset; available "
            f"efforts: {', '.join(sorted(by_effort))}"
        )
    return by_effort[effort]


def resolve_params(spec: ScenarioSpec, preset: "ExperimentPreset") -> ProtocolParameters:
    """Protocol constants for a run, with sweep overrides applied.

    Overriding ``k`` without ``grv_samples`` re-derives the per-call sample
    count from the new ``k`` (the Algorithm 3 default), mirroring how
    :class:`~repro.core.params.ProtocolParameters` behaves at construction.
    """
    params = spec.params_factory()
    overrides = preset.extra.get("params_overrides")
    if overrides:
        overrides = dict(overrides)
        if "k" in overrides and "grv_samples" not in overrides:
            overrides["grv_samples"] = 0  # sentinel: re-derive from k
        try:
            params = dataclasses.replace(params, **overrides)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid protocol parameter overrides {overrides!r}: {exc}"
            ) from exc
    return params


def _validate_engine(spec: ScenarioSpec, engine: str | None) -> None:
    """Reject bad engine requests before any simulation work starts."""
    if engine is None or engine == "auto":
        return
    if engine not in engine_names():
        raise ConfigurationError(
            f"unknown engine {engine!r}; available engines: "
            f"{', '.join(engine_names())} (or 'auto')"
        )
    if not spec.supports_engine(engine):
        raise UnsupportedEngineError(
            f"scenario {spec.name!r} supports engine(s) "
            f"{', '.join(spec.engines)}, got {engine!r}"
        )


def _engine_for_point(
    spec: ScenarioSpec,
    requested: str | None,
    point_trials: int,
    point_n: int,
    params: ProtocolParameters,
    workers: int | None = None,
) -> str:
    if requested is not None and requested != "auto":
        return requested
    if requested is None and spec.engine is not None:
        return spec.engine
    chosen = choose_engine(
        spec.protocol_factory(params), point_trials, point_n, workers=workers
    )
    if chosen not in spec.engines:
        chosen = spec.engines[0]
    return chosen


def _checkpoint_slug(label: str) -> str:
    """A filesystem-safe directory name for one point/combination label."""
    return re.sub(r"[^A-Za-z0-9._=,+-]+", "_", label) or "point"


def _subdir(root: Any, label: str) -> str | None:
    """The per-point/per-combo checkpoint directory under ``root``."""
    if root is None:
        return None
    return str(Path(root) / _checkpoint_slug(label))


def _sniff_checkpoint_every(resume_from: Any) -> int | None:
    """Recover the checkpoint cadence from any manifest under ``resume_from``.

    Lets ``resume_from`` alone continue a multi-point run: every point of
    one scenario invocation shares the same cadence, so the first readable
    per-point manifest pins it; points that never started fall back to it.
    Returns ``None`` when no manifest exists yet (fresh start — the caller
    must then supply ``checkpoint_every``).
    """
    if resume_from is None:
        return None
    for manifest in sorted(Path(resume_from).glob(f"*/{CHECKPOINT_MANIFEST}")):
        try:
            return int(json.loads(manifest.read_text())["checkpoint_every"])
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return None


def run_scenario(
    spec_or_name: ScenarioSpec | str,
    *,
    options: ExecutionOptions | None = None,
    effort: str = "quick",
    preset: ExperimentPreset | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
    jit: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_dir: Any = None,
    resume_from: Any = None,
    interrupt_after: int | None = None,
) -> ExperimentResult:
    """Run one scenario and return its :class:`ExperimentResult`.

    Parameters
    ----------
    spec_or_name:
        A :class:`ScenarioSpec` or the name of a registered scenario.
    options:
        A frozen :class:`repro.engine.options.ExecutionOptions` bundling
        every execution knob below.  Passing ``options`` together with a
        conflicting legacy keyword raises a
        :class:`~repro.engine.errors.ConfigurationError`; the legacy
        keywords remain fully supported and build an ``ExecutionOptions``
        internally.
    effort:
        Preset effort level (``"quick"`` / ``"default"`` / ``"paper"``);
        ignored when an explicit ``preset`` is passed.
    engine:
        Engine name to force for every point, ``"auto"`` to auto-select per
        point even if the spec pins an engine, or ``None`` (default) to use
        the spec's pinned engine — falling back to auto-selection via
        :func:`repro.engine.registry.choose_engine` when none is pinned.
    workers:
        Sharded execution of every point's trials (see
        :mod:`repro.engine.parallel`): ``None`` (default) keeps the serial
        path, ``"auto"`` uses the capped CPU count, an integer fans each
        point's row-shards over that many worker processes.  Per-trial
        results are bit-identical for any ``workers >= 1`` — only
        wall-clock time changes.  Bespoke-executor scenarios (recorder
        workloads pinned to the sequential engine) always run serially;
        requesting workers for them is recorded in the result metadata but
        has no effect.
    jit:
        Request the compiled kernel backend (:mod:`repro.kernels`) for
        every point that runs on an engine supporting it.  Best effort
        end to end: points on other engines, and machines where the
        backend is unavailable, run the NumPy reference kernels — the
        request and the availability outcome are recorded in the result
        metadata.
    checkpoint_every / checkpoint_dir / resume_from / interrupt_after:
        Crash recovery for long-horizon runs (see
        :func:`repro.engine.runner.run_engine_trials`): each workload
        point checkpoints into its own subdirectory of ``checkpoint_dir``
        (named after the point's series label), and ``resume_from``
        continues an interrupted invocation — completed points return
        instantly from their final checkpoints, the interrupted point
        resumes mid-run, and the rest run fresh.  ``resume_from`` alone is
        enough: the cadence is recovered from the run's own manifests.
        Bespoke-executor scenarios run uncheckpointed (recorded in the
        result metadata).  A resumed result is bit-identical to an
        uninterrupted one.
    """
    # Imported here: the experiments layer imports repro.scenarios at
    # definition time, so the reverse dependency must stay lazy.
    from repro.experiments.base import ExperimentResult
    from repro.experiments.figures import run_estimate_trace

    opts = ExecutionOptions.merge(
        options,
        effort=effort,
        preset=preset,
        engine=engine,
        workers=workers,
        jit=jit,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        resume_from=resume_from,
        interrupt_after=interrupt_after,
    )
    effort, preset, engine = opts.effort, opts.preset, opts.engine
    jit, interrupt_after = opts.jit, opts.interrupt_after
    checkpoint_every, checkpoint_dir = opts.checkpoint_every, opts.checkpoint_dir
    resume_from = opts.resume_from

    spec = _resolve_spec(spec_or_name)
    _validate_engine(spec, engine)
    requested_workers = opts.workers
    workers = resolve_workers(opts.workers)
    preset = resolve_preset(spec, effort, preset)
    params = resolve_params(spec, preset)
    checkpointing = opts.checkpointing
    if checkpointing:
        if checkpoint_dir is None:
            checkpoint_dir = resume_from
        if checkpoint_every is None:
            checkpoint_every = _sniff_checkpoint_every(resume_from)

    if spec.executor is not None:
        resolved = _engine_for_point(
            spec, engine, preset.trials, max(preset.population_sizes, default=2), params
        )
        result = spec.executor(spec, preset, params, resolved)
        if workers is not None:
            result.metadata.setdefault("workers", "serial-only (bespoke executor)")
        if jit:
            result.metadata.setdefault("jit", "ignored (bespoke executor)")
        if checkpointing:
            result.metadata.setdefault(
                "checkpointing", "ignored (bespoke executor)"
            )
        execution = execution_metadata(
            requested_engine=engine,
            engines_used=[resolved],
            workers=None,  # bespoke executors always run serially
            jit=False,  # ... and never reach the vectorised kernels
        )
        execution["workers_requested"] = requested_workers
        execution["jit_requested"] = jit
        result.metadata["execution"] = execution
        return result

    points = tuple(spec.points(preset, params))
    if not points:
        raise ConfigurationError(
            f"scenario {spec.name!r} expanded to no workload points for "
            f"preset {preset.name!r}"
        )

    rows: list[dict[str, Any]] = []
    series: dict[str, dict[str, list[float]]] = {}
    engines_used: list[str] = []
    shard_timings: dict[str, list[dict[str, Any]]] = {}
    phases: dict[str, list[dict[str, Any]]] = {}
    for point in points:
        if point.info.get("phases"):
            # Multi-phase points carry their boundaries; stamp them into
            # the result metadata so tables/figures can split by phase.
            phases[point.series_label] = [
                dict(boundary) for boundary in point.info["phases"]
            ]
        point_engine = _engine_for_point(
            spec, engine, point.trials, point.n, params, workers
        )
        engines_used.append(point_engine)
        trace = run_estimate_trace(
            point.n,
            point.parallel_time,
            trials=point.trials,
            seed=point.seed,
            params=params,
            resize_schedule=point.resize_schedule,
            initial_estimate=point.initial_estimate,
            engine=point_engine,
            workers=workers,
            jit=jit,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=_subdir(checkpoint_dir, point.series_label),
            resume_from=_subdir(resume_from, point.series_label),
            interrupt_after=interrupt_after,
        )
        row: dict[str, Any] = {}
        for metric in spec.metrics:
            row.update(metric(trace, point, preset, params))
        rows.append(row)
        if spec.keep_series:
            series[point.series_label] = trace.series()
        if trace.shard_timings:
            shard_timings[point.series_label] = trace.shard_timings

    engine_label = engines_used[0] if len(set(engines_used)) == 1 else "auto"
    execution = execution_metadata(
        requested_engine=engine,
        engines_used=engines_used,
        workers=workers,
        jit=jit,
    )
    execution["workers_requested"] = requested_workers
    if checkpointing:
        execution["checkpoint_every"] = checkpoint_every
        execution["checkpoint_dir"] = (
            None if checkpoint_dir is None else str(checkpoint_dir)
        )
        execution["resumed_from"] = None if resume_from is None else str(resume_from)
    metadata: dict[str, Any] = {
        "preset": preset.name,
        "params": params.describe(),
        "engine": engine_label,
        "scenario": spec.name,
        "execution": execution,
    }
    if phases:
        metadata["phases"] = phases
    if workers is not None:
        metadata["workers"] = workers
        metadata["shard_timings"] = shard_timings
    if jit:
        metadata["jit"] = execution["jit"]
    return ExperimentResult(
        experiment=spec.id,
        description=spec.description_for(preset),
        rows=rows,
        series=series,
        metadata=metadata,
    )


def _run_sweep_combo(payload: dict[str, Any]) -> "ExperimentResult":
    """Run one sweep combination; module-level so worker processes can
    unpickle it.  The scenario travels by registry name (the spec itself
    may hold non-picklable factories) and is re-resolved in the worker.
    """
    return run_scenario(
        payload["scenario"],
        preset=payload["preset"],
        engine=payload["engine"],
        workers=payload["workers"],
        jit=payload["jit"],
        checkpoint_every=payload.get("checkpoint_every"),
        checkpoint_dir=payload.get("checkpoint_dir"),
        resume_from=payload.get("resume_from"),
        interrupt_after=payload.get("interrupt_after"),
    )


def run_sweep(
    sweep: SweepSpec,
    *,
    options: ExecutionOptions | None = None,
    effort: str = "quick",
    preset: ExperimentPreset | None = None,
    engine: str | None = None,
    workers: int | str | None = None,
    jit: bool = False,
    checkpoint_every: int | None = None,
    checkpoint_dir: Any = None,
    resume_from: Any = None,
    interrupt_after: int | None = None,
) -> list[tuple[str, ExperimentResult]]:
    """Run every combination of a sweep grid; returns ``(label, result)`` pairs.

    ``options`` bundles the execution knobs exactly as on
    :func:`run_scenario`: pass either the object or the legacy keywords,
    not both.

    The whole grid is expanded and validated up front — protocol-parameter
    axes *and* workload points (schedules, population sizes) — so a bad axis
    value fails before the first simulation instead of mid-sweep after
    earlier combinations already ran.

    ``workers`` shards the sweep: with more than one combination, each grid
    point becomes an independent job and the jobs fan out over the worker
    pool (each combination runs serially inside its worker); a single
    combination instead delegates ``workers`` to :func:`run_scenario`,
    which shards that combination's trials.  Either way the split is a pure
    function of the grid — results are bit-identical for any
    ``workers >= 1`` and are returned in grid order with per-combination
    wall-clock seconds in ``metadata["sweep_seconds"]``.

    The checkpoint knobs behave as in :func:`run_scenario`, one level up:
    each grid combination checkpoints into its own subdirectory of
    ``checkpoint_dir`` named after the combination label, so an
    interrupted sweep resumed with ``resume_from`` skips completed
    combinations via their final checkpoints and continues the
    interrupted one mid-run.
    """
    opts = ExecutionOptions.merge(
        options,
        effort=effort,
        preset=preset,
        engine=engine,
        workers=workers,
        jit=jit,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        resume_from=resume_from,
        interrupt_after=interrupt_after,
    )
    effort, preset, engine, workers = opts.effort, opts.preset, opts.engine, opts.workers
    jit, interrupt_after = opts.jit, opts.interrupt_after
    checkpoint_every, checkpoint_dir = opts.checkpoint_every, opts.checkpoint_dir
    resume_from = opts.resume_from

    spec = _resolve_spec(sweep.scenario)
    _validate_engine(spec, engine)
    resolved_workers = resolve_workers(workers)
    base = resolve_preset(spec, effort, preset)
    expanded = sweep.expand(base)
    checkpointing = opts.checkpointing
    if checkpointing:
        if checkpoint_dir is None:
            checkpoint_dir = resume_from
        if checkpoint_every is None and resume_from is not None:
            # Combination subdirs nest point subdirs: */*/manifest.json.
            for manifest in sorted(
                Path(resume_from).glob(f"*/*/{CHECKPOINT_MANIFEST}")
            ):
                try:
                    checkpoint_every = int(
                        json.loads(manifest.read_text())["checkpoint_every"]
                    )
                    break
                except (OSError, ValueError, KeyError, TypeError):
                    continue
    for _, combo_preset in expanded:
        combo_params = resolve_params(spec, combo_preset)
        if spec.executor is None:
            # Point construction validates population sizes, trial counts
            # and resize schedules for every engine.
            tuple(spec.points(combo_preset, combo_params))

    if resolved_workers is None or len(expanded) == 1:
        # Serial path (or a single combination, where trial-level sharding
        # inside run_scenario is the better use of the pool).
        results = []
        for label, combo_preset in expanded:
            result = run_scenario(
                spec,
                preset=combo_preset,
                engine=engine,
                workers=workers,
                jit=jit,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=_subdir(checkpoint_dir, label),
                resume_from=_subdir(resume_from, label),
                interrupt_after=interrupt_after,
            )
            result.metadata["sweep"] = label
            results.append((label, result))
        return results

    payloads = [
        {
            "scenario": sweep.scenario,
            "preset": combo_preset,
            "engine": engine,
            # Combinations are the unit of parallelism; each runs serially
            # inside its worker so results match workers=1 bit for bit.
            "workers": None,
            "jit": jit,
            "checkpoint_every": checkpoint_every,
            "checkpoint_dir": _subdir(checkpoint_dir, label),
            "resume_from": _subdir(resume_from, label),
            "interrupt_after": interrupt_after,
        }
        for label, combo_preset in expanded
    ]
    combo_results, timings = execute_shards(
        _run_sweep_combo, payloads, workers=resolved_workers
    )
    results = []
    for (label, _), result, timing in zip(expanded, combo_results, timings):
        result.metadata["sweep"] = label
        result.metadata["workers"] = resolved_workers
        result.metadata["sweep_seconds"] = timing.seconds
        # Each combination ran serially inside its worker; the sweep-level
        # fan-out is the resolved parallelism for this result.
        result.metadata["execution"]["sweep_workers"] = resolved_workers
        results.append((label, result))
    return results
