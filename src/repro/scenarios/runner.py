"""Scenario execution: one entry point for every registered workload.

:func:`run_scenario` turns a :class:`repro.scenarios.spec.ScenarioSpec` into
an :class:`repro.experiments.base.ExperimentResult`: it resolves the effort
preset, applies any protocol-parameter overrides, expands the spec into
workload points, picks an engine per point (the spec's pinned engine, an
explicit request, or :func:`repro.engine.registry.choose_engine` when
neither is given), runs each point through the shared estimate-trace
machinery, and summarises it with the spec's metric extractors.

:func:`run_sweep` does the same for every combination of a
:class:`~repro.scenarios.spec.SweepSpec` parameter grid.

All engine/effort validation happens *before* any simulation starts, so a
bad combination fails in milliseconds with a one-line error instead of a
mid-run traceback.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.core.params import ProtocolParameters
from repro.engine.errors import ConfigurationError, UnsupportedEngineError
from repro.engine.registry import ENGINE_NAMES, choose_engine
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - the experiments layer imports this
    # module at definition time, so runtime imports of it happen lazily
    # inside the functions below.
    from repro.experiments.base import ExperimentPreset, ExperimentResult

__all__ = ["run_scenario", "run_sweep", "resolve_preset", "resolve_params"]


def _resolve_spec(spec_or_name: ScenarioSpec | str) -> ScenarioSpec:
    if isinstance(spec_or_name, ScenarioSpec):
        return spec_or_name
    return get_scenario(spec_or_name)


def resolve_preset(
    spec: ScenarioSpec, effort: str, preset: "ExperimentPreset | None" = None
) -> "ExperimentPreset":
    """The preset a scenario runs at: explicit, or looked up by effort."""
    from repro.experiments.config import PRESETS

    if preset is not None:
        return preset
    by_effort = PRESETS.get(spec.id)
    if by_effort is None:
        raise ConfigurationError(
            f"scenario {spec.name!r} has no presets registered under "
            f"{spec.id!r}; pass an explicit preset"
        )
    if effort not in by_effort:
        raise ConfigurationError(
            f"scenario {spec.name!r} has no {effort!r} preset; available "
            f"efforts: {', '.join(sorted(by_effort))}"
        )
    return by_effort[effort]


def resolve_params(spec: ScenarioSpec, preset: "ExperimentPreset") -> ProtocolParameters:
    """Protocol constants for a run, with sweep overrides applied.

    Overriding ``k`` without ``grv_samples`` re-derives the per-call sample
    count from the new ``k`` (the Algorithm 3 default), mirroring how
    :class:`~repro.core.params.ProtocolParameters` behaves at construction.
    """
    params = spec.params_factory()
    overrides = preset.extra.get("params_overrides")
    if overrides:
        overrides = dict(overrides)
        if "k" in overrides and "grv_samples" not in overrides:
            overrides["grv_samples"] = 0  # sentinel: re-derive from k
        try:
            params = dataclasses.replace(params, **overrides)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid protocol parameter overrides {overrides!r}: {exc}"
            ) from exc
    return params


def _validate_engine(spec: ScenarioSpec, engine: str | None) -> None:
    """Reject bad engine requests before any simulation work starts."""
    if engine is None or engine == "auto":
        return
    if engine not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; available engines: "
            f"{', '.join(ENGINE_NAMES)} (or 'auto')"
        )
    if not spec.supports_engine(engine):
        raise UnsupportedEngineError(
            f"scenario {spec.name!r} supports engine(s) "
            f"{', '.join(spec.engines)}, got {engine!r}"
        )


def _engine_for_point(
    spec: ScenarioSpec,
    requested: str | None,
    point_trials: int,
    point_n: int,
    params: ProtocolParameters,
) -> str:
    if requested is not None and requested != "auto":
        return requested
    if requested is None and spec.engine is not None:
        return spec.engine
    chosen = choose_engine(spec.protocol_factory(params), point_trials, point_n)
    if chosen not in spec.engines:
        chosen = spec.engines[0]
    return chosen


def run_scenario(
    spec_or_name: ScenarioSpec | str,
    *,
    effort: str = "quick",
    preset: ExperimentPreset | None = None,
    engine: str | None = None,
) -> ExperimentResult:
    """Run one scenario and return its :class:`ExperimentResult`.

    Parameters
    ----------
    spec_or_name:
        A :class:`ScenarioSpec` or the name of a registered scenario.
    effort:
        Preset effort level (``"quick"`` / ``"default"`` / ``"paper"``);
        ignored when an explicit ``preset`` is passed.
    engine:
        Engine name to force for every point, ``"auto"`` to auto-select per
        point even if the spec pins an engine, or ``None`` (default) to use
        the spec's pinned engine — falling back to auto-selection via
        :func:`repro.engine.registry.choose_engine` when none is pinned.
    """
    # Imported here: the experiments layer imports repro.scenarios at
    # definition time, so the reverse dependency must stay lazy.
    from repro.experiments.base import ExperimentResult
    from repro.experiments.figures import run_estimate_trace

    spec = _resolve_spec(spec_or_name)
    _validate_engine(spec, engine)
    preset = resolve_preset(spec, effort, preset)
    params = resolve_params(spec, preset)

    if spec.executor is not None:
        resolved = _engine_for_point(
            spec, engine, preset.trials, max(preset.population_sizes, default=2), params
        )
        return spec.executor(spec, preset, params, resolved)

    points = tuple(spec.points(preset, params))
    if not points:
        raise ConfigurationError(
            f"scenario {spec.name!r} expanded to no workload points for "
            f"preset {preset.name!r}"
        )

    rows: list[dict[str, Any]] = []
    series: dict[str, dict[str, list[float]]] = {}
    engines_used: list[str] = []
    for point in points:
        point_engine = _engine_for_point(spec, engine, point.trials, point.n, params)
        engines_used.append(point_engine)
        trace = run_estimate_trace(
            point.n,
            point.parallel_time,
            trials=point.trials,
            seed=point.seed,
            params=params,
            resize_schedule=point.resize_schedule,
            initial_estimate=point.initial_estimate,
            engine=point_engine,
        )
        row: dict[str, Any] = {}
        for metric in spec.metrics:
            row.update(metric(trace, point, preset, params))
        rows.append(row)
        if spec.keep_series:
            series[point.series_label] = trace.series()

    engine_label = engines_used[0] if len(set(engines_used)) == 1 else "auto"
    return ExperimentResult(
        experiment=spec.id,
        description=spec.description_for(preset),
        rows=rows,
        series=series,
        metadata={
            "preset": preset.name,
            "params": params.describe(),
            "engine": engine_label,
            "scenario": spec.name,
        },
    )


def run_sweep(
    sweep: SweepSpec,
    *,
    effort: str = "quick",
    preset: ExperimentPreset | None = None,
    engine: str | None = None,
) -> list[tuple[str, ExperimentResult]]:
    """Run every combination of a sweep grid; returns ``(label, result)`` pairs.

    The whole grid is expanded and validated up front — protocol-parameter
    axes *and* workload points (schedules, population sizes) — so a bad axis
    value fails before the first simulation instead of mid-sweep after
    earlier combinations already ran.
    """
    spec = _resolve_spec(sweep.scenario)
    _validate_engine(spec, engine)
    base = resolve_preset(spec, effort, preset)
    expanded = sweep.expand(base)
    for _, combo_preset in expanded:
        combo_params = resolve_params(spec, combo_preset)
        if spec.executor is None:
            # Point construction validates population sizes, trial counts
            # and resize schedules for every engine.
            tuple(spec.points(combo_preset, combo_params))
    results = []
    for label, combo_preset in expanded:
        result = run_scenario(spec, preset=combo_preset, engine=engine)
        result.metadata["sweep"] = label
        results.append((label, result))
    return results
