"""Trace-driven resize schedules: CSV load curves -> adversary schedules.

The synthetic builders in :mod:`repro.scenarios.schedules` generate shapes;
a :class:`Trace` instead carries a *measured* (or measured-looking) load
curve — request rates over a day, a flash crowd, connection churn — and
resamples it onto the simulation's interaction-time axis, so the protocol
is evaluated under realistic population dynamics.

Two CSV layouts are understood, sniffed from the header row:

* ``timestamp,size`` (aliases ``time``/``t``/``step`` for the first
  column) — absolute population sizes at monotonically increasing times.
  The time unit is arbitrary: only the *relative* spacing matters, because
  :meth:`Trace.resample` maps the span onto the run horizon.
* ``step,delta`` — cumulative sizes: row ``i``'s size is the running sum
  of the deltas up to and including row ``i`` (the first delta is the
  starting size).

Validation is strict and up front: an empty CSV, non-monotonic or
duplicate times, non-numeric cells, and sizes below 2 (the engine minimum)
all raise :class:`~repro.engine.errors.InvalidScheduleError` with the
offending row.

A handful of example traces ship with the package (under
``repro/scenarios/data/``) and back the ``flash_crowd`` and ``diurnal``
catalog scenarios; :func:`bundled_trace` loads them by name.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.engine.errors import InvalidScheduleError
from repro.scenarios.schedules import Schedule

__all__ = ["Trace", "bundled_trace", "bundled_trace_names"]

#: Directory holding the bundled example traces (shipped as package data).
_DATA_DIR = Path(__file__).resolve().parent / "data"

#: Accepted spellings of the time column in the absolute-size layout.
_TIME_COLUMNS = ("timestamp", "time", "t", "step")


@dataclass(frozen=True)
class Trace:
    """A validated load curve: strictly increasing times, sizes >= 2."""

    name: str
    times: tuple[float, ...]
    sizes: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise InvalidScheduleError(f"trace {self.name!r} has no samples")
        if len(self.times) != len(self.sizes):
            raise InvalidScheduleError(
                f"trace {self.name!r}: {len(self.times)} times but "
                f"{len(self.sizes)} sizes"
            )
        for i in range(1, len(self.times)):
            if self.times[i] <= self.times[i - 1]:
                raise InvalidScheduleError(
                    f"trace {self.name!r}: non-monotonic time at sample {i} "
                    f"({self.times[i]!r} after {self.times[i - 1]!r})"
                )
        for i, size in enumerate(self.sizes):
            if size < 2:
                raise InvalidScheduleError(
                    f"trace {self.name!r}: size {size!r} at sample {i} is "
                    "below the engine minimum of 2"
                )

    # ------------------------------------------------------------- loading

    @classmethod
    def from_csv(cls, path: str | Path, *, name: str | None = None) -> "Trace":
        """Load a trace from a CSV file (layouts sniffed from the header)."""
        path = Path(path)
        trace_name = name if name is not None else path.stem
        try:
            text = path.read_text()
        except OSError as exc:
            raise InvalidScheduleError(
                f"trace {trace_name!r}: cannot read {path}: {exc}"
            ) from exc
        return cls.from_text(text, name=trace_name)

    @classmethod
    def from_text(cls, text: str, *, name: str = "trace") -> "Trace":
        """Parse CSV text into a trace (see the module docstring for layouts)."""
        rows = [
            row
            for row in csv.reader(io.StringIO(text))
            if row and any(cell.strip() for cell in row)
        ]
        if not rows:
            raise InvalidScheduleError(f"trace {name!r}: empty CSV")
        header = [cell.strip().lower() for cell in rows[0]]
        body = rows[1:]
        if not body:
            raise InvalidScheduleError(f"trace {name!r}: CSV has a header but no data rows")

        if "size" in header:
            time_column = next(
                (header.index(column) for column in _TIME_COLUMNS if column in header),
                None,
            )
            if time_column is None:
                raise InvalidScheduleError(
                    f"trace {name!r}: no time column among {_TIME_COLUMNS} "
                    f"in header {header}"
                )
            size_column = header.index("size")
            times = [
                _cell(name, row, time_column, line) for line, row in enumerate(body, 2)
            ]
            sizes = [
                _cell(name, row, size_column, line) for line, row in enumerate(body, 2)
            ]
        elif "delta" in header and "step" in header:
            step_column = header.index("step")
            delta_column = header.index("delta")
            times = [
                _cell(name, row, step_column, line) for line, row in enumerate(body, 2)
            ]
            running = 0.0
            sizes = []
            for line, row in enumerate(body, 2):
                running += _cell(name, row, delta_column, line)
                sizes.append(running)
        else:
            raise InvalidScheduleError(
                f"trace {name!r}: unrecognised header {header}; expected "
                "(timestamp|time|t|step, size) or (step, delta)"
            )
        return cls(name=name, times=tuple(times), sizes=tuple(sizes))

    # ---------------------------------------------------------- resampling

    @property
    def initial_size(self) -> float:
        """The curve's starting size (mapped to the run's ``n``)."""
        return self.sizes[0]

    def resample(self, *, horizon: int, n: int) -> Schedule:
        """Map the curve onto a run: ``n`` agents over ``horizon`` time.

        The trace's first sample becomes the initial population (so the
        whole curve is scaled by ``n / sizes[0]``), its time span is mapped
        linearly onto ``[0, horizon - 1]``, and every later sample becomes a
        resize event at the corresponding parallel time (clamped into
        ``[1, horizon - 1]`` so every event is observable).  Samples that
        collide on one parallel-time step after rounding keep the last —
        the curve's most recent value wins, as it would in a real replay.
        Scaled sizes are clamped to the engine minimum of 2.
        """
        if n < 2:
            raise InvalidScheduleError(f"population size must be at least 2, got {n}")
        if horizon < 2:
            raise InvalidScheduleError(f"horizon must be at least 2, got {horizon}")
        scale = n / self.sizes[0]
        span = self.times[-1] - self.times[0]
        events: dict[int, int] = {}
        for time, size in zip(self.times[1:], self.sizes[1:]):
            fraction = (time - self.times[0]) / span
            step = min(max(int(round(fraction * (horizon - 1))), 1), horizon - 1)
            events[step] = max(2, int(round(size * scale)))
        return Schedule(
            sorted(events.items()),
            kind="trace",
            label=f"trace {self.name} ({len(self.times)} samples) -> n={n}",
        )


def _cell(name: str, row: Sequence[str], column: int, line: int) -> float:
    """One numeric CSV cell, with a row-numbered error on anything else."""
    try:
        value = float(row[column].strip())
    except (IndexError, ValueError) as exc:
        raise InvalidScheduleError(
            f"trace {name!r}: bad numeric cell in CSV line {line}: {row!r}"
        ) from exc
    if value != value or value in (float("inf"), float("-inf")):
        raise InvalidScheduleError(
            f"trace {name!r}: non-finite value in CSV line {line}: {row!r}"
        )
    return value


def bundled_trace_names() -> tuple[str, ...]:
    """Names of the example traces shipped with the package."""
    return tuple(sorted(path.stem for path in _DATA_DIR.glob("*.csv")))


def bundled_trace(name: str) -> Trace:
    """Load a bundled example trace by name (see :func:`bundled_trace_names`)."""
    path = _DATA_DIR / f"{name}.csv"
    if not path.is_file():
        available = ", ".join(bundled_trace_names()) or "<none>"
        raise InvalidScheduleError(
            f"no bundled trace named {name!r}; available: {available}"
        )
    return Trace.from_csv(path, name=name)
