"""Declarative scenario API.

Everything needed to author, register, run and sweep a workload on the
dynamic population model:

* :class:`ScenarioSpec` / :class:`ScenarioPoint` — frozen workload specs
  (:mod:`repro.scenarios.spec`);
* :func:`scenario` / :func:`register` / :func:`get_scenario` /
  :func:`scenario_names` — the registry (:mod:`repro.scenarios.registry`);
* :func:`run_scenario` / :func:`run_sweep` — execution with automatic
  engine selection (:mod:`repro.scenarios.runner`);
* :mod:`repro.scenarios.schedules` — typed :class:`Schedule` objects and
  adversary schedule builders;
* :mod:`repro.scenarios.traces` — CSV load curves replayed as resize
  schedules (:class:`Trace`, :func:`bundled_trace`);
* :mod:`repro.scenarios.phases` — multi-phase timelines (:class:`Phase`,
  :func:`chain_phases`) with per-phase metrics;
* :mod:`repro.scenarios.fuzz` — the seeded property-based scenario fuzzer;
* :mod:`repro.scenarios.metrics` — reusable metric extractors;
* :mod:`repro.scenarios.catalog` — the adversarial scenarios beyond the
  paper's figures.

Execution knobs (engine, workers, jit, checkpointing) bundle into
:class:`repro.engine.options.ExecutionOptions`, re-exported here.
"""

from repro.engine.options import ExecutionOptions
from repro.scenarios.registry import (
    get_scenario,
    has_scenario,
    iter_scenarios,
    register,
    scenario,
    scenario_names,
    unregister,
)
from repro.scenarios.listing import scenario_listing
from repro.scenarios.phases import Phase, chain_phases, phase_boundaries
from repro.scenarios.runner import run_scenario, run_sweep
from repro.scenarios.schedules import Schedule
from repro.scenarios.spec import (
    ScenarioPoint,
    ScenarioSpec,
    SweepSpec,
    canonical_json,
    valid_sweep_axes,
)
from repro.scenarios.traces import Trace, bundled_trace, bundled_trace_names

__all__ = [
    "ExecutionOptions",
    "Phase",
    "ScenarioPoint",
    "ScenarioSpec",
    "Schedule",
    "SweepSpec",
    "Trace",
    "bundled_trace",
    "bundled_trace_names",
    "canonical_json",
    "chain_phases",
    "phase_boundaries",
    "scenario_listing",
    "get_scenario",
    "has_scenario",
    "iter_scenarios",
    "register",
    "run_scenario",
    "run_sweep",
    "scenario",
    "scenario_names",
    "unregister",
    "valid_sweep_axes",
]
