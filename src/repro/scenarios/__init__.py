"""Declarative scenario API.

Everything needed to author, register, run and sweep a workload on the
dynamic population model:

* :class:`ScenarioSpec` / :class:`ScenarioPoint` — frozen workload specs
  (:mod:`repro.scenarios.spec`);
* :func:`scenario` / :func:`register` / :func:`get_scenario` /
  :func:`scenario_names` — the registry (:mod:`repro.scenarios.registry`);
* :func:`run_scenario` / :func:`run_sweep` — execution with automatic
  engine selection (:mod:`repro.scenarios.runner`);
* :mod:`repro.scenarios.schedules` — adversary schedule builders;
* :mod:`repro.scenarios.metrics` — reusable metric extractors;
* :mod:`repro.scenarios.catalog` — the adversarial scenarios beyond the
  paper's figures.
"""

from repro.scenarios.registry import (
    get_scenario,
    has_scenario,
    iter_scenarios,
    register,
    scenario,
    scenario_names,
    unregister,
)
from repro.scenarios.listing import scenario_listing
from repro.scenarios.runner import run_scenario, run_sweep
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec, SweepSpec, canonical_json

__all__ = [
    "ScenarioPoint",
    "ScenarioSpec",
    "SweepSpec",
    "canonical_json",
    "scenario_listing",
    "get_scenario",
    "has_scenario",
    "iter_scenarios",
    "register",
    "run_scenario",
    "run_sweep",
    "scenario",
    "scenario_names",
    "unregister",
]
