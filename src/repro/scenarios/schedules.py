"""Adversary schedule builders for the scenario catalog.

The dynamic population model supports arbitrary adversarial size schedules;
the paper's evaluation only exercises a single decimation (Fig. 4).  The
builders here generate the richer schedules of the scenario catalog —
oscillation, exponential growth followed by a crash, sustained random churn,
repeated decimation — as ``(parallel_time, target_size)`` pairs, the
representation every engine understands (the sequential engine converts them
to a :class:`repro.engine.adversary.ResizeSchedule`, the array engines
consume them natively).

All builders are deterministic: :func:`random_churn` derives its sizes from
an explicit seed, so a scenario's schedule is a pure function of its preset.

Builders return a :class:`Schedule` — a ``tuple`` subclass carrying the
schedule *kind* (its family: ``"oscillation"``, ``"trace"``, ...) and a
human label alongside the pairs.  A ``Schedule`` compares, iterates,
indexes, hashes and pickles exactly like the plain pair-tuple it wraps, so
every existing consumer (``ScenarioPoint``, the engines, ``as_adversary``)
keeps working unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.engine.adversary import CompositeAdversary, ResizeSchedule, SizeAdversary
from repro.engine.errors import InvalidScheduleError

__all__ = [
    "Schedule",
    "schedule_kind_of",
    "oscillation",
    "growth_crash",
    "random_churn",
    "repeated_decimation",
    "merge_schedules",
    "as_adversary",
    "composite_adversary",
]

Pairs = tuple[tuple[int, int], ...]


class Schedule(tuple):
    """A typed resize schedule: ``(time, size)`` pairs plus provenance.

    Subclasses ``tuple`` so it is drop-in compatible with the plain
    pair-tuples the engines and :class:`~repro.scenarios.spec.ScenarioPoint`
    consume — equality against a plain tuple of the same pairs holds, and
    pickling round-trips both the pairs and the ``kind``/``label``
    metadata (carried in the instance ``__dict__``).
    """

    def __new__(
        cls,
        pairs: Iterable[tuple[int, int]] = (),
        *,
        kind: str = "custom",
        label: str = "",
    ) -> "Schedule":
        normalized = tuple((int(t), int(s)) for t, s in pairs)
        self = super().__new__(cls, normalized)
        self._kind = str(kind)
        self._label = str(label) if label else str(kind)
        return self

    @property
    def kind(self) -> str:
        """The schedule family this was built by (``"oscillation"``, ...)."""
        return self._kind

    @property
    def label(self) -> str:
        """Human one-liner describing the schedule (defaults to ``kind``)."""
        return self._label

    @property
    def pairs(self) -> Pairs:
        """The events as a plain pair-tuple."""
        return tuple(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(kind={self._kind!r}, label={self._label!r}, pairs={tuple(self)!r})"


def schedule_kind_of(pairs: Any) -> str | None:
    """The ``kind`` of a schedule-like value, or ``None`` for plain pairs."""
    return pairs.kind if isinstance(pairs, Schedule) else None


def _check_positive(name: str, value: int) -> None:
    if value < 1:
        raise InvalidScheduleError(f"{name} must be at least 1, got {value}")


def oscillation(
    n: int, *, low: int, period: int, horizon: int, start: int | None = None
) -> Schedule:
    """Alternate the population between ``low`` and ``n`` every ``period``.

    The first event (at ``start``, default one period in) shrinks to
    ``low``; each subsequent event flips back.  Events stop before
    ``horizon`` so every resize is observable within the run.
    """
    _check_positive("period", period)
    if low < 2 or low >= n:
        raise InvalidScheduleError(f"low must be in [2, n), got low={low}, n={n}")
    first = period if start is None else start
    events = []
    time, target_low = first, True
    while time < horizon:
        events.append((time, low if target_low else n))
        target_low = not target_low
        time += period
    return Schedule(
        events,
        kind="oscillation",
        label=f"oscillate {n}<->{low} every {period}",
    )


def growth_crash(
    n: int,
    *,
    growth_factor: float = 2.0,
    growth_steps: int,
    period: int,
    crash_target: int,
    horizon: int,
) -> Schedule:
    """Exponential growth for ``growth_steps`` periods, then a crash.

    The population is multiplied by ``growth_factor`` every ``period``
    parallel time; one period after the last growth step it crashes to
    ``crash_target`` — the boom-then-bust shape (a flock growing through a
    season, then decimated).
    """
    _check_positive("period", period)
    _check_positive("growth_steps", growth_steps)
    if growth_factor <= 1.0:
        raise InvalidScheduleError(
            f"growth_factor must exceed 1, got {growth_factor}"
        )
    if crash_target < 2:
        raise InvalidScheduleError(f"crash_target must be at least 2, got {crash_target}")
    events = []
    size = float(n)
    time = period
    for _ in range(growth_steps):
        if time >= horizon:
            break
        size *= growth_factor
        events.append((time, int(round(size))))
        time += period
    if time < horizon:
        events.append((time, crash_target))
    return Schedule(
        events,
        kind="growth_crash",
        label=f"x{growth_factor} for {growth_steps} steps, crash to {crash_target}",
    )


def random_churn(
    n: int, *, low: int, high: int, period: int, horizon: int, seed: int
) -> Schedule:
    """Resize to a uniformly random size in ``[low, high]`` every ``period``.

    The sizes are drawn from ``numpy``'s seeded generator, so the schedule
    is deterministic for a given ``seed`` — sustained churn without giving
    up reproducibility.
    """
    _check_positive("period", period)
    if not 2 <= low <= high:
        raise InvalidScheduleError(
            f"need 2 <= low <= high, got low={low}, high={high}"
        )
    rng = np.random.default_rng(seed)
    events = []
    time = period
    while time < horizon:
        events.append((time, int(rng.integers(low, high + 1))))
        time += period
    return Schedule(
        events,
        kind="random_churn",
        label=f"uniform [{low}, {high}] every {period} (seed {seed})",
    )


def repeated_decimation(
    n: int,
    *,
    factor: float = 2.0,
    period: int,
    horizon: int,
    floor: int = 16,
    start: int | None = None,
) -> Schedule:
    """Divide the population by ``factor`` every ``period``, down to ``floor``.

    Fig. 4's single decimation, repeated: each event shrinks the current
    size by ``factor`` until the floor is reached, forcing the protocol to
    re-adapt again and again.
    """
    _check_positive("period", period)
    if factor <= 1.0:
        raise InvalidScheduleError(f"factor must exceed 1, got {factor}")
    if floor < 2:
        raise InvalidScheduleError(f"floor must be at least 2, got {floor}")
    events = []
    size = float(n)
    time = period if start is None else start
    while time < horizon:
        size = max(float(floor), size / factor)
        target = int(round(size))
        events.append((time, target))
        if target <= floor:
            break
        time += period
    return Schedule(
        events,
        kind="repeated_decimation",
        label=f"/{factor} every {period} down to {floor}",
    )


def merge_schedules(*schedules: Sequence[tuple[int, int]]) -> Schedule:
    """Merge several pair schedules into one time-sorted schedule.

    Accepts plain pair sequences and :class:`Schedule` objects alike.
    Duplicate event times across the parts are rejected (the merged
    schedule would otherwise depend on application order).  The result
    keeps the parts' kind when they all agree, and is ``"merged"``
    otherwise.
    """
    merged = sorted(
        ((int(t), int(s)) for schedule in schedules for t, s in schedule),
        key=lambda event: event[0],
    )
    times = [t for t, _ in merged]
    if len(set(times)) != len(times):
        raise InvalidScheduleError("merged schedules must have distinct event times")
    kinds = {kind for kind in map(schedule_kind_of, schedules) if kind is not None}
    kind = kinds.pop() if len(kinds) == 1 else "merged"
    return Schedule(merged, kind=kind)


def as_adversary(pairs: Iterable[tuple[int, int]]) -> ResizeSchedule:
    """Pairs -> sequential-engine adversary (also validates the schedule)."""
    return ResizeSchedule.from_pairs(tuple(pairs))


def composite_adversary(*parts: SizeAdversary) -> CompositeAdversary:
    """Compose several adversaries, applied in the given order each step."""
    return CompositeAdversary(parts)
