"""Reusable metric extractors for scenario specs.

Each extractor has the signature ``(trace, point, preset, params) ->
mapping`` and contributes columns to the point's result row; a spec composes
several of them (:attr:`repro.scenarios.spec.ScenarioSpec.metrics`).  The
legacy paper scenarios keep their bespoke single-metric row builders (their
column layout is pinned by the equivalence tests); the extractors here serve
the adversarial catalog and user-authored scenarios.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.params import ProtocolParameters
from repro.scenarios.spec import ScenarioPoint

if TYPE_CHECKING:  # pragma: no cover - typing-only; keeps scenarios -> experiments lazy
    from repro.experiments.base import ExperimentPreset
    from repro.experiments.figures import EstimateTrace

__all__ = [
    "base_fields",
    "steady_window_stats",
    "tracking_stats",
    "schedule_fields",
    "phase_stats",
]


def base_fields(
    trace: EstimateTrace,
    point: ScenarioPoint,
    preset: ExperimentPreset,
    params: ProtocolParameters,
) -> Mapping[str, Any]:
    """Identity columns every row wants: ``n``, ``log2_n``, trials, horizon."""
    return {
        "n": point.n,
        "log2_n": math.log2(point.n),
        "trials": point.trials,
        "parallel_time": point.parallel_time,
    }


def steady_window_stats(
    trace: EstimateTrace,
    point: ScenarioPoint,
    preset: ExperimentPreset,
    params: ProtocolParameters,
) -> Mapping[str, Any]:
    """Plateau statistics over the second half of the run (Fig. 2 style)."""
    half = len(trace.parallel_time) // 2
    if half >= len(trace.minimum):
        return {
            "steady_minimum": float("nan"),
            "steady_median": float("nan"),
            "steady_maximum": float("nan"),
        }
    medians = sorted(trace.median[half:])
    return {
        "steady_minimum": min(trace.minimum[half:]),
        "steady_median": medians[len(medians) // 2],
        "steady_maximum": max(trace.maximum[half:]),
    }


def tracking_stats(
    trace: EstimateTrace,
    point: ScenarioPoint,
    preset: ExperimentPreset,
    params: ProtocolParameters,
) -> Mapping[str, Any]:
    """How well the median estimate tracks the *current* population size.

    Under a dynamic schedule the target moves: at snapshot ``t`` the valid
    level is ``log2(size_t) + log2(grv_samples)`` (the max of ``k * size``
    GRVs concentrates there).  Reported are the mean and maximum absolute
    deviation of the median estimate from that moving target over the second
    half of the run (after the initial convergence transient), plus the
    final values — a scalar summary of "did the protocol keep up".
    """
    offset = math.log2(max(1, params.grv_samples))
    half = len(trace.parallel_time) // 2
    deviations = [
        abs(median - (math.log2(size) + offset))
        for median, size in zip(trace.median[half:], trace.population_size[half:])
        if size >= 2
    ]
    final_size = trace.population_size[-1] if trace.population_size else float("nan")
    final_median = trace.median[-1] if trace.median else float("nan")
    return {
        "mean_tracking_error": (
            sum(deviations) / len(deviations) if deviations else float("nan")
        ),
        "max_tracking_error": max(deviations) if deviations else float("nan"),
        "final_population": final_size,
        "final_median": final_median,
        "final_target": (
            math.log2(final_size) + offset if final_size >= 2 else float("nan")
        ),
    }


def phase_stats(
    trace: EstimateTrace,
    point: ScenarioPoint,
    preset: ExperimentPreset,
    params: ProtocolParameters,
) -> Mapping[str, Any]:
    """Per-phase tracking error for multi-phase points.

    Reads the phase boundaries a multi-phase scenario records in
    ``point.info["phases"]`` (see :func:`repro.scenarios.phases.chain_phases`)
    and reports, for each phase, the mean and maximum absolute deviation of
    the median estimate from the moving target ``log2(size_t) +
    log2(grv_samples)`` over that phase's snapshots.  Points without phase
    info contribute no columns.
    """
    phases = point.info.get("phases")
    if not phases:
        return {}
    offset = math.log2(max(1, params.grv_samples))
    columns: dict[str, Any] = {}
    for boundary in phases:
        name, start, stop = boundary["name"], boundary["start"], boundary["stop"]
        deviations = [
            abs(median - (math.log2(size) + offset))
            for time, median, size in zip(
                trace.parallel_time, trace.median, trace.population_size
            )
            if start <= time < stop and size >= 2
        ]
        columns[f"phase_{name}_mean_error"] = (
            sum(deviations) / len(deviations) if deviations else float("nan")
        )
        columns[f"phase_{name}_max_error"] = (
            max(deviations) if deviations else float("nan")
        )
    return columns


def schedule_fields(
    trace: EstimateTrace,
    point: ScenarioPoint,
    preset: ExperimentPreset,
    params: ProtocolParameters,
) -> Mapping[str, Any]:
    """Summary of the adversary schedule the point ran under."""
    sizes = [target for _, target in point.resize_schedule]
    return {
        "resize_events": len(point.resize_schedule),
        "smallest_target": min(sizes) if sizes else point.n,
        "largest_target": max(sizes) if sizes else point.n,
    }
