"""Multi-phase scenarios: named schedule segments chained on one timeline.

A :class:`Phase` is a named segment of a run — "steady", "outage",
"recovery" — with its own duration, an optional population size to jump to
when the phase begins, and its own (phase-relative) resize events.
:func:`chain_phases` concatenates phases into a single
:class:`~repro.scenarios.schedules.Schedule` (kind ``"multi_phase"``), and
:func:`phase_boundaries` reports where each phase starts and stops on the
global timeline — the scenario runner stamps those boundaries into
``ExperimentResult.metadata["phases"]`` and the
:func:`~repro.scenarios.metrics.phase_stats` extractor splits the tracking
metrics by phase, so tables and figures can answer "how did the protocol
behave *during the outage* vs *after recovery*" directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.errors import InvalidScheduleError
from repro.scenarios.schedules import Schedule

__all__ = ["Phase", "chain_phases", "phase_boundaries"]


@dataclass(frozen=True)
class Phase:
    """One named segment of a multi-phase scenario.

    Attributes
    ----------
    name:
        Label for the segment (used in metrics columns and metadata).
    duration:
        Length of the segment in parallel time.
    start_size:
        Population size to resize to when the phase begins; ``None`` keeps
        whatever size the previous phase left (the first phase always
        starts from the run's ``n`` — a ``start_size`` there would resize
        at time zero, which no engine accepts, so it is rejected by
        :func:`chain_phases`).
    schedule:
        Phase-relative ``(time, size)`` events with times in
        ``[1, duration)``; they are shifted onto the global timeline by
        :func:`chain_phases`.
    """

    name: str
    duration: int
    start_size: int | None = None
    schedule: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidScheduleError("phase name must be non-empty")
        if self.duration < 1:
            raise InvalidScheduleError(
                f"phase {self.name!r}: duration must be at least 1, got {self.duration}"
            )
        if self.start_size is not None and self.start_size < 2:
            raise InvalidScheduleError(
                f"phase {self.name!r}: start_size must be at least 2, "
                f"got {self.start_size}"
            )
        normalized = tuple((int(t), int(s)) for t, s in self.schedule)
        object.__setattr__(self, "schedule", normalized)
        previous = 0
        for time, size in normalized:
            if not 1 <= time < self.duration:
                raise InvalidScheduleError(
                    f"phase {self.name!r}: event time {time} outside "
                    f"[1, {self.duration})"
                )
            if time <= previous:
                raise InvalidScheduleError(
                    f"phase {self.name!r}: event times must be strictly "
                    f"increasing, got {time} after {previous}"
                )
            if size < 2:
                raise InvalidScheduleError(
                    f"phase {self.name!r}: event size {size} is below the "
                    "engine minimum of 2"
                )
            previous = time


def chain_phases(phases: Sequence[Phase]) -> Schedule:
    """Concatenate phases into one global ``multi_phase`` schedule.

    Each phase's relative events are shifted by the sum of the preceding
    durations; a phase's ``start_size`` becomes a resize event at the
    instant the phase begins.  The total duration is the natural horizon
    for the run (``sum(p.duration for p in phases)``).
    """
    if not phases:
        raise InvalidScheduleError("a multi-phase scenario needs at least one phase")
    if phases[0].start_size is not None:
        raise InvalidScheduleError(
            f"first phase {phases[0].name!r} must not set start_size: the "
            "run's initial population already defines it (no engine can "
            "resize at time zero)"
        )
    events: list[tuple[int, int]] = []
    offset = 0
    for phase in phases:
        if phase.start_size is not None:
            events.append((offset, phase.start_size))
        events.extend((offset + time, size) for time, size in phase.schedule)
        offset += phase.duration
    label = " -> ".join(phase.name for phase in phases)
    return Schedule(events, kind="multi_phase", label=label)


def phase_boundaries(phases: Sequence[Phase]) -> tuple[dict[str, object], ...]:
    """``(name, start, stop)`` of each phase on the global timeline.

    Returned as plain dicts (``{"name", "start", "stop"}``, with ``stop``
    exclusive) so they serialize directly into result metadata manifests.
    """
    boundaries = []
    offset = 0
    for phase in phases:
        boundaries.append(
            {"name": phase.name, "start": offset, "stop": offset + phase.duration}
        )
        offset += phase.duration
    return tuple(boundaries)
