"""Machine-readable scenario listing shared by the CLI and the serving layer.

``repro-experiments list --json`` and ``GET /scenarios`` must agree on what a
scenario *is* — one formatter, two transports.  Each entry is plain
JSON-encodable data: the spec's declarative fields, the efforts its presets
register, and the spec-level cache key so API clients can tell when a
redeploy changed a scenario's behaviour (the key is an ingredient of every
run-level cache key, see :mod:`repro.serve.keys`).
"""

from __future__ import annotations

from typing import Any

from repro.scenarios.registry import iter_scenarios

__all__ = ["scenario_listing"]


def scenario_listing(*, tag: str | None = None) -> list[dict[str, Any]]:
    """One JSON-encodable record per registered scenario, sorted by name.

    ``tag`` filters to scenarios carrying that tag (the CLI's ``--tag``).
    """
    # Lazy: repro.experiments imports repro.scenarios at definition time, so
    # the reverse dependency must not run at import time.
    from repro.experiments.config import list_presets

    efforts = list_presets()
    entries = []
    for spec in iter_scenarios():
        if tag is not None and tag not in spec.tags:
            continue
        entries.append(
            {
                "name": spec.name,
                "experiment_id": spec.id,
                "description": spec.description,
                "tags": list(spec.tags),
                "engine": spec.engine,
                "engines": list(spec.engines),
                "schedule_kind": spec.schedule_kind,
                "efforts": list(efforts.get(spec.id, [])),
                "sharding": "trial-shards" if spec.executor is None else "serial-only",
                "keep_series": spec.keep_series,
                "cache_key": spec.cache_key(),
            }
        )
    return entries
