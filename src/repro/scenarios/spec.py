"""Declarative scenario specifications.

A *scenario* is a workload on the dynamic population model: a protocol, an
adversarial size schedule, a horizon, a trial count, and the metrics
extracted from the resulting estimate traces.  :class:`ScenarioSpec` captures
all of that as frozen data so that a new workload is ~20 lines of spec
instead of a bespoke ``run_*`` module with its own trial loop and engine
plumbing.  Specs are registered in :mod:`repro.scenarios.registry` and
executed by :func:`repro.scenarios.runner.run_scenario`, which auto-selects
the best engine via :func:`repro.engine.registry.choose_engine` unless the
spec pins one.

A spec expands an :class:`repro.experiments.base.ExperimentPreset` into
:class:`ScenarioPoint` workload points (one per data point of the regenerated
figure/table: a population size, a seed, an adversary schedule, ...).  Each
point is run through :func:`repro.experiments.figures.run_estimate_trace`
and summarised into one result row by the spec's metric extractors.
Scenarios whose measurements need the exact sequential engine's recorder
machinery (memory accounting, per-event tick traces) instead provide an
``executor`` and keep the same registry/CLI/sweep surface.

:class:`SweepSpec` expands a parameter grid — over ``n``, protocol constants
and adversary knobs — into per-combination presets, turning one scenario
into a family of runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import ProtocolParameters, empirical_parameters
from repro.engine.adversary import ResizeSchedule
from repro.engine.errors import ConfigurationError
from repro.engine.registry import engine_names

if TYPE_CHECKING:  # pragma: no cover - the experiments layer imports this
    # module at definition time, so the runtime dependency must stay one-way.
    from repro.experiments.base import ExperimentPreset

__all__ = [
    "ScenarioPoint",
    "ScenarioSpec",
    "SweepSpec",
    "canonical_json",
    "default_points",
    "default_protocol_factory",
    "valid_sweep_axes",
]

#: ``ExperimentPreset`` fields a sweep axis may target directly.
_PRESET_FIELDS = ("parallel_time", "trials", "seed")

#: ``ProtocolParameters`` fields a sweep axis may target (routed into
#: ``preset.extra["params_overrides"]`` and applied by ``run_scenario``).
_PARAM_FIELDS = tuple(f.name for f in dataclasses.fields(ProtocolParameters))


# ------------------------------------------------------- canonical encoding


def _canonicalize(value: Any) -> Any:
    """Normalise a value for :func:`canonical_json`.

    Mappings become plain dicts with string keys (ordering is erased by the
    sorted dump), sequences become lists, sets are sorted, and floats that
    hold an exact integer collapse to that integer so ``5`` and ``5.0`` (or
    ``seed=20240508`` vs ``seed=20240508.0`` coming in over JSON) encode —
    and therefore hash — identically.  Non-finite floats are rejected: they
    have no canonical JSON spelling.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(
                f"non-finite float {value!r} has no canonical encoding"
            )
        return int(value) if value.is_integer() else value
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"canonical encoding needs string keys, got {key!r}"
                )
            out[key] = _canonicalize(value[key])
        return out
    if isinstance(value, (set, frozenset)):
        return sorted(_canonicalize(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    raise ConfigurationError(
        f"value {value!r} of type {type(value).__name__} has no canonical "
        "JSON encoding"
    )


def canonical_json(value: Any) -> str:
    """Stable JSON encoding: field-order and float-repr invariant.

    Two values that differ only in dict insertion order, tuple-vs-list
    container type, or integral-float-vs-int spelling produce byte-identical
    output; any semantic difference produces different output.  This is the
    encoding under every cache key in :mod:`repro.serve` — changing it
    invalidates all content-addressed artifacts, which is why
    ``tests/test_serve_keys.py`` pins golden hashes.
    """
    return json.dumps(
        _canonicalize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def _callable_id(fn: Any) -> str | None:
    """Stable identity of a spec callable: ``module:qualname``.

    Callables cannot be value-encoded, but a registered scenario's behaviour
    is pinned by *which* functions it composes — the qualified name captures
    exactly that (two different metric extractors get different ids; the
    same extractor is stable across processes).
    """
    if fn is None:
        return None
    module = getattr(fn, "__module__", None) or "<unknown>"
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:
        qualname = type(fn).__qualname__
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class ScenarioPoint:
    """One data point of a scenario: a fully specified workload.

    Attributes
    ----------
    n:
        Initial population size.
    seed:
        Root seed for this point (per-trial streams are spawned from it).
    parallel_time:
        Simulation horizon in parallel time units.
    trials:
        Independent repetitions aggregated into this point.
    resize_schedule:
        ``(parallel_time, target_size)`` adversary events; validated once
        here (via :class:`repro.engine.adversary.ResizeSchedule`) so that
        every engine sees a well-formed schedule.
    initial_estimate:
        If set, all agents start with this estimate instead of the empty
        initial configuration.
    label:
        Series key for this point in the result (defaults to ``n_<n>``).
    info:
        Extra context forwarded to metric extractors (e.g. the raw initial
        estimate of a convergence sweep).
    """

    n: int
    seed: int
    parallel_time: int
    trials: int
    resize_schedule: tuple[tuple[int, int], ...] = ()
    initial_estimate: float | None = None
    label: str | None = None
    info: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"population size must be at least 2, got {self.n}")
        if self.trials < 1:
            raise ConfigurationError(f"trials must be at least 1, got {self.trials}")
        if self.parallel_time < 1:
            raise ConfigurationError(
                f"parallel_time must be at least 1, got {self.parallel_time}"
            )
        normalized = tuple((int(t), int(s)) for t, s in self.resize_schedule)
        object.__setattr__(self, "resize_schedule", normalized)
        # Validate event times/targets once, for every engine (the array
        # engines consume raw pairs and would otherwise fail mid-run).
        ResizeSchedule.from_pairs(normalized)

    @property
    def series_label(self) -> str:
        return self.label if self.label is not None else f"n_{self.n}"

    def adversary(self) -> ResizeSchedule:
        """The point's schedule as a sequential-engine adversary."""
        return ResizeSchedule.from_pairs(self.resize_schedule)


def default_protocol_factory(params: ProtocolParameters) -> DynamicSizeCounting:
    """The paper's protocol — the default subject of every scenario."""
    return DynamicSizeCounting(params)


def default_points(
    preset: ExperimentPreset, params: ProtocolParameters
) -> tuple[ScenarioPoint, ...]:
    """One point per population size, seeded ``preset.seed + n``."""
    return tuple(
        ScenarioPoint(
            n=n,
            seed=preset.seed + n,
            parallel_time=preset.parallel_time,
            trials=preset.trials,
        )
        for n in preset.population_sizes
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """Frozen declarative description of one scenario.

    Attributes
    ----------
    name:
        Registry / CLI identifier.
    description:
        One-line summary shown by ``repro-experiments list``.
    points:
        ``(preset, params) -> Sequence[ScenarioPoint]`` expanding a preset
        into workload points; defaults to :func:`default_points`.
    metrics:
        Metric extractors ``(trace, point, preset, params) -> mapping``;
        their outputs are merged (in order) into the point's result row.
    protocol_factory:
        ``(params) -> protocol`` building the scalar protocol instance; used
        for engine auto-selection and available to executors.
    params_factory:
        Builds the protocol constants (defaults to the paper's empirical
        preset); sweeps may override individual fields via
        ``preset.extra["params_overrides"]``.
    keep_series:
        Whether the per-point aggregated traces are kept on the result.
    engines:
        Engine names this scenario supports (defaults to every registered
        engine at spec-construction time); requesting any other engine
        raises :class:`repro.engine.errors.UnsupportedEngineError`.
    engine:
        Pinned default engine.  ``None`` (the default) means the runner
        auto-selects per point via
        :func:`repro.engine.registry.choose_engine`.  The legacy paper
        scenarios pin their historical engines so that default outputs stay
        bit-identical to the published runs.
    executor:
        Escape hatch ``(spec, preset, params, engine) -> ExperimentResult``
        for scenarios that need bespoke measurement machinery (recorders,
        per-event traces).  Such specs ignore ``points``/``metrics``.
    experiment_id:
        Identifier stamped on the :class:`ExperimentResult` (and used for
        preset lookup); defaults to ``name``.
    describe:
        Optional ``(preset) -> str`` producing the result description from
        preset knobs (e.g. Fig. 4's decimation parameters).
    tags:
        Free-form labels (``"paper"``, ``"adversarial"``, ...) used by
        listings.
    schedule_kind:
        The :class:`~repro.scenarios.schedules.Schedule` family this
        scenario's adversary belongs to (``"oscillation"``, ``"trace"``,
        ``"multi_phase"``, ...); ``None`` for scenarios without a resize
        adversary.  Shown by CLI ``list`` and the serve listing.
    knobs:
        Workload knob names this scenario reads from ``preset.extra``
        beyond the keys its presets already carry (e.g. a knob with a
        built-in default); declares them as valid sweep axes.
    """

    name: str
    description: str
    points: Callable[
        [ExperimentPreset, ProtocolParameters], Sequence[ScenarioPoint]
    ] = default_points
    metrics: tuple[
        Callable[
            [Any, ScenarioPoint, ExperimentPreset, ProtocolParameters],
            Mapping[str, Any],
        ],
        ...,
    ] = ()
    protocol_factory: Callable[[ProtocolParameters], Any] = default_protocol_factory
    params_factory: Callable[[], ProtocolParameters] = empirical_parameters
    keep_series: bool = False
    engines: tuple[str, ...] = field(default_factory=engine_names)
    engine: str | None = None
    executor: (
        Callable[
            ["ScenarioSpec", ExperimentPreset, ProtocolParameters, str],
            Any,
        ]
        | None
    ) = None
    experiment_id: str | None = None
    describe: Callable[[ExperimentPreset], str] | None = None
    tags: tuple[str, ...] = ()
    schedule_kind: str | None = None
    knobs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        unknown = set(self.engines) - set(engine_names())
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} lists unknown engines: {sorted(unknown)}; "
                f"available: {', '.join(engine_names())}"
            )
        if not self.engines:
            raise ConfigurationError(f"scenario {self.name!r} must support some engine")
        if self.engine is not None and self.engine not in self.engines:
            raise ConfigurationError(
                f"scenario {self.name!r} pins engine {self.engine!r} but only "
                f"supports: {', '.join(self.engines)}"
            )
        if self.executor is None and not self.metrics:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one metric extractor "
                "(or a bespoke executor)"
            )

    @property
    def id(self) -> str:
        """Identifier stamped on results and used for preset lookup."""
        return self.experiment_id or self.name

    def description_for(self, preset: ExperimentPreset) -> str:
        return self.describe(preset) if self.describe is not None else self.description

    def supports_engine(self, engine: str) -> bool:
        return engine in self.engines

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """Return a copy with selected fields replaced."""
        return dataclasses.replace(self, **overrides)

    def canonical_encoding(self) -> dict[str, Any]:
        """Declarative identity of this spec as plain JSON-encodable data.

        Value fields are carried verbatim; callable fields (points, metrics,
        factories, executor) are carried by qualified name — the registered
        code composing a scenario *is* part of its identity, so swapping a
        metric extractor changes the encoding even when everything else
        matches.
        """
        return {
            "name": self.name,
            "experiment_id": self.id,
            "description": self.description,
            "engine": self.engine,
            "engines": list(self.engines),
            "keep_series": self.keep_series,
            "tags": list(self.tags),
            "schedule_kind": self.schedule_kind,
            "knobs": list(self.knobs),
            "points": _callable_id(self.points),
            "metrics": [_callable_id(metric) for metric in self.metrics],
            "protocol_factory": _callable_id(self.protocol_factory),
            "params_factory": _callable_id(self.params_factory),
            "executor": _callable_id(self.executor),
            "describe": _callable_id(self.describe),
        }

    def cache_key(self) -> str:
        """SHA-256 over :meth:`canonical_encoding` (hex digest).

        Equal specs produce equal keys regardless of how their field values
        were spelled; any differing field produces a different key.  This is
        the spec-level ingredient of the run-level
        :func:`repro.serve.keys.canonical_cache_key`.
        """
        digest = hashlib.sha256(canonical_json(self.canonical_encoding()).encode("ascii"))
        return digest.hexdigest()


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid over one scenario.

    Each axis maps a key to the values it sweeps; :meth:`expand` takes the
    cartesian product and produces one labelled
    :class:`~repro.experiments.base.ExperimentPreset` per combination.  Axis
    keys are routed by name:

    * ``"n"`` replaces the preset's population sizes with the single value
      (a tuple/list value keeps a multi-size point);
    * ``parallel_time`` / ``trials`` / ``seed`` replace the preset field;
    * :class:`~repro.core.params.ProtocolParameters` field names (``tau1``,
      ``k``, ``grv_samples``, ...) are collected into
      ``extra["params_overrides"]`` and applied to the protocol constants by
      the scenario runner;
    * anything else becomes a workload knob in ``preset.extra`` (``keep``,
      ``drop_time``, ``period``, ...).
    """

    scenario: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...]

    @classmethod
    def from_mapping(
        cls, scenario: "str | ScenarioSpec", axes: Mapping[str, Sequence[Any]]
    ) -> "SweepSpec":
        normalized = []
        for key, values in axes.items():
            values = tuple(values)
            if not values:
                raise ConfigurationError(f"sweep axis {key!r} has no values")
            normalized.append((key, values))
        if not normalized:
            raise ConfigurationError("a sweep needs at least one axis")
        _validate_axis_keys(scenario, [key for key, _ in normalized])
        return cls(scenario=scenario, axes=tuple(normalized))

    def canonical_encoding(self) -> dict[str, Any]:
        """Grid identity: the scenario name plus the ordered axes.

        Axis *order* is preserved (it fixes the grid expansion order and
        therefore the result ordering); within each axis the values are
        carried verbatim.
        """
        return {
            "scenario": self.scenario,
            "axes": [[key, list(values)] for key, values in self.axes],
        }

    def cache_key(self) -> str:
        """SHA-256 over :meth:`canonical_encoding` (hex digest)."""
        digest = hashlib.sha256(canonical_json(self.canonical_encoding()).encode("ascii"))
        return digest.hexdigest()

    def combinations(self) -> list[dict[str, Any]]:
        """All axis-value combinations, in deterministic grid order."""
        keys = [key for key, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        return [dict(zip(keys, combo)) for combo in itertools.product(*value_lists)]

    def expand(
        self, base: ExperimentPreset
    ) -> list[tuple[str, ExperimentPreset]]:
        """Expand into ``(label, preset)`` pairs, one per grid combination."""
        expanded = []
        for combo in self.combinations():
            label = ",".join(f"{key}={value}" for key, value in combo.items())
            expanded.append((label, apply_axis_overrides(base, combo)))
        return expanded


def valid_sweep_axes(spec: ScenarioSpec) -> tuple[str, ...]:
    """Every axis key a sweep over ``spec`` may target, sorted.

    The routable names (``"n"``, preset fields, protocol-parameter fields)
    plus the scenario's workload knobs: the ``preset.extra`` keys its
    registered presets carry, and any extra names the spec declares via
    ``knobs`` (knobs read with a built-in default never appear in a
    preset, so the spec must name them explicitly).
    """
    axes = {"n", *_PRESET_FIELDS, *_PARAM_FIELDS, *spec.knobs}
    # Imported lazily: the experiments layer imports this module at
    # definition time, so the reverse dependency must not be top-level.
    from repro.experiments.config import PRESETS

    for preset in PRESETS.get(spec.id, {}).values():
        axes.update(key for key in preset.extra if key != "params_overrides")
    return tuple(sorted(axes))


def _validate_axis_keys(
    scenario: "str | ScenarioSpec", keys: Sequence[str]
) -> None:
    """Reject unknown axis keys up front (a typo'd axis used to surface as
    a mid-expand ``KeyError``).  Unregistered scenario *names* skip the
    check — there is no spec to validate against until run time.
    """
    if isinstance(scenario, ScenarioSpec):
        spec = scenario
    else:
        from repro.scenarios.registry import get_scenario, has_scenario

        if not has_scenario(scenario):
            return
        spec = get_scenario(scenario)
    valid = valid_sweep_axes(spec)
    unknown = sorted(set(keys) - set(valid))
    if unknown:
        raise ConfigurationError(
            f"unknown sweep axis/axes for scenario {spec.name!r}: "
            f"{', '.join(unknown)}; valid axes: {', '.join(valid)}"
        )


def apply_axis_overrides(
    preset: ExperimentPreset, combo: Mapping[str, Any]
) -> ExperimentPreset:
    """Apply one sweep combination to a preset (see :class:`SweepSpec`)."""
    overrides: dict[str, Any] = {}
    extra: dict[str, Any] = {}
    params_overrides: dict[str, Any] = dict(preset.extra.get("params_overrides", {}))
    for key, value in combo.items():
        if key == "n":
            sizes = tuple(value) if isinstance(value, (tuple, list)) else (int(value),)
            overrides["population_sizes"] = sizes
        elif key in _PRESET_FIELDS:
            overrides[key] = int(value)
        elif key in _PARAM_FIELDS:
            params_overrides[key] = value
        else:
            extra[key] = value
    if params_overrides:
        extra["params_overrides"] = params_overrides
    if extra:
        overrides["extra"] = extra
    return preset.with_overrides(**overrides)
