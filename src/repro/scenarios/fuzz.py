"""Seeded property-based scenario fuzzer.

Hand-written scenarios only cover the adversaries we thought of.  The
fuzzer generates random *valid* workloads — population size, horizon,
trial count, a schedule drawn from every family the catalog knows
(synthetic builders, bundled traces, multi-phase timelines), optional
protocol-parameter overrides — and asserts the cross-engine conformance
property on each: the batched, ensemble and counts engines simulate the
same stochastic process, so the distributions of per-trial tracking
statistics must agree (two-sample Kolmogorov-Smirnov on distinct base
seeds, the same machinery as ``tests/test_statistical_conformance.py``,
via :mod:`repro.analysis.stats`).

Everything is deterministic: case ``i`` of ``generate_cases(seed, count)``
is drawn from ``np.random.default_rng([seed, i])``, so the same seed
reproduces the same specs, presets, and cache keys, bit for bit.

Every fuzz case doubles as a registry scenario:
:func:`register_fuzz_scenarios` registers the generated specs (with quick
presets in :data:`repro.experiments.config.PRESETS`), which makes them
runnable through the CLI and :mod:`repro.serve`, and picked up by
``repro.bench``'s ``default_grid()`` for free.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass
from functools import partial
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.stats import ks_critical, ks_statistic
from repro.core.params import ProtocolParameters
from repro.engine.runner import run_engine_trials
from repro.scenarios import schedules
from repro.scenarios.metrics import (
    base_fields,
    phase_stats,
    schedule_fields,
    tracking_stats,
)
from repro.scenarios.phases import Phase, chain_phases, phase_boundaries
from repro.scenarios.registry import register, unregister
from repro.scenarios.spec import ScenarioPoint, ScenarioSpec, canonical_json
from repro.scenarios.traces import bundled_trace

__all__ = [
    "FuzzCase",
    "ConformancePair",
    "ConformanceReport",
    "generate_cases",
    "register_fuzz_scenarios",
    "unregister_fuzz_scenarios",
    "check_conformance",
    "run_fuzz",
]

#: Schedule families the generator draws from, in a fixed order (the draw
#: is an index into this tuple, so reordering changes every generated case).
FAMILIES = (
    "none",
    "oscillation",
    "growth_crash",
    "random_churn",
    "repeated_decimation",
    "trace",
    "multi_phase",
)

#: Engines checked against each other.  The exact engines (sequential,
#: array) are excluded only for speed — the standing conformance battery
#: already pins them against batched/ensemble on a fixed workload.
DEFAULT_ENGINES = ("batched", "ensemble", "counts")

#: Distinct base seeds per engine: shared seeds would make exact-trajectory
#: engines vacuously identical, distinct seeds make an honest two-sample test.
_ENGINE_SEEDS = {"batched": 7103, "ensemble": 7207, "counts": 7311}

#: Metric extractors every fuzz spec composes (phase_stats contributes no
#: columns for cases without phases, so one shared tuple serves them all).
_FUZZ_METRICS = (base_fields, schedule_fields, tracking_stats, phase_stats)


@dataclass(frozen=True)
class FuzzCase:
    """One generated workload: plain data, fully canonical-JSON-encodable."""

    name: str
    seed: int
    index: int
    n: int
    horizon: int
    trials: int
    family: str
    schedule: tuple[tuple[int, int], ...]
    phases: tuple[Mapping[str, Any], ...] = ()
    params_overrides: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def encoding(self) -> dict[str, Any]:
        """The case as canonical-JSON-encodable data (its full identity)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "index": self.index,
            "n": self.n,
            "horizon": self.horizon,
            "trials": self.trials,
            "family": self.family,
            "schedule": [list(event) for event in self.schedule],
            "phases": [dict(boundary) for boundary in self.phases],
            "params_overrides": dict(self.params_overrides),
        }

    def cache_key(self) -> str:
        """SHA-256 over :meth:`encoding` — the determinism contract."""
        digest = hashlib.sha256(canonical_json(self.encoding()).encode("ascii"))
        return digest.hexdigest()

    def spec(self) -> ScenarioSpec:
        """The case as a registrable :class:`ScenarioSpec`."""
        return ScenarioSpec(
            name=self.name,
            description=(
                f"fuzzed {self.family} workload "
                f"(n={self.n}, horizon={self.horizon}, seed={self.seed})"
            ),
            points=_fuzz_points,
            metrics=_FUZZ_METRICS,
            tags=("fuzz", "adversarial"),
            schedule_kind=self.family if self.family != "none" else None,
        )

    def preset(self) -> Any:
        """The case's quick preset (schedule and phases travel in ``extra``)."""
        from repro.experiments.base import ExperimentPreset

        extra: dict[str, Any] = {"schedule": [list(event) for event in self.schedule]}
        if self.phases:
            extra["phases"] = [dict(boundary) for boundary in self.phases]
        if self.params_overrides:
            extra["params_overrides"] = dict(self.params_overrides)
        return ExperimentPreset(
            name="quick",
            population_sizes=(self.n,),
            parallel_time=self.horizon,
            trials=self.trials,
            extra=extra,
        )

    def resolved_params(self) -> ProtocolParameters:
        """Protocol constants with this case's overrides applied."""
        from repro.scenarios.runner import resolve_params

        return resolve_params(self.spec(), self.preset())


def _fuzz_points(preset, params) -> tuple[ScenarioPoint, ...]:
    """Shared points factory for every fuzz spec (stable callable identity).

    The schedule and optional phase boundaries travel in ``preset.extra``
    as plain data, so one module-level callable serves all generated specs
    — per-spec closures would collide under the ``module:qualname`` spec
    encoding and break cache keys.
    """
    schedule = tuple((int(t), int(s)) for t, s in preset.extra.get("schedule", ()))
    info: dict[str, Any] = {}
    if preset.extra.get("phases"):
        info["phases"] = tuple(dict(b) for b in preset.extra["phases"])
    return tuple(
        ScenarioPoint(
            n=n,
            seed=preset.seed + n,
            parallel_time=preset.parallel_time,
            trials=preset.trials,
            resize_schedule=schedule,
            info=info,
        )
        for n in preset.population_sizes
    )


# ------------------------------------------------------------- generation


def _draw_schedule(
    rng: np.random.Generator, family: str, n: int, horizon: int
) -> tuple[tuple[tuple[int, int], ...], tuple[Mapping[str, Any], ...]]:
    """Draw a valid schedule (and phase boundaries, if any) for a family."""
    if family == "none":
        return (), ()
    if family == "oscillation":
        pairs = schedules.oscillation(
            n,
            low=max(2, n // int(rng.integers(4, 17))),
            period=max(1, horizon // int(rng.integers(3, 9))),
            horizon=horizon,
        )
        return tuple(pairs), ()
    if family == "growth_crash":
        pairs = schedules.growth_crash(
            n,
            growth_factor=float(rng.choice((1.5, 2.0, 3.0))),
            growth_steps=int(rng.integers(2, 5)),
            period=max(1, horizon // int(rng.integers(6, 10))),
            crash_target=max(2, n // int(rng.integers(8, 21))),
            horizon=horizon,
        )
        return tuple(pairs), ()
    if family == "random_churn":
        pairs = schedules.random_churn(
            n,
            low=max(2, n // int(rng.integers(4, 13))),
            high=n,
            period=max(1, horizon // int(rng.integers(6, 13))),
            horizon=horizon,
            seed=int(rng.integers(0, 2**31)),
        )
        return tuple(pairs), ()
    if family == "repeated_decimation":
        pairs = schedules.repeated_decimation(
            n,
            factor=float(rng.choice((1.5, 2.0, 3.0))),
            period=max(1, horizon // int(rng.integers(4, 9))),
            horizon=horizon,
            floor=max(2, min(16, n // 2)),
        )
        return tuple(pairs), ()
    if family == "trace":
        name = str(rng.choice(("flash_crowd", "diurnal", "failover")))
        pairs = bundled_trace(name).resample(horizon=horizon, n=n)
        return tuple(pairs), ()
    if family == "multi_phase":
        first = max(1, horizon // int(rng.integers(3, 5)))
        second = max(1, horizon // int(rng.integers(3, 5)))
        third = max(1, horizon - first - second)
        phases = (
            Phase("warmup", first),
            Phase("crash", second, start_size=max(2, n // int(rng.integers(5, 13)))),
            Phase("recovery", third, start_size=n),
        )
        return tuple(chain_phases(phases)), phase_boundaries(phases)
    raise ValueError(f"unknown schedule family {family!r}")


def generate_cases(seed: int, count: int) -> tuple[FuzzCase, ...]:
    """Generate ``count`` deterministic workloads for ``seed``.

    Case ``i`` draws from ``default_rng([seed, i])``, so cases are
    independent of ``count`` — asking for 5 or 50 cases yields the same
    first five.
    """
    if count < 1:
        raise ValueError(f"count must be at least 1, got {count}")
    cases = []
    for index in range(count):
        rng = np.random.default_rng([seed, index])
        n = int(round(2.0 ** float(rng.uniform(4.0, 10.0))))
        horizon = int(rng.integers(120, 401))
        trials = int(rng.integers(2, 4))
        family = FAMILIES[int(rng.integers(0, len(FAMILIES)))]
        schedule, phases = _draw_schedule(rng, family, n, horizon)
        params_overrides: dict[str, Any] = {}
        if rng.random() < 0.25:
            params_overrides["k"] = int(rng.choice((8, 32)))
        cases.append(
            FuzzCase(
                name=f"fuzz_{seed}_{index}",
                seed=seed,
                index=index,
                n=n,
                horizon=horizon,
                trials=trials,
                family=family,
                schedule=tuple(schedule),
                phases=phases,
                params_overrides=params_overrides,
            )
        )
    return tuple(cases)


# ----------------------------------------------------------- registration


def register_fuzz_scenarios(
    seed: int, count: int, *, replace: bool = False
) -> tuple[str, ...]:
    """Register ``count`` generated scenarios (specs + quick presets).

    Returns the registered names.  The presets land in
    :data:`repro.experiments.config.PRESETS`, so the scenarios are
    immediately runnable via CLI/serve and timed by ``repro.bench``'s
    ``default_grid()``.  Use :func:`unregister_fuzz_scenarios` to undo.
    """
    from repro.experiments.config import PRESETS

    names = []
    for case in generate_cases(seed, count):
        register(case.spec(), replace=replace)
        PRESETS[case.name] = {"quick": case.preset()}
        names.append(case.name)
    return tuple(names)


def unregister_fuzz_scenarios(names: Sequence[str]) -> None:
    """Remove previously registered fuzz scenarios and their presets."""
    from repro.experiments.config import PRESETS

    for name in names:
        unregister(name)
        PRESETS.pop(name, None)


# ------------------------------------------------------------ conformance


@dataclass(frozen=True)
class ConformancePair:
    """One engine-pair KS comparison on one per-trial statistic."""

    engine_a: str
    engine_b: str
    statistic: str
    ks: float
    critical: float

    @property
    def ok(self) -> bool:
        return self.ks <= self.critical


@dataclass(frozen=True)
class ConformanceReport:
    """All pairwise comparisons for one fuzz case."""

    case: FuzzCase
    pairs: tuple[ConformancePair, ...]

    @property
    def ok(self) -> bool:
        return all(pair.ok for pair in self.pairs)

    def failures(self) -> tuple[ConformancePair, ...]:
        return tuple(pair for pair in self.pairs if not pair.ok)


def _trial_statistics(
    series_list: Sequence[Mapping[str, Sequence[float]]],
    params: ProtocolParameters,
    n: int,
) -> dict[str, np.ndarray]:
    """Per-trial samples: final and mean second-half tracking error.

    The moving target at snapshot ``t`` is ``log2(size_t) +
    log2(grv_samples)`` — the level the max of ``k * size`` GRVs
    concentrates at (the same statistic :func:`repro.scenarios.metrics.
    tracking_stats` aggregates).
    """
    offset = math.log2(max(1, params.grv_samples))
    final, tracking = [], []
    for series in series_list:
        medians = series["median"]
        sizes = series.get("population_size") or [n] * len(medians)
        half = len(medians) // 2
        deviations = [
            abs(median - (math.log2(size) + offset))
            for median, size in zip(medians[half:], sizes[half:])
            if size >= 2
        ]
        tracking.append(
            sum(deviations) / len(deviations) if deviations else float("nan")
        )
        final.append(
            abs(medians[-1] - (math.log2(sizes[-1]) + offset))
            if sizes[-1] >= 2
            else float("nan")
        )
    return {"final_error": np.array(final), "tracking_error": np.array(tracking)}


def check_conformance(
    case: FuzzCase,
    *,
    engines: Sequence[str] = DEFAULT_ENGINES,
    trials: int = 24,
    alpha: float = 0.001,
) -> ConformanceReport:
    """Cross-engine KS conformance for one generated workload.

    Each engine runs ``trials`` independent repetitions of the case's
    workload from its own base seed, and every engine pair is compared on
    the per-trial final/tracking error distributions at significance
    ``alpha``.  Fully seeded — the verdict is deterministic.
    """
    from repro.experiments.figures import _trace_engine_factory

    params = case.resolved_params()
    factory = partial(
        _trace_engine_factory,
        n=case.n,
        params=params,
        resize_schedule=tuple(case.schedule),
        initial_estimate=None,
        sub_batches=8,
        jit=False,
    )
    samples = {}
    for engine in engines:
        base = _ENGINE_SEEDS.get(engine, 7000) + 131 * case.index
        series_list = run_engine_trials(
            factory,
            engine=engine,
            trials=trials,
            seed=base,
            parallel_time=case.horizon,
        )
        samples[engine] = _trial_statistics(series_list, params, case.n)

    critical = ks_critical(trials, trials, alpha)
    pairs = []
    engines = tuple(engines)
    for i, engine_a in enumerate(engines):
        for engine_b in engines[i + 1 :]:
            for statistic in ("final_error", "tracking_error"):
                ks = ks_statistic(
                    samples[engine_a][statistic], samples[engine_b][statistic]
                )
                pairs.append(
                    ConformancePair(
                        engine_a=engine_a,
                        engine_b=engine_b,
                        statistic=statistic,
                        ks=ks,
                        critical=critical,
                    )
                )
    return ConformanceReport(case=case, pairs=tuple(pairs))


def run_fuzz(
    seed: int,
    count: int,
    *,
    engines: Sequence[str] = DEFAULT_ENGINES,
    trials: int = 24,
    alpha: float = 0.001,
) -> tuple[ConformanceReport, ...]:
    """Generate ``count`` cases and conformance-check each; returns reports."""
    return tuple(
        check_conformance(case, engines=engines, trials=trials, alpha=alpha)
        for case in generate_cases(seed, count)
    )
