"""Decorator-based scenario registry.

Scenarios register themselves with :func:`scenario` (on a builder function
returning a :class:`repro.scenarios.spec.ScenarioSpec`) or directly with
:func:`register`.  The built-in catalog — the nine workloads of the paper's
evaluation plus the adversarial scenarios that go beyond it — is loaded
lazily on first lookup so that importing this module stays cheap and free of
import cycles.

Example
-------
>>> from repro.scenarios import ScenarioSpec, scenario
>>> @scenario
... def my_workload():
...     return ScenarioSpec(name="my_workload", description="...", metrics=(...,))
>>> from repro.scenarios import get_scenario, run_scenario
>>> result = run_scenario(get_scenario("my_workload"), effort="quick")
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.engine.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "scenario",
    "register",
    "unregister",
    "get_scenario",
    "has_scenario",
    "scenario_names",
    "iter_scenarios",
]

_SCENARIOS: dict[str, ScenarioSpec] = {}
_catalog_loaded = False


def register(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Register a spec under its name; returns the spec unchanged.

    Re-registering a name raises unless ``replace=True`` — silently
    shadowing a published scenario is almost always a bug.
    """
    if not replace and spec.name in _SCENARIOS:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered; pass replace=True "
            "to override it"
        )
    _SCENARIOS[spec.name] = spec
    return spec


def scenario(
    builder: Callable[[], ScenarioSpec] | None = None, *, replace: bool = False
) -> Callable:
    """Decorator registering the :class:`ScenarioSpec` a builder returns.

    Usable bare (``@scenario``) or with options (``@scenario(replace=True)``).
    The builder is invoked once at decoration time; the decorated name is
    rebound to the built spec so modules can refer to it directly.
    """

    def decorate(fn: Callable[[], ScenarioSpec]) -> ScenarioSpec:
        spec = fn()
        if not isinstance(spec, ScenarioSpec):
            raise ConfigurationError(
                f"@scenario builder {fn.__name__!r} must return a ScenarioSpec, "
                f"got {type(spec).__name__}"
            )
        return register(spec, replace=replace)

    if builder is not None:
        return decorate(builder)
    return decorate


def unregister(name: str) -> None:
    """Remove a registered scenario (primarily for tests)."""
    _SCENARIOS.pop(name, None)


def _ensure_catalog_loaded() -> None:
    """Import the built-in scenario definitions exactly once."""
    global _catalog_loaded
    if _catalog_loaded:
        return
    _catalog_loaded = True
    # The nine legacy experiment modules each register their spec on import;
    # the catalog module adds the adversarial scenarios beyond the paper.
    import repro.experiments  # noqa: F401
    import repro.scenarios.catalog  # noqa: F401


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    _ensure_catalog_loaded()
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names())}"
        ) from None


def has_scenario(name: str) -> bool:
    _ensure_catalog_loaded()
    return name in _SCENARIOS


def scenario_names() -> list[str]:
    """Sorted names of all registered scenarios."""
    _ensure_catalog_loaded()
    return sorted(_SCENARIOS)


def iter_scenarios() -> Iterable[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    _ensure_catalog_loaded()
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]
