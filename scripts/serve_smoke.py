"""End-to-end smoke test for the ``repro.serve`` HTTP service.

Starts a real uvicorn server, submits a quick scenario run over HTTP, polls
it to completion, fetches the result, then re-submits the identical request
and asserts it is answered from the content-addressed cache
(``cached: true``, same run id, byte-identical result body) without
re-simulation.  Exercises exactly the loop a CI job or a colleague's laptop
would: two identical requests, one simulation.

Needs the ``[serve]`` extra (fastapi + uvicorn + httpx)::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import contextlib
import os
import socket
import subprocess
import sys
import tempfile
import time

import httpx

REQUEST = {
    "scenario": "fig2",
    "effort": "quick",
    "overrides": {"n": 64, "trials": 2, "parallel_time": 30},
}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(predicate, *, timeout: float, what: str, poll: float = 0.2):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            return value
        time.sleep(poll)
    raise TimeoutError(f"timed out after {timeout:.0f}s waiting for {what}")


def main() -> int:
    port = free_port()
    base = f"http://127.0.0.1:{port}"
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ, REPRO_SERVE_CACHE_DIR=cache_dir)
    env["PYTHONPATH"] = env.get("PYTHONPATH", "src")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "uvicorn",
            "--factory",
            "repro.serve.app:create_app",
            "--host",
            "127.0.0.1",
            "--port",
            str(port),
            "--log-level",
            "warning",
        ],
        env=env,
    )
    try:
        with httpx.Client(base_url=base, timeout=10.0) as client:

            def healthy():
                with contextlib.suppress(httpx.TransportError):
                    if client.get("/healthz").status_code == 200:
                        return True
                return None

            wait_for(healthy, timeout=30, what="the server to come up")
            print(f"server up on {base}")

            first = client.post("/runs", json=REQUEST)
            assert first.status_code == 202, (first.status_code, first.text)
            submission = first.json()
            assert submission["cached"] is False, submission
            run_id = submission["run_id"]
            print(f"submitted run {run_id[:12]}... (cache miss, enqueued)")

            def done():
                status = client.get(f"/runs/{run_id}").json()
                if status["state"] == "failed":
                    raise RuntimeError(f"run failed: {status['error']}")
                return status if status["state"] == "done" else None

            status = wait_for(done, timeout=180, what="the run to finish")
            print(f"run finished in {status['seconds']:.2f}s")

            body = client.get(f"/runs/{run_id}/result")
            assert body.status_code == 200, body.text
            rows = body.json()["results"][0]["rows"]
            assert rows, "a finished run must have result rows"
            print(f"fetched {len(rows)} result row(s)")

            repeat = client.post("/runs", json=REQUEST)
            assert repeat.status_code == 200, (repeat.status_code, repeat.text)
            payload = repeat.json()
            assert payload["cached"] is True, payload
            assert payload["run_id"] == run_id, payload
            repeat_body = client.get(f"/runs/{run_id}/result")
            assert repeat_body.content == body.content, "cached body must be byte-identical"
            print("re-submission answered from cache with an identical body")

            csv = client.get(f"/runs/{run_id}/result", params={"format": "csv"})
            assert csv.status_code == 200
            assert csv.headers["content-type"].startswith("text/csv")
            print("CSV export ok; smoke test passed")
            return 0
    finally:
        server.terminate()
        with contextlib.suppress(subprocess.TimeoutExpired):
            server.wait(timeout=10)
        if server.poll() is None:  # pragma: no cover - stubborn server
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
