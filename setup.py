"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
only so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on offline machines where the ``wheel`` package is unavailable and PEP
660 editable builds therefore cannot be produced.
"""

from setuptools import setup

setup()
