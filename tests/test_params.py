"""Tests for the protocol parameter presets."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParameters, empirical_parameters, theory_parameters


class TestValidation:
    def test_phase_constants_must_be_ordered(self):
        with pytest.raises(ValueError):
            ProtocolParameters(tau1=2, tau2=4, tau3=1, tau_prime=10)
        with pytest.raises(ValueError):
            ProtocolParameters(tau1=4, tau2=4, tau3=1, tau_prime=10)

    def test_tau_prime_positive(self):
        with pytest.raises(ValueError):
            ProtocolParameters(tau1=6, tau2=4, tau3=2, tau_prime=0)

    def test_k_at_least_one(self):
        with pytest.raises(ValueError):
            ProtocolParameters(tau1=6, tau2=4, tau3=2, tau_prime=20, k=0)

    def test_overestimation_at_least_one(self):
        with pytest.raises(ValueError):
            ProtocolParameters(tau1=6, tau2=4, tau3=2, tau_prime=20, overestimation=0.5)

    def test_grv_samples_defaults_to_k(self):
        params = ProtocolParameters(tau1=6, tau2=4, tau3=2, tau_prime=20, k=7)
        assert params.grv_samples == 7

    def test_explicit_grv_samples(self):
        params = ProtocolParameters(tau1=6, tau2=4, tau3=2, tau_prime=20, k=7, grv_samples=3)
        assert params.grv_samples == 3

    def test_frozen(self):
        params = empirical_parameters()
        with pytest.raises(AttributeError):
            params.tau1 = 99  # type: ignore[misc]


class TestHelpers:
    def test_thresholds(self):
        params = empirical_parameters()
        assert params.exchange_threshold(10) == 40
        assert params.hold_threshold(10) == 20
        assert params.reset_time(10) == 60
        assert params.backup_threshold(10) == 200

    def test_overestimate(self):
        params = theory_parameters(k=2)
        assert params.overestimate(3) == 20 * 3 * 3  # 20 (k + 1) * grv

    def test_round_length_estimate_monotone(self):
        params = empirical_parameters()
        assert params.round_length_estimate(20) > params.round_length_estimate(10)

    def test_describe_round_trips_fields(self):
        params = empirical_parameters()
        description = params.describe()
        assert description["tau1"] == params.tau1
        assert description["k"] == params.k


class TestPresets:
    def test_empirical_matches_paper_section_5(self):
        params = empirical_parameters()
        assert (params.tau1, params.tau2, params.tau3) == (6.0, 4.0, 2.0)
        assert params.tau_prime == 20.0
        assert params.k == 16
        assert params.overestimation == 1.0

    def test_theory_matches_lemma_4_5(self):
        params = theory_parameters(k=2)
        assert params.tau1 == 1140 * 2
        assert params.tau2 == 1119 * 2
        assert params.tau3 == 454 * 2
        assert params.tau_prime == 4350 * 2
        assert params.overestimation == 20 * 3

    def test_theory_requires_k_at_least_two(self):
        with pytest.raises(ValueError):
            theory_parameters(k=1)

    def test_empirical_requires_positive_k(self):
        with pytest.raises(ValueError):
            empirical_parameters(k=0)

    def test_theory_constants_satisfy_ordering_for_various_k(self):
        for k in (2, 3, 5, 10):
            params = theory_parameters(k)
            assert params.tau1 > params.tau2 > params.tau3 > 0
            assert params.tau_prime > params.tau1
