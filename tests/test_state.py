"""Tests for the counting state and phase classification."""

from __future__ import annotations

import pytest

from repro.core.params import empirical_parameters, theory_parameters
from repro.core.state import CountingState, Phase, classify_phase, state_memory_bits


class TestCountingState:
    def test_fresh_state_matches_paper(self):
        params = empirical_parameters()
        state = CountingState.fresh(params)
        assert state.max_value == 1.0
        assert state.last_max == 1.0
        assert state.time == params.tau1
        assert state.interactions == 0

    def test_effective_max(self):
        assert CountingState(max_value=3, last_max=7).effective_max == 7
        assert CountingState(max_value=9, last_max=7).effective_max == 9

    def test_estimate_divides_out_overestimation(self):
        params = theory_parameters(k=2)  # overestimation = 60
        state = CountingState(max_value=600, last_max=1)
        assert state.estimate(params) == 10.0

    def test_estimate_without_overestimation(self):
        params = empirical_parameters()
        assert CountingState(max_value=13, last_max=10).estimate(params) == 13.0

    def test_copy_independent(self):
        state = CountingState(max_value=5, last_max=4, time=30, interactions=2)
        clone = state.copy()
        clone.max_value = 99
        assert state.max_value == 5

    def test_as_dict(self):
        state = CountingState(max_value=5, last_max=4, time=30, interactions=2)
        assert state.as_dict() == {"max": 5, "last_max": 4, "time": 30, "interactions": 2}

    def test_with_estimate_in_exchange(self):
        params = empirical_parameters()
        state = CountingState.with_estimate(60, params)
        assert state.max_value == 60
        assert state.time == params.tau1 * 60
        assert classify_phase(state, params) is Phase.EXCHANGE

    def test_with_estimate_mid_clock(self):
        params = empirical_parameters()
        state = CountingState.with_estimate(60, params, in_exchange=False)
        assert classify_phase(state, params) is Phase.HOLD

    def test_with_estimate_applies_overestimation(self):
        params = theory_parameters(k=2)
        state = CountingState.with_estimate(10, params)
        assert state.max_value == 10 * params.overestimation

    def test_with_estimate_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CountingState.with_estimate(0, empirical_parameters())


class TestPhaseClassification:
    def setup_method(self):
        self.params = empirical_parameters()  # tau1=6, tau2=4, tau3=2

    def test_exchange_phase(self):
        state = CountingState(max_value=10, last_max=10, time=40)
        assert classify_phase(state, self.params) is Phase.EXCHANGE

    def test_hold_phase(self):
        state = CountingState(max_value=10, last_max=10, time=39)
        assert classify_phase(state, self.params) is Phase.HOLD
        state.time = 20
        assert classify_phase(state, self.params) is Phase.HOLD

    def test_reset_phase(self):
        state = CountingState(max_value=10, last_max=10, time=19)
        assert classify_phase(state, self.params) is Phase.RESET
        state.time = 0
        assert classify_phase(state, self.params) is Phase.RESET

    def test_negative_time_counts_as_reset(self):
        state = CountingState(max_value=10, last_max=10, time=-5)
        assert classify_phase(state, self.params) is Phase.RESET

    def test_phases_partition_the_time_axis(self):
        """Every time value maps to exactly one phase (they form a partition)."""
        state = CountingState(max_value=10, last_max=10)
        seen_phases = set()
        for time in range(-5, 70):
            state.time = time
            seen_phases.add(classify_phase(state, self.params))
        assert seen_phases == {Phase.EXCHANGE, Phase.HOLD, Phase.RESET}

    def test_scale_uses_larger_of_max_and_last_max(self):
        # With lastMax = 20 the exchange threshold is 80, not 40.
        state = CountingState(max_value=10, last_max=20, time=50)
        assert classify_phase(state, self.params) is Phase.HOLD

    def test_phase_enum_string(self):
        assert str(Phase.EXCHANGE) == "exchange"


class TestMemoryAccounting:
    def test_fresh_state_is_small(self):
        bits = state_memory_bits(CountingState.fresh(empirical_parameters()))
        assert bits <= 10

    def test_bits_grow_logarithmically(self):
        small = state_memory_bits(CountingState(max_value=8, last_max=8, time=48, interactions=10))
        large = state_memory_bits(
            CountingState(max_value=8000, last_max=8000, time=48000, interactions=10)
        )
        assert large > small
        assert large - small <= 35  # log-scale growth, not linear

    def test_minimum_one_bit_per_variable(self):
        assert state_memory_bits(CountingState(max_value=0, last_max=0, time=0, interactions=0)) == 4
