"""Tests for CHVP / CLVP and the Lemma 4.3 / 4.4 bounds."""

from __future__ import annotations

import math

from repro.analysis.theory import chvp_lower_bound_value, chvp_upper_bound_time
from repro.engine.population import Population
from repro.engine.simulator import Simulator
from repro.protocols.chvp import CHVP, CLVP


class TestCHVPRule:
    def test_initiator_adopts_max_minus_one(self, make_ctx):
        protocol = CHVP()
        assert protocol.interact(3, 10, make_ctx()) == (9, 10)
        assert protocol.interact(10, 3, make_ctx()) == (9, 3)

    def test_equal_values_decrement(self, make_ctx):
        assert CHVP().interact(5, 5, make_ctx()) == (4, 5)

    def test_floor_clamps(self, make_ctx):
        protocol = CHVP(floor=0)
        assert protocol.interact(0, 0, make_ctx()) == (0, 0)

    def test_unbounded_goes_negative(self, make_ctx):
        assert CHVP().interact(0, 0, make_ctx()) == (-1, 0)

    def test_initial_state(self, rng):
        assert CHVP(initial_value=42).initial_state(rng) == 42

    def test_memory_bits_handles_negative(self):
        protocol = CHVP()
        assert protocol.memory_bits(-3) >= 2
        assert protocol.memory_bits(7) == 3

    def test_describe(self):
        assert CHVP(initial_value=5, floor=0).describe()["floor"] == 0


class TestCLVPRule:
    def test_initiator_adopts_min_plus_one(self, make_ctx):
        protocol = CLVP()
        assert protocol.interact(3, 10, make_ctx()) == (4, 10)
        assert protocol.interact(10, 3, make_ctx()) == (4, 3)

    def test_ceiling_clamps(self, make_ctx):
        protocol = CLVP(ceiling=5)
        assert protocol.interact(5, 5, make_ctx()) == (5, 5)

    def test_duality_with_chvp(self, make_ctx):
        """CLVP on negated values mirrors CHVP (the coupling used in App. C)."""
        chvp, clvp = CHVP(), CLVP()
        for u, v in [(3, 8), (8, 3), (5, 5), (0, 2)]:
            chvp_result = chvp.interact(u, v, make_ctx())[0]
            clvp_result = clvp.interact(-u, -v, make_ctx())[0]
            assert chvp_result == -clvp_result


class TestCHVPSimulation:
    def test_values_stay_in_narrow_band(self):
        """Lemma 4.3/4.4: after O(Delta + log n) time the population sits in a band."""
        n, start = 100, 200
        simulator = Simulator(CHVP(initial_value=start), n, seed=8)
        delta = 30
        parallel_time = math.ceil(chvp_upper_bound_time(n, delta, k=1.0) / n)
        simulator.run(parallel_time)
        values = simulator.outputs()
        # Upper bound (Lemma 4.3): the maximum dropped by at least delta.
        assert max(values) <= start - delta
        # Lower bound (Lemma 4.4 flavour): nobody fell dramatically below the band.
        lower_reference = chvp_lower_bound_value(start, n, delta, k=2.0)
        assert min(values) >= lower_reference - 12 * math.log2(n)

    def test_maximum_never_increases(self):
        simulator = Simulator(CHVP(initial_value=50), 30, seed=2)
        previous_max = 50
        for _ in range(20):
            simulator.run(1)
            current_max = max(simulator.outputs())
            assert current_max <= previous_max
            previous_max = current_max

    def test_straggler_catches_up(self):
        """An agent far below the maximum is pulled up by higher value propagation."""
        population = Population([100] * 49 + [0])
        simulator = Simulator(CHVP(), population, seed=3)
        simulator.run(30)
        values = simulator.outputs()
        assert min(values) > 40  # the straggler adopted a high value long ago
