"""Tests for the static counting baselines (and their failure in the dynamic setting)."""

from __future__ import annotations

import math

import pytest

from repro.engine.adversary import RemoveAllButAt
from repro.engine.recorder import EstimateRecorder
from repro.engine.simulator import Simulator
from repro.protocols.static_counting import (
    AveragedMaximaCounting,
    AveragedMaximaState,
    MaxGrvCounting,
)


class TestMaxGrvCounting:
    def test_initial_state_is_grv(self, rng):
        protocol = MaxGrvCounting()
        samples = [protocol.initial_state(rng) for _ in range(200)]
        assert min(samples) >= 1
        assert any(s >= 2 for s in samples)

    def test_invalid_samples_per_agent(self):
        with pytest.raises(ValueError):
            MaxGrvCounting(samples_per_agent=0)

    def test_interaction_takes_max_both_ways(self, make_ctx):
        protocol = MaxGrvCounting()
        assert protocol.interact(2, 7, make_ctx()) == (7, 7)
        assert protocol.interact(7, 2, make_ctx()) == (7, 7)

    def test_output_is_float(self):
        assert MaxGrvCounting().output(5) == 5.0

    def test_converges_to_constant_factor_estimate(self):
        n = 300
        protocol = MaxGrvCounting()
        simulator = Simulator(protocol, n, seed=12)
        simulator.run(60)
        estimates = simulator.outputs()
        log_n = math.log2(n)
        assert len(set(estimates)) == 1  # consensus on the maximum
        assert 0.5 * log_n <= estimates[0] <= 4 * log_n

    def test_does_not_adapt_to_population_drop(self):
        """The paper's motivation: static protocols keep the stale maximum."""
        recorder = EstimateRecorder()
        simulator = Simulator(
            MaxGrvCounting(),
            400,
            seed=13,
            adversary=RemoveAllButAt(time=30, keep=20),
            recorders=[recorder],
        )
        simulator.run(120)
        before = [r.median for r in recorder.rows if r.parallel_time < 30][-1]
        after = recorder.rows[-1].median
        assert after >= before  # the estimate never decreases


class TestAveragedMaximaCounting:
    def test_initial_state_has_requested_slots(self, rng):
        protocol = AveragedMaximaCounting(slots=7)
        state = protocol.initial_state(rng)
        assert len(state.maxima) == 7

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            AveragedMaximaCounting(slots=0)

    def test_interaction_merges_slotwise(self, make_ctx):
        protocol = AveragedMaximaCounting(slots=3)
        u = AveragedMaximaState([1, 5, 2])
        v = AveragedMaximaState([4, 1, 3])
        u, v = protocol.interact(u, v, make_ctx())
        assert u.maxima == [4, 5, 3]
        assert v.maxima == [4, 5, 3]

    def test_output_is_average(self):
        protocol = AveragedMaximaCounting(slots=4)
        assert protocol.output(AveragedMaximaState([2, 4, 6, 8])) == 5.0
        assert protocol.output(AveragedMaximaState([])) == 0.0

    def test_memory_bits_scale_with_slots(self):
        protocol = AveragedMaximaCounting(slots=4)
        small = protocol.memory_bits(AveragedMaximaState([1, 1, 1, 1]))
        large = protocol.memory_bits(AveragedMaximaState([255, 255, 255, 255]))
        assert small == 4
        assert large == 32

    def test_estimates_log_n_with_small_additive_error(self):
        n = 200
        protocol = AveragedMaximaCounting(slots=24)
        simulator = Simulator(protocol, n, seed=14)
        simulator.run(80)
        estimates = simulator.outputs()
        log_n = math.log2(n)
        # The averaged-maxima estimator promises log n +- 5.7; after the
        # per-slot maxima have spread, every agent reports the same average.
        assert max(estimates) - min(estimates) < 1e-9
        assert abs(estimates[0] - log_n) <= 5.7

    def test_state_copy_independent(self):
        state = AveragedMaximaState([1, 2])
        clone = state.copy()
        clone.maxima[0] = 99
        assert state.maxima == [1, 2]
