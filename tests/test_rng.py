"""Tests for repro.engine.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.rng import RandomSource, make_rng, spawn_streams


class TestMakeRng:
    def test_same_seed_same_sequence(self):
        a = make_rng(7)
        b = make_rng(7)
        assert list(a.integers(0, 100, size=10)) == list(b.integers(0, 100, size=10))

    def test_different_seeds_differ(self):
        a = make_rng(1)
        b = make_rng(2)
        assert list(a.integers(0, 1_000_000, size=10)) != list(b.integers(0, 1_000_000, size=10))


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(3, 5)) == 5

    def test_zero_count(self):
        assert spawn_streams(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(3, -1)

    def test_streams_are_independent(self):
        streams = spawn_streams(11, 2)
        a = list(streams[0].integers(0, 1_000_000, size=20))
        b = list(streams[1].integers(0, 1_000_000, size=20))
        assert a != b

    def test_reproducible_from_root_seed(self):
        first = spawn_streams(99, 3)
        second = spawn_streams(99, 3)
        for x, y in zip(first, second):
            assert list(x.integers(0, 1000, size=5)) == list(y.integers(0, 1000, size=5))


class TestRandomSource:
    def test_coin_is_boolean(self, rng):
        assert all(isinstance(rng.coin(), bool) for _ in range(10))

    def test_coin_is_roughly_fair(self, rng):
        heads = sum(rng.coin() for _ in range(4000))
        assert 1700 < heads < 2300

    def test_biased_coin_extremes(self, rng):
        assert all(rng.biased_coin(1.0) for _ in range(10))
        assert not any(rng.biased_coin(0.0) for _ in range(10))

    def test_biased_coin_rejects_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            rng.biased_coin(1.5)
        with pytest.raises(ValueError):
            rng.biased_coin(-0.1)

    def test_geometric_support(self, rng):
        samples = [rng.geometric() for _ in range(2000)]
        assert min(samples) >= 1
        # P[X = 1] = 1/2, so roughly half the samples should be 1.
        ones = samples.count(1)
        assert 800 < ones < 1200

    def test_geometric_max_at_least_single(self, rng):
        assert rng.geometric_max(0) == 1
        for _ in range(100):
            assert rng.geometric_max(5) >= 1

    def test_geometric_max_grows_with_count(self, rng):
        small = np.mean([rng.geometric_max(1) for _ in range(500)])
        large = np.mean([rng.geometric_max(64) for _ in range(500)])
        assert large > small + 3  # log2(64) = 6 expected shift

    def test_geometric_max_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            rng.geometric_max(-1)

    def test_uniform_index_range(self, rng):
        values = {rng.uniform_index(5) for _ in range(200)}
        assert values == {0, 1, 2, 3, 4}

    def test_uniform_index_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            rng.uniform_index(0)

    def test_ordered_pair_distinct(self, rng):
        for _ in range(500):
            i, j = rng.ordered_pair(7)
            assert i != j
            assert 0 <= i < 7
            assert 0 <= j < 7

    def test_ordered_pair_requires_two_agents(self, rng):
        with pytest.raises(ValueError):
            rng.ordered_pair(1)

    def test_ordered_pair_covers_all_pairs(self, rng):
        seen = {rng.ordered_pair(3) for _ in range(500)}
        assert seen == {(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)}

    def test_ordered_pairs_vectorised_distinct(self, rng):
        initiators, responders = rng.ordered_pairs(10, 1000)
        assert len(initiators) == len(responders) == 1000
        assert not np.any(initiators == responders)
        assert initiators.min() >= 0 and initiators.max() < 10
        assert responders.min() >= 0 and responders.max() < 10

    def test_ordered_pairs_rejects_bad_input(self, rng):
        with pytest.raises(ValueError):
            rng.ordered_pairs(1, 5)
        with pytest.raises(ValueError):
            rng.ordered_pairs(5, -1)

    def test_ordered_pair_matrix_rows_distinct_and_bounded(self, rng):
        initiators, responders = rng.ordered_pair_matrix(9, 4, 500)
        assert initiators.shape == responders.shape == (4, 500)
        assert not np.any(initiators == responders)
        assert initiators.min() >= 0 and initiators.max() < 9
        assert responders.min() >= 0 and responders.max() < 9

    def test_ordered_pair_matrix_dtype_and_errors(self, rng):
        initiators, responders = rng.ordered_pair_matrix(5, 2, 10, dtype=np.int32)
        assert initiators.dtype == np.int32 and responders.dtype == np.int32
        with pytest.raises(ValueError):
            rng.ordered_pair_matrix(1, 2, 10)
        with pytest.raises(ValueError):
            rng.ordered_pair_matrix(5, 0, 10)
        with pytest.raises(ValueError):
            rng.ordered_pair_matrix(5, 2, -1)

    def test_geometric_max_array_distribution(self, rng):
        samples = rng.geometric_max_array(16, 200_000)
        assert samples.min() >= 1
        assert np.all(samples == np.floor(samples))
        # Mean of max of 16 Geom(1/2) draws is ~log2(16) + 1.33 ~ 5.33.
        assert 5.1 < samples.mean() < 5.7
        # Tail matches P(X >= m) = 1 - (1 - 2^-(m-1))^16 within sampling noise.
        p_tail = float((samples >= 12).mean())
        expected = 1 - (1 - 2.0 ** -11) ** 16
        assert p_tail == pytest.approx(expected, rel=0.35)

    def test_geometric_max_array_single_draw_matches_geometric(self, rng):
        samples = rng.geometric_max_array(1, 200_000)
        assert samples.mean() == pytest.approx(2.0, abs=0.05)

    def test_geometric_max_array_errors_and_empty(self, rng):
        assert rng.geometric_max_array(4, 0).size == 0
        with pytest.raises(ValueError):
            rng.geometric_max_array(0, 5)
        with pytest.raises(ValueError):
            rng.geometric_max_array(4, -1)

    def test_shuffled_is_permutation(self, rng):
        items = list(range(20))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items

    def test_spawn_children_are_independent(self, rng):
        children = list(rng.spawn(2))
        a = [children[0].geometric() for _ in range(20)]
        b = [children[1].geometric() for _ in range(20)]
        assert a != b

    def test_from_seed_reproducible(self):
        a = RandomSource.from_seed(5)
        b = RandomSource.from_seed(5)
        assert [a.geometric() for _ in range(10)] == [b.geometric() for _ in range(10)]
