"""Resolved execution config in result metadata (``metadata["execution"]``).

Every result records the *fully resolved* execution configuration — the
engine after ``choose_engine``, the worker count after ``resolve_workers``,
the jit outcome after the availability probe — alongside what was requested.
Cached artifacts are then self-describing: the block alone reproduces the
run without re-deriving the auto policies.  Legacy metadata keys
(``engine``, conditional ``workers``/``jit``) are pinned elsewhere
(tests/test_parallel.py, tests/test_scenarios.py) and must not change.
"""

from __future__ import annotations

from repro.engine.registry import choose_engine
from repro.engine.parallel import resolve_workers
from repro.experiments.base import ExperimentPreset
from repro.scenarios.runner import run_scenario, run_sweep
from repro.scenarios.spec import ScenarioSpec, SweepSpec


def count_metric(trace, point, preset, params):
    return {"n": point.n, "trials": point.trials}


def make_spec(**overrides) -> ScenarioSpec:
    data = dict(
        name="exec_meta_spec",
        description="execution metadata probe",
        metrics=(count_metric,),
    )
    data.update(overrides)
    return ScenarioSpec(**data)


def tiny_preset(**overrides) -> ExperimentPreset:
    data = dict(
        name="tiny", population_sizes=(80,), parallel_time=30, trials=2, seed=7
    )
    data.update(overrides)
    return ExperimentPreset(**data)


def execution_of(result):
    execution = result.metadata["execution"]
    # The block has a fixed shape — new fields are a conscious decision.
    assert set(execution) >= {
        "requested_engine",
        "engine",
        "engines",
        "workers",
        "workers_requested",
        "jit_requested",
        "jit",
    }
    return execution


class TestEngineResolution:
    def test_engine_none_records_auto_choice(self):
        # n=80 <= the small-population threshold -> choose_engine says array.
        spec, preset = make_spec(), tiny_preset()
        result = run_scenario(spec, preset=preset)
        execution = execution_of(result)
        from repro.scenarios.runner import resolve_params

        protocol = spec.protocol_factory(resolve_params(spec, preset))
        assert execution["requested_engine"] is None
        assert execution["engine"] == choose_engine(protocol, preset.trials, 80)
        assert execution["engines"] == [execution["engine"]]

    def test_engine_auto_same_resolution_as_none_for_unpinned_spec(self):
        spec, preset = make_spec(), tiny_preset()
        auto = run_scenario(spec, preset=preset, engine="auto")
        default = run_scenario(spec, preset=preset)
        assert execution_of(auto)["engine"] == execution_of(default)["engine"]
        assert execution_of(auto)["requested_engine"] == "auto"

    def test_pinned_spec_auto_overrides_pin(self):
        pinned = make_spec(engine="batched")
        result = run_scenario(pinned, preset=tiny_preset())
        assert execution_of(result)["engine"] == "batched"
        # "auto" re-enables per-point choice even against the pin.
        auto = run_scenario(pinned, preset=tiny_preset(), engine="auto")
        assert execution_of(auto)["engine"] == "array"

    def test_mixed_engines_across_points(self):
        # n=80 -> array; n=300 with trials>1 -> ensemble.
        spec = make_spec()
        result = run_scenario(
            spec, preset=tiny_preset(population_sizes=(80, 300), parallel_time=20)
        )
        execution = execution_of(result)
        assert execution["engine"] == "mixed"
        assert execution["engines"] == ["array", "ensemble"]

    def test_explicit_engine_is_recorded_verbatim(self):
        result = run_scenario(make_spec(), preset=tiny_preset(), engine="batched")
        execution = execution_of(result)
        assert execution["requested_engine"] == "batched"
        assert execution["engine"] == "batched"


class TestWorkersResolution:
    def test_serial_records_none_and_keeps_legacy_keys_absent(self):
        result = run_scenario(make_spec(), preset=tiny_preset())
        execution = execution_of(result)
        assert execution["workers"] is None
        assert execution["workers_requested"] is None
        assert "workers" not in result.metadata  # legacy contract

    def test_workers_auto_records_resolved_count(self):
        result = run_scenario(make_spec(), preset=tiny_preset(), workers="auto")
        execution = execution_of(result)
        assert execution["workers_requested"] == "auto"
        assert execution["workers"] == resolve_workers("auto")
        assert result.metadata["workers"] == execution["workers"]  # legacy key

    def test_explicit_workers_recorded(self):
        result = run_scenario(make_spec(), preset=tiny_preset(), workers=2)
        execution = execution_of(result)
        assert execution["workers_requested"] == 2
        assert execution["workers"] == 2


class TestJitResolution:
    def test_jit_off_by_default(self):
        result = run_scenario(make_spec(), preset=tiny_preset())
        execution = execution_of(result)
        assert execution["jit_requested"] is False
        assert execution["jit"] == "off"

    def test_jit_request_records_availability_outcome(self):
        from repro.kernels import availability

        result = run_scenario(make_spec(), preset=tiny_preset(), jit=True)
        execution = execution_of(result)
        assert execution["jit_requested"] is True
        if availability().enabled:
            assert execution["jit"] == "compiled"
        else:
            assert execution["jit"].startswith("fallback: ")


class TestBespokeExecutor:
    def test_bespoke_scenario_records_serial_execution(self):
        # The memory table runs through a bespoke recorder executor: it is
        # always serial and never reaches the vectorised kernels, whatever
        # was requested.
        result = run_scenario("memory", workers="auto", jit=True)
        execution = execution_of(result)
        assert execution["engine"] == "sequential"
        assert execution["workers"] is None
        assert execution["workers_requested"] == "auto"
        assert execution["jit"] == "off"
        assert execution["jit_requested"] is True


class TestSweepMetadata:
    def test_serial_sweep_results_carry_execution_blocks(self):
        sweep = SweepSpec.from_mapping(make_spec(), {"n": (64, 80)})
        results = run_sweep(sweep, preset=tiny_preset(parallel_time=20))
        assert len(results) == 2
        for _, result in results:
            execution = execution_of(result)
            assert "sweep_workers" not in execution

    def test_parallel_sweep_records_sweep_workers(self):
        sweep = SweepSpec.from_mapping(make_spec(), {"n": (64, 80)})
        results = run_sweep(sweep, preset=tiny_preset(parallel_time=20), workers=2)
        for _, result in results:
            execution = execution_of(result)
            assert execution["sweep_workers"] == 2
            # Each combination ran serially inside its worker.
            assert execution["workers"] is None
