"""Tests for repro.engine.adversary."""

from __future__ import annotations

import pytest

from repro.engine.adversary import (
    AddAgentsAt,
    CompositeAdversary,
    NullAdversary,
    RemoveAgentsAt,
    RemoveAllButAt,
    ResizeEvent,
    ResizeSchedule,
)
from repro.engine.errors import InvalidScheduleError
from repro.engine.population import Population


def fresh_state() -> str:
    return "new"


class TestNullAdversary:
    def test_no_change(self, rng):
        pop = Population(range(10))
        NullAdversary().apply(pop, 100, rng, fresh_state)
        assert pop.size == 10


class TestRemoveAgentsAt:
    def test_fires_once_at_time(self, rng):
        adversary = RemoveAgentsAt(time=5, count=3)
        pop = Population(range(10))
        adversary.apply(pop, 4, rng, fresh_state)
        assert pop.size == 10
        adversary.apply(pop, 5, rng, fresh_state)
        assert pop.size == 7
        adversary.apply(pop, 6, rng, fresh_state)
        assert pop.size == 7  # does not fire twice

    def test_fires_late_if_time_skipped(self, rng):
        adversary = RemoveAgentsAt(time=5, count=2)
        pop = Population(range(10))
        adversary.apply(pop, 9, rng, fresh_state)
        assert pop.size == 8

    def test_rejects_leaving_fewer_than_two(self, rng):
        adversary = RemoveAgentsAt(time=0, count=9)
        pop = Population(range(10))
        with pytest.raises(InvalidScheduleError):
            adversary.apply(pop, 0, rng, fresh_state)

    def test_rejects_negative_parameters(self):
        with pytest.raises(InvalidScheduleError):
            RemoveAgentsAt(time=-1, count=1)
        with pytest.raises(InvalidScheduleError):
            RemoveAgentsAt(time=1, count=-1)

    def test_describe(self):
        description = RemoveAgentsAt(time=3, count=2).describe()
        assert description["time"] == 3
        assert description["count"] == 2


class TestRemoveAllButAt:
    def test_downsizes_to_keep(self, rng):
        adversary = RemoveAllButAt(time=10, keep=4)
        pop = Population(range(100))
        adversary.apply(pop, 10, rng, fresh_state)
        assert pop.size == 4

    def test_noop_before_time(self, rng):
        adversary = RemoveAllButAt(time=10, keep=4)
        pop = Population(range(100))
        adversary.apply(pop, 9, rng, fresh_state)
        assert pop.size == 100

    def test_noop_when_already_smaller(self, rng):
        adversary = RemoveAllButAt(time=0, keep=50)
        pop = Population(range(10))
        adversary.apply(pop, 0, rng, fresh_state)
        assert pop.size == 10

    def test_rejects_keep_below_two(self):
        with pytest.raises(InvalidScheduleError):
            RemoveAllButAt(time=0, keep=1)


class TestAddAgentsAt:
    def test_adds_in_initial_state(self, rng):
        adversary = AddAgentsAt(time=2, count=5)
        pop = Population(["old", "old"])
        adversary.apply(pop, 2, rng, fresh_state)
        assert pop.size == 7
        assert pop.count_where(lambda s: s == "new") == 5

    def test_fires_once(self, rng):
        adversary = AddAgentsAt(time=2, count=5)
        pop = Population(["old", "old"])
        adversary.apply(pop, 2, rng, fresh_state)
        adversary.apply(pop, 3, rng, fresh_state)
        assert pop.size == 7


class TestResizeSchedule:
    def test_from_pairs_and_order(self, rng):
        schedule = ResizeSchedule.from_pairs([(10, 5), (5, 20)])
        assert [event.time for event in schedule.events] == [5, 10]

    def test_duplicate_times_rejected(self):
        with pytest.raises(InvalidScheduleError):
            ResizeSchedule([ResizeEvent(1, 5), ResizeEvent(1, 6)])

    def test_shrink_and_grow(self, rng):
        schedule = ResizeSchedule.from_pairs([(1, 3), (2, 8)])
        pop = Population(range(10))
        schedule.apply(pop, 1, rng, fresh_state)
        assert pop.size == 3
        schedule.apply(pop, 2, rng, fresh_state)
        assert pop.size == 8
        assert pop.count_where(lambda s: s == "new") == 5

    def test_multiple_due_events_applied_in_order(self, rng):
        schedule = ResizeSchedule.from_pairs([(1, 3), (2, 8), (3, 4)])
        pop = Population(range(10))
        schedule.apply(pop, 5, rng, fresh_state)
        assert pop.size == 4

    def test_event_validation(self):
        with pytest.raises(InvalidScheduleError):
            ResizeEvent(time=-1, target=5)
        with pytest.raises(InvalidScheduleError):
            ResizeEvent(time=1, target=1)

    def test_describe_lists_events(self):
        schedule = ResizeSchedule.from_pairs([(1, 3)])
        assert schedule.describe()["events"] == [{"time": 1, "target": 3}]


class TestCompositeAdversary:
    def test_applies_all_parts(self, rng):
        composite = CompositeAdversary(
            [RemoveAgentsAt(time=1, count=2), AddAgentsAt(time=1, count=5)]
        )
        pop = Population(range(10))
        composite.apply(pop, 1, rng, fresh_state)
        assert pop.size == 13

    def test_describe(self):
        composite = CompositeAdversary([NullAdversary()])
        assert composite.describe()["parts"] == [{"class": "NullAdversary"}]


class TestAdversaryEdgeCases:
    """Edge cases of the schedule machinery the scenario layer leans on."""

    def test_empty_resize_schedule_is_a_noop(self, rng):
        schedule = ResizeSchedule([])
        pop = Population(range(10))
        schedule.apply(pop, 0, rng, fresh_state)
        schedule.apply(pop, 1_000, rng, fresh_state)
        assert pop.size == 10
        assert schedule.events == ()
        assert schedule.describe()["events"] == []

    def test_empty_schedule_from_pairs(self, rng):
        schedule = ResizeSchedule.from_pairs([])
        pop = Population(range(5))
        schedule.apply(pop, 10, rng, fresh_state)
        assert pop.size == 5

    def test_out_of_order_events_are_sorted_before_application(self, rng):
        # Events given in reverse order still apply chronologically: 10 agents
        # -> (t=1) 8 -> (t=2) 3, not the other way around.
        schedule = ResizeSchedule([ResizeEvent(2, 3), ResizeEvent(1, 8)])
        pop = Population(range(10))
        schedule.apply(pop, 1, rng, fresh_state)
        assert pop.size == 8
        schedule.apply(pop, 2, rng, fresh_state)
        assert pop.size == 3

    def test_duplicate_event_times_rejected_from_pairs(self):
        with pytest.raises(InvalidScheduleError):
            ResizeSchedule.from_pairs([(3, 10), (3, 20)])

    def test_composite_applies_parts_in_given_order(self, rng):
        # Two schedules both firing at t=1: the last part wins, so the
        # composite's order is observable.
        first = ResizeSchedule.from_pairs([(1, 5)])
        second = ResizeSchedule.from_pairs([(1, 8)])
        pop = Population(range(10))
        CompositeAdversary([first, second]).apply(pop, 1, rng, fresh_state)
        assert pop.size == 8

        pop = Population(range(10))
        first = ResizeSchedule.from_pairs([(1, 5)])
        second = ResizeSchedule.from_pairs([(1, 8)])
        CompositeAdversary([second, first]).apply(pop, 1, rng, fresh_state)
        assert pop.size == 5

    def test_removal_below_two_agents_raises(self, rng):
        pop = Population(range(4))
        with pytest.raises(InvalidScheduleError):
            RemoveAgentsAt(time=0, count=3).apply(pop, 0, rng, fresh_state)
        # The population is left untouched by the rejected removal.
        assert pop.size == 4

    def test_resize_target_below_two_rejected_at_construction(self):
        with pytest.raises(InvalidScheduleError):
            ResizeSchedule.from_pairs([(1, 1)])
